"""Pluggable execution backends for the stream engine.

The :class:`~repro.dsms.engine.StreamEngine` owns the *semantics* of a
tick — sources emit, connection points hold or pass, results land in
query logs, the transition phase drains — but delegates the actual
operator execution to an :class:`ExecutionBackend`:

* :class:`ScalarBackend` — the reference per-tuple interpreter: every
  operator's :meth:`~repro.dsms.operators.StreamOperator.execute` runs
  over Python lists of :class:`~repro.dsms.tuples.StreamTuple`;
* ``ColumnarBackend`` (:mod:`repro.dsms.columnar`) — a vectorized
  struct-of-arrays engine built on numpy, semantically equivalent to
  the scalar interpreter (pinned by the differential test suite).

Backends are *spec-string addressable* through a registry mirroring
:class:`repro.core.mechanism.MechanismSpec`: ``"scalar"``,
``"columnar"``, ``"columnar:batch=1024"`` — the currency of
:class:`~repro.service.builder.ServiceConfig`, the cluster federation
and the CLI's ``--backend`` flag.

A backend instance may hold per-operator execution state (the columnar
backend keeps join windows and aggregate buffers as column batches),
so one instance belongs to exactly one engine; ``resolve_backend``
therefore builds a fresh instance from every spec it is given.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from collections.abc import Callable, Mapping, Sequence

from repro.dsms.operators import (
    AggregateOperator, SelectOperator, StreamOperator)
from repro.dsms.tuples import StreamTuple
from repro.utils.registry import SpecRegistry
from repro.utils.specparse import parse_spec_text
from repro.utils.validation import ValidationError

#: A tick's batches by name (stream names and operator ids).
TickOutputs = Mapping[str, list[StreamTuple]]


class ExecutionBackend(abc.ABC):
    """Executes the operator graph for one engine tick.

    The engine hands the backend its operators in topological order
    plus the tick's per-stream arrivals; the backend returns the
    produced batches (as :class:`StreamTuple` lists, at least for the
    requested ``sink_ids``) and the measured work per operator.  All
    numbers must be *exactly* those the scalar interpreter would
    produce — backends trade representation, never semantics.
    """

    #: Registry name of the backend.
    name: str = "backend"

    @abc.abstractmethod
    def run_operators(
        self,
        operators: Sequence[StreamOperator],
        arrivals: Mapping[str, Sequence[StreamTuple]],
        sink_ids: "set[str]",
    ) -> tuple[dict[str, list[StreamTuple]], dict[str, float]]:
        """Execute one tick; returns ``(outputs, work_by_op)``.

        ``outputs`` maps every name in ``sink_ids`` (that an operator
        produced) to its tuple batch; ``work_by_op`` maps every
        executed operator id to ``consumed × cost_per_tuple``.
        """

    def pending_tuples(self, op: StreamOperator) -> int:
        """Tuples buffered for *op*, wherever that state lives.

        The scalar backend keeps state inside the operators; columnar
        backends keep it in their own batches.  The engine's drain
        logic must ask the backend, never the operator directly.
        """
        return op.pending_tuples()

    def flush_aggregate(self, op: AggregateOperator) -> list[StreamTuple]:
        """Partial-flush an aggregate's window for the drain phase."""
        return op.flush_partial()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class ScalarBackend(ExecutionBackend):
    """The reference per-tuple interpreter.

    Exactly the execution loop the engine hard-wired before backends
    existed: each operator's :meth:`execute` runs once, in topological
    order, over Python tuple lists.  All operator state (join windows,
    aggregate buffers) lives inside the operator objects.
    """

    name = "scalar"

    def run_operators(self, operators, arrivals, sink_ids):
        outputs: dict[str, list[StreamTuple]] = {
            name: list(batch) for name, batch in arrivals.items()}
        work_by_op: dict[str, float] = {}
        stock_work = StreamOperator.work
        stock_execute = StreamOperator.execute
        stock_select_drained = SelectOperator.execute_drained
        for op in operators:
            inputs = op.inputs
            if (len(inputs) == 1 and type(op).work is stock_work
                    and type(op).execute is stock_execute):
                # Single-input operator with stock metering: no
                # per-input dict round-trip.  Subclasses overriding
                # ``work``/``execute`` keep the reference path.
                batch = outputs.get(inputs[0], ())
                work_by_op[op.op_id] = len(batch) * op.cost_per_tuple
                if (type(op).execute_drained is stock_select_drained
                        and op._passthrough):
                    # Constant-true select: nothing left but the
                    # counter updates, so skip the method call too.
                    # Same aliasing as execute_drained — the caller
                    # no longer owns the batch list.
                    n = len(batch)
                    outputs[op.op_id] = (batch if isinstance(batch, list)
                                         else list(batch))
                    op.processed_tuples += n
                    op.emitted_tuples += n
                    continue
                outputs[op.op_id] = op.execute_drained(batch)
                continue
            batches = {name: outputs.get(name, []) for name in inputs}
            work_by_op[op.op_id] = op.work(batches)
            outputs[op.op_id] = op.execute(batches)
        return outputs, work_by_op


# ----------------------------------------------------------------------
# Registry and specs (mirrors repro.core.mechanism)
# ----------------------------------------------------------------------

#: The backend registry (shared machinery: utils.registry).
_REGISTRY = SpecRegistry("execution backend", param_noun="backend")


def register_backend(
    name: str, factory: Callable[..., ExecutionBackend]
) -> None:
    """Register a backend *factory* under *name* (case-insensitive)."""
    _REGISTRY.register(name, factory)


def _lookup(name: str) -> Callable[..., ExecutionBackend]:
    return _REGISTRY.lookup(name)


def backend_params(name: str) -> "tuple[str, ...] | None":
    """Parameter names the factory of *name* accepts (None = open)."""
    return _REGISTRY.params(name)


def _validate_params(name: str, params: Mapping[str, object]) -> None:
    _REGISTRY.validate_params(name, params)


def make_backend(name: str, **kwargs: object) -> ExecutionBackend:
    """Instantiate a registered backend by name, validating kwargs."""
    return _REGISTRY.create(name, **kwargs)


def registered_backends() -> Mapping[str, Callable[..., ExecutionBackend]]:
    """Read-only view of the registry (name → factory)."""
    return _REGISTRY.as_mapping()


@dataclass(frozen=True)
class BackendSpec:
    """A backend name plus declared, validated parameters.

    The declarative counterpart of :func:`make_backend`, parseable
    from the same compact strings :class:`MechanismSpec` uses:

    >>> BackendSpec.parse("columnar:batch=1024")
    BackendSpec(name='columnar', params={'batch': 1024})
    """

    name: str
    params: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("backend spec needs a non-empty name")
        object.__setattr__(self, "params", dict(self.params))

    @classmethod
    def parse(cls, text: str) -> "BackendSpec":
        """Parse ``"name"`` or ``"name:key=value,key=value"``."""
        name, params = parse_spec_text(text, what="backend spec")
        return cls(name, params)

    def validate(self) -> "BackendSpec":
        """Check name and params against the registry; returns self."""
        _lookup(self.name)
        _validate_params(self.name, self.params)
        return self

    def create(self) -> ExecutionBackend:
        """Instantiate the backend this spec describes."""
        return make_backend(self.name, **self.params)

    def __str__(self) -> str:
        if not self.params:
            return self.name
        rendered = ",".join(
            f"{key}={value}"
            for key, value in sorted(self.params.items()))
        return f"{self.name}:{rendered}"


def resolve_backend(
    backend: "ExecutionBackend | BackendSpec | str",
) -> ExecutionBackend:
    """Coerce any accepted backend form to a live instance.

    Accepts a live :class:`ExecutionBackend`, a :class:`BackendSpec`,
    or a spec string like ``"scalar"`` / ``"columnar:batch=1024"``.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    if isinstance(backend, BackendSpec):
        return backend.create()
    if isinstance(backend, str):
        return BackendSpec.parse(backend).create()
    raise ValidationError(
        f"cannot resolve an execution backend from {backend!r}; pass "
        f"an ExecutionBackend, a BackendSpec, or a spec string like "
        f"'scalar' or 'columnar:batch=1024'")


def _columnar_factory(batch: int = 4096) -> ExecutionBackend:
    # Deferred import: repro.dsms.columnar imports this module.  The
    # explicit signature (mirroring ColumnarBackend.__init__) is what
    # lets BackendSpec.validate() reject typo'd parameters up front.
    from repro.dsms.columnar import ColumnarBackend

    return ColumnarBackend(batch=batch)


register_backend("scalar", ScalarBackend)
register_backend("columnar", _columnar_factory)
