"""Aurora-style DSMS simulator: streams, operators, shared plans,
the tick engine with connection points, and load estimation."""

from repro.dsms.backend import (
    BackendSpec,
    ExecutionBackend,
    ScalarBackend,
    make_backend,
    register_backend,
    registered_backends,
    resolve_backend,
)
from repro.dsms.columnar import ColumnarBackend, ColumnBatch, col
from repro.dsms.engine import ConnectionPoint, StreamEngine
from repro.dsms.load import (
    LoadMeter,
    auction_instance_from_catalog,
    estimate_operator_loads,
)
from repro.dsms.metrics import EngineReport
from repro.dsms.operators import (
    AggregateOperator,
    JoinOperator,
    MapOperator,
    ProjectOperator,
    SelectOperator,
    StreamOperator,
    UnionOperator,
)
from repro.dsms.builder import QueryBuilder
from repro.dsms.plan import ContinuousQuery, QueryPlanCatalog
from repro.dsms.scheduler import (
    CheapestFirstPolicy,
    LatencyStats,
    LongestQueueFirstPolicy,
    RoundRobinPolicy,
    ScheduledEngine,
    SchedulingPolicy,
)
from repro.dsms.sharing_detector import (
    CanonicalizationReport,
    canonicalize,
    operator_signature,
)
from repro.dsms.shedding import (
    PriorityShedder,
    RandomShedder,
    SheddingComparison,
    SheddingEngine,
    TupleShedder,
    run_shedding_comparison,
)
from repro.dsms.streams import (
    ReplayStream,
    StreamSource,
    SyntheticStream,
    news_stories,
    sensor_readings,
    stock_quotes,
)
from repro.dsms.tuples import StreamTuple
from repro.dsms.windows import (
    DistinctOperator,
    SlidingAggregateOperator,
    TopKOperator,
)

__all__ = [
    "AggregateOperator",
    "BackendSpec",
    "CanonicalizationReport",
    "CheapestFirstPolicy",
    "ColumnBatch",
    "ColumnarBackend",
    "ConnectionPoint",
    "ExecutionBackend",
    "ContinuousQuery",
    "DistinctOperator",
    "EngineReport",
    "JoinOperator",
    "LatencyStats",
    "LongestQueueFirstPolicy",
    "LoadMeter",
    "MapOperator",
    "PriorityShedder",
    "ProjectOperator",
    "QueryBuilder",
    "QueryPlanCatalog",
    "RandomShedder",
    "ReplayStream",
    "RoundRobinPolicy",
    "ScalarBackend",
    "ScheduledEngine",
    "SchedulingPolicy",
    "SelectOperator",
    "SheddingComparison",
    "SheddingEngine",
    "SlidingAggregateOperator",
    "StreamEngine",
    "TopKOperator",
    "TupleShedder",
    "StreamOperator",
    "StreamSource",
    "StreamTuple",
    "SyntheticStream",
    "UnionOperator",
    "auction_instance_from_catalog",
    "canonicalize",
    "col",
    "estimate_operator_loads",
    "make_backend",
    "news_stories",
    "operator_signature",
    "register_backend",
    "registered_backends",
    "resolve_backend",
    "run_shedding_comparison",
    "sensor_readings",
    "stock_quotes",
]
