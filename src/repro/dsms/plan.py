"""Continuous-query plans: operator DAGs with sharing.

A :class:`ContinuousQuery` names a sink operator and carries the
operators on its path from the source streams.  Operators are shared
**by identity of their op_id**: when two queries reference the same
op_id, they must supply equal-configured operator objects, and the
engine runs the operator once for both — the Aurora-style shared
subnetworks of Section II.

:class:`QueryPlanCatalog` validates and merges a set of queries into
the engine's executable graph (topologically ordered, sharing
de-duplicated) and exposes the sharing structure the auction layer
consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from collections.abc import Iterable, Mapping, Sequence

from repro.dsms.operators import StreamOperator
from repro.utils.validation import ValidationError, require


@dataclass(frozen=True)
class ContinuousQuery:
    """One CQ: its operators, sink, and commercial metadata.

    ``operators`` must include every operator the query needs, up from
    the source streams; ``sink_id`` is the operator whose output is the
    query's result.  ``bid`` and ``owner`` feed the admission auction.
    """

    query_id: str
    operators: tuple[StreamOperator, ...]
    sink_id: str
    bid: float = 0.0
    valuation: float | None = None
    owner: str | None = None

    def __post_init__(self) -> None:
        require(bool(self.query_id), "query id must be non-empty")
        require(len(self.operators) > 0,
                f"query {self.query_id!r} has no operators")
        ids = [op.op_id for op in self.operators]
        require(len(set(ids)) == len(ids),
                f"query {self.query_id!r} repeats an operator id")
        require(self.sink_id in ids,
                f"sink {self.sink_id!r} is not an operator of query "
                f"{self.query_id!r}")

    @cached_property
    def operator_ids(self) -> tuple[str, ...]:
        """Ids of the operators this query contains.

        Cached: the query is frozen, and admission/auction code walks
        this per period for every held query."""
        return tuple(op.op_id for op in self.operators)

    @property
    def true_value(self) -> float:
        """Private valuation, defaulting to the bid."""
        return self.bid if self.valuation is None else self.valuation

    def operator(self, op_id: str) -> StreamOperator:
        """The operator object with id *op_id*."""
        for op in self.operators:
            if op.op_id == op_id:
                return op
        raise KeyError(op_id)


def _check_compatible(first: StreamOperator, second: StreamOperator) -> None:
    """Shared operators must agree on type, inputs and cost."""
    if type(first) is not type(second):
        raise ValidationError(
            f"operator {first.op_id!r} shared with conflicting types "
            f"{type(first).__name__} vs {type(second).__name__}")
    if first.inputs != second.inputs:
        raise ValidationError(
            f"operator {first.op_id!r} shared with conflicting inputs "
            f"{first.inputs} vs {second.inputs}")
    if first.cost_per_tuple != second.cost_per_tuple:
        raise ValidationError(
            f"operator {first.op_id!r} shared with conflicting costs")


class QueryPlanCatalog:
    """The merged, validated operator graph of a set of queries."""

    def __init__(self, queries: Iterable[ContinuousQuery] = ()) -> None:
        self._queries: dict[str, ContinuousQuery] = {}
        self._operators: dict[str, StreamOperator] = {}
        self._order_cache: "list[StreamOperator] | None" = None
        self._generation = 0
        for query in queries:
            self.add(query)

    def __setstate__(self, state: dict) -> None:
        # Catalogs pickled before the order cache existed get an
        # (empty) cache on resume; same for the generation counter.
        self.__dict__.update(state)
        self.__dict__.setdefault("_order_cache", None)
        self.__dict__.setdefault("_generation", 0)

    @property
    def generation(self) -> int:
        """Bumped by every :meth:`add`/:meth:`remove`.

        Lets per-tick callers cache derived views (sink sets, query
        lists) and revalidate with one integer compare instead of
        rebuilding from the tables each tick.
        """
        return self._generation

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, query: ContinuousQuery) -> None:
        """Register *query*, merging shared operators by id."""
        if query.query_id in self._queries:
            raise ValidationError(
                f"duplicate query id {query.query_id!r}")
        for op in query.operators:
            existing = self._operators.get(op.op_id)
            if existing is None:
                self._operators[op.op_id] = op
            else:
                _check_compatible(existing, op)
        self._queries[query.query_id] = query
        self._order_cache = None
        self._generation += 1

    def remove(self, query_id: str) -> ContinuousQuery:
        """Deregister a query; orphaned operators are dropped too."""
        query = self._queries.pop(query_id)
        still_used = {
            op_id
            for q in self._queries.values()
            for op_id in q.operator_ids
        }
        for op_id in query.operator_ids:
            if op_id not in still_used:
                del self._operators[op_id]
        self._order_cache = None
        self._generation += 1
        return query

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def queries(self) -> Mapping[str, ContinuousQuery]:
        """Registered queries by id."""
        return dict(self._queries)

    @property
    def operators(self) -> Mapping[str, StreamOperator]:
        """Merged (shared) operators by id."""
        return dict(self._operators)

    def iter_queries(self) -> "Iterable[ContinuousQuery]":
        """Iterate registered queries without copying the table.

        The ``queries`` property copies its dict on every access —
        right for callers that hold the view across mutations, wasted
        inside per-tick loops that only walk it once."""
        return iter(self._queries.values())

    def ordered_operators(self) -> "Sequence[StreamOperator]":
        """The cached topological order, without the defensive copy.

        Callers must not mutate the returned list and must not hold it
        across :meth:`add`/:meth:`remove` (use
        :meth:`topological_order` for a private copy)."""
        if self._order_cache is None:
            self.topological_order()
        return self._order_cache

    def sharing_degree(self, op_id: str) -> int:
        """How many registered queries contain *op_id*."""
        return sum(
            1 for q in self._queries.values()
            if op_id in q.operator_ids
        )

    def queries_containing(self, op_id: str) -> list[str]:
        """Ids of queries containing *op_id*."""
        return [qid for qid, q in self._queries.items()
                if op_id in q.operator_ids]

    def stream_names(self) -> set[str]:
        """External stream inputs referenced by the graph."""
        op_ids = set(self._operators)
        names: set[str] = set()
        for op in self._operators.values():
            names.update(i for i in op.inputs if i not in op_ids)
        return names

    def topological_order(self) -> list[StreamOperator]:
        """Operators in dependency order (streams are roots).

        The order is cached between calls — the engine asks for it on
        every tick — and invalidated by any plan mutation
        (:meth:`add` / :meth:`remove`).  Raises
        :class:`ValidationError` on a cycle.
        """
        if self._order_cache is not None:
            return list(self._order_cache)
        op_ids = set(self._operators)
        dependencies = {
            op_id: [i for i in self._operators[op_id].inputs
                    if i in op_ids]
            for op_id in op_ids
        }
        order: list[StreamOperator] = []
        state: dict[str, int] = {}

        def visit(op_id: str) -> None:
            mark = state.get(op_id, 0)
            if mark == 1:
                raise ValidationError(
                    f"operator graph has a cycle through {op_id!r}")
            if mark == 2:
                return
            state[op_id] = 1
            for dep in dependencies[op_id]:
                visit(dep)
            state[op_id] = 2
            order.append(self._operators[op_id])

        for op_id in sorted(op_ids):
            visit(op_id)
        self._order_cache = order
        return list(order)

    def subgraph_order(
        self, query_ids: Sequence[str]
    ) -> list[StreamOperator]:
        """Topological order restricted to the given queries' operators."""
        keep: set[str] = set()
        for qid in query_ids:
            keep.update(self._queries[qid].operator_ids)
        return [op for op in self.topological_order()
                if op.op_id in keep]
