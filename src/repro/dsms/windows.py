"""Additional window operators: sliding aggregates, distinct, top-k.

The paper's stock-monitoring motivation ("many aggregate CQs will be
defined on few indexes, with similar aggregate functions, but different
joins and different windows") needs more window shapes than the core
tumbling aggregate.  These follow the same :class:`StreamOperator`
contract (batch in, batch out, per-tuple cost, selectivity estimate),
so plans, sharing, load estimation and the engine all apply unchanged.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable

from repro.dsms.operators import StreamOperator
from repro.dsms.tuples import StreamTuple
from repro.utils.validation import require_positive


class SlidingAggregateOperator(StreamOperator):
    """Sliding-window aggregate: one output per tick over the last
    ``window`` ticks of input (grouped, optionally)."""

    def __init__(
        self,
        op_id: str,
        input_name: str,
        attribute: str,
        aggregate: Callable[[list[object]], object],
        window: int = 5,
        group_by: "Callable[[StreamTuple], object] | None" = None,
        cost_per_tuple: float = 2.0,
        share_key: object = None,
    ) -> None:
        super().__init__(
            op_id, [input_name], cost_per_tuple,
            share_key=(None if share_key is None
                       else (share_key, window, attribute)))
        require_positive(window, f"window of {op_id!r}")
        self._attribute = attribute
        self._aggregate = aggregate
        self._window = int(window)
        self._group_by = group_by
        self._buffer: deque[StreamTuple] = deque()
        self._last_tick = 0

    def _process(self, batches):
        incoming = list(batches.get(self.inputs[0], ()))
        if incoming:
            self._last_tick = max(t.tick for t in incoming)
        self._buffer.extend(incoming)
        horizon = self._last_tick - self._window + 1
        while self._buffer and self._buffer[0].tick < horizon:
            self._buffer.popleft()
        if not self._buffer:
            return []
        groups: dict[object, list[StreamTuple]] = {}
        for t in self._buffer:
            key = self._group_by(t) if self._group_by else None
            groups.setdefault(key, []).append(t)
        output = []
        for key, members in groups.items():
            values = [t.value(self._attribute) for t in members]
            output.append(StreamTuple(
                stream=self.op_id,
                tick=self._last_tick,
                payload={"group": key,
                         "value": self._aggregate(values),
                         "count": len(members)},
                origin=tuple(o for t in members for o in t.origin),
            ))
        return output

    def selectivity(self) -> float:
        # Roughly one output per group per tick; a single-group stream
        # maps rate r to rate 1, so 1/max(window, 1) is conservative.
        return 1.0 / self._window

    def reset(self) -> None:
        super().reset()
        self._buffer.clear()
        self._last_tick = 0

    def pending_tuples(self) -> int:
        return len(self._buffer)


class DistinctOperator(StreamOperator):
    """Deduplication on a key over a sliding tick window."""

    def __init__(
        self,
        op_id: str,
        input_name: str,
        key: Callable[[StreamTuple], object],
        window: int = 10,
        cost_per_tuple: float = 0.5,
        share_key: object = None,
    ) -> None:
        super().__init__(
            op_id, [input_name], cost_per_tuple,
            share_key=(None if share_key is None
                       else (share_key, window)))
        require_positive(window, f"window of {op_id!r}")
        self._key = key
        self._window = int(window)
        self._seen: dict[object, int] = {}

    def _process(self, batches):
        output = []
        for t in batches.get(self.inputs[0], ()):
            horizon = t.tick - self._window
            key = self._key(t)
            last = self._seen.get(key)
            if last is None or last <= horizon:
                output.append(t)
            self._seen[key] = t.tick
        return output

    def selectivity(self) -> float:
        return 0.5

    def reset(self) -> None:
        super().reset()
        self._seen.clear()


class TopKOperator(StreamOperator):
    """Emits, each tick, the current top-k tuples by a score within a
    sliding window (think: the k hottest stocks right now)."""

    def __init__(
        self,
        op_id: str,
        input_name: str,
        score: Callable[[StreamTuple], float],
        k: int = 3,
        window: int = 5,
        cost_per_tuple: float = 1.0,
        share_key: object = None,
    ) -> None:
        super().__init__(
            op_id, [input_name], cost_per_tuple,
            share_key=(None if share_key is None
                       else (share_key, k, window)))
        require_positive(k, f"k of {op_id!r}")
        require_positive(window, f"window of {op_id!r}")
        self._score = score
        self._k = int(k)
        self._window = int(window)
        self._buffer: deque[StreamTuple] = deque()
        self._last_tick = 0

    def _process(self, batches):
        incoming = list(batches.get(self.inputs[0], ()))
        if incoming:
            self._last_tick = max(t.tick for t in incoming)
        self._buffer.extend(incoming)
        horizon = self._last_tick - self._window + 1
        while self._buffer and self._buffer[0].tick < horizon:
            self._buffer.popleft()
        if not incoming:
            return []
        ranked = sorted(self._buffer, key=self._score, reverse=True)
        return [
            t.derive(payload={**t.payload, "rank": rank + 1})
            for rank, t in enumerate(ranked[:self._k])
        ]

    def selectivity(self) -> float:
        return min(1.0, self._k / max(self._window, 1))

    def reset(self) -> None:
        super().reset()
        self._buffer.clear()
        self._last_tick = 0

    def pending_tuples(self) -> int:
        return len(self._buffer)
