"""Tuple-level load shedding — the contrast the paper's intro draws.

"Most data stream admission control (load shedding) algorithms work at
the tuple level ... we believe that focusing on the query level, as we
do in this work, is equally important."  To make that comparison
executable, this module implements classic tuple-level shedders that
drop input tuples when a tick's work would exceed capacity:

* :class:`RandomShedder` — uniform random drops over the overload
  fraction (the baseline of the Aurora load-shedding line of work);
* :class:`PriorityShedder` — drops from the streams feeding the
  lowest-bid queries first (a semantic shedder).

``run_shedding_comparison`` pits "admit everyone + shed tuples"
against "auction the queries, run winners unshed" on the same engine
workload, reporting delivered results and collected revenue — the
query-level mechanisms earn revenue and deliver complete results to
winners, while shedding serves everyone a degraded stream for free.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.mechanism import Mechanism
from repro.dsms.engine import StreamEngine
from repro.dsms.load import auction_instance_from_catalog
from repro.dsms.plan import ContinuousQuery, QueryPlanCatalog
from repro.dsms.streams import StreamSource
from repro.dsms.tuples import StreamTuple
from repro.utils.rng import spawn_rng


class TupleShedder(abc.ABC):
    """Decides which arriving tuples to drop under overload."""

    def __init__(self) -> None:
        self.dropped = 0

    @abc.abstractmethod
    def shed(
        self,
        arrivals: Mapping[str, Sequence[StreamTuple]],
        overload_fraction: float,
    ) -> dict[str, list[StreamTuple]]:
        """Return the kept tuples given the fraction that must go."""


class RandomShedder(TupleShedder):
    """Uniformly random tuple drops across all streams."""

    def __init__(self, seed: "int | np.random.Generator | None" = 0):
        super().__init__()
        self._rng = spawn_rng(seed)

    def shed(self, arrivals, overload_fraction):
        kept: dict[str, list[StreamTuple]] = {}
        for stream, batch in arrivals.items():
            keep_mask = self._rng.random(len(batch)) >= overload_fraction
            kept[stream] = [t for t, keep in zip(batch, keep_mask)
                            if keep]
            self.dropped += len(batch) - len(kept[stream])
        return kept


class PriorityShedder(TupleShedder):
    """Sheds streams feeding low-bid queries first.

    ``stream_priorities`` maps stream name → the maximum bid of any
    query consuming it; the lowest-priority streams absorb the drops.
    """

    def __init__(
        self,
        stream_priorities: Mapping[str, float],
        seed: "int | np.random.Generator | None" = 0,
    ) -> None:
        super().__init__()
        self._priorities = dict(stream_priorities)
        self._rng = spawn_rng(seed)

    def shed(self, arrivals, overload_fraction):
        total = sum(len(batch) for batch in arrivals.values())
        to_drop = int(round(total * overload_fraction))
        kept = {stream: list(batch)
                for stream, batch in arrivals.items()}
        by_priority = sorted(
            kept, key=lambda s: self._priorities.get(s, 0.0))
        for stream in by_priority:
            if to_drop <= 0:
                break
            batch = kept[stream]
            drop_here = min(to_drop, len(batch))
            if drop_here:
                drop_idx = set(self._rng.choice(
                    len(batch), size=drop_here, replace=False).tolist())
                kept[stream] = [t for i, t in enumerate(batch)
                                if i not in drop_idx]
                self.dropped += drop_here
                to_drop -= drop_here
        return kept


class SheddingEngine(StreamEngine):
    """A stream engine that sheds tuples instead of refusing queries.

    Every submitted query runs; when a tick's projected work exceeds
    capacity, the shedder drops the overload fraction of arriving
    tuples *before* processing.  Nobody pays anything.
    """

    def __init__(
        self,
        sources,
        capacity: float,
        shedder: TupleShedder,
        backend: object = "scalar",
    ) -> None:
        super().__init__(sources, capacity=capacity, backend=backend)
        self.shedder = shedder

    def _process(self, arrivals, source_count):
        projected = self._projected_work(arrivals)
        if self.capacity is not None and projected > self.capacity:
            overload_fraction = 1.0 - self.capacity / projected
            arrivals = self.shedder.shed(arrivals, overload_fraction)
        super()._process(arrivals, source_count)

    def _projected_work(self, arrivals) -> float:
        """Estimate the tick's work from arrival counts and operator
        selectivities (rates propagate like the load estimator)."""
        rates: dict[str, float] = {
            stream: float(len(batch))
            for stream, batch in arrivals.items()
        }
        work = 0.0
        for op in self.catalog.topological_order():
            input_rate = sum(rates.get(name, 0.0) for name in op.inputs)
            work += input_rate * op.cost_per_tuple
            rates[op.op_id] = input_rate * op.selectivity()
        return work


@dataclass(frozen=True)
class SheddingComparison:
    """Admission control vs. tuple shedding on one workload."""

    admission_revenue: float
    admission_delivered: Mapping[str, int]
    admission_winner_ids: tuple[str, ...]
    shedding_delivered: Mapping[str, int]
    shedding_dropped: int

    @property
    def winners_served_fully(self) -> bool:
        """Did every auction winner receive undegraded results?"""
        return all(self.admission_delivered.get(qid, 0) > 0
                   for qid in self.admission_winner_ids)


def run_shedding_comparison(
    make_sources,
    queries: Sequence[ContinuousQuery],
    capacity: float,
    mechanism: Mechanism,
    ticks: int = 50,
    shedder_seed: int = 0,
) -> SheddingComparison:
    """Run both strategies on identical source streams.

    ``make_sources()`` must build a *fresh* list of seeded sources per
    call so both engines see the same arrivals.
    """
    # Strategy A: auction at the period boundary, run winners only.
    auction_sources: list[StreamSource] = make_sources()
    rates = {s.name: s.expected_rate() for s in auction_sources}
    catalog = QueryPlanCatalog(queries)
    instance = auction_instance_from_catalog(catalog, rates, capacity)
    outcome = mechanism.run(instance)
    admission_engine = StreamEngine(auction_sources, capacity=capacity)
    for query in queries:
        if outcome.is_winner(query.query_id):
            admission_engine.admit(query)
    admission_engine.run(ticks)

    # Strategy B: admit everyone, shed tuples under overload.
    shed_sources: list[StreamSource] = make_sources()
    shedder = RandomShedder(seed=shedder_seed)
    shedding_engine = SheddingEngine(
        shed_sources, capacity=capacity, shedder=shedder)
    for query in queries:
        shedding_engine.admit(query)
    shedding_engine.run(ticks)

    return SheddingComparison(
        admission_revenue=outcome.profit,
        admission_delivered={
            qid: len(results)
            for qid, results in admission_engine.results.items()},
        admission_winner_ids=tuple(sorted(outcome.winner_ids)),
        shedding_delivered={
            qid: len(results)
            for qid, results in shedding_engine.results.items()},
        shedding_dropped=shedder.dropped,
    )
