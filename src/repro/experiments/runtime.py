"""Table IV: mean runtime per mechanism.

The paper times each mechanism (Java, one core of a Xeon 2.3 GHz) on
the 2000-query, capacity-15K workloads:

    Random 0.92   GV 2.003   Two-price 3.72   CAF 7.088
    CAF+ 12555.5  CAT 7.26   CAT+ 10091.2     (milliseconds)

Absolute numbers are hardware- and language-specific; the reproduction
target is the *ordering and the gap structure*: the O(n log n)
mechanisms (Random, GV, Two-price, CAF, CAT) are within a small factor
of each other, while the skip-over mechanisms (CAF+, CAT+) are about
three orders of magnitude slower because their movement-window payment
rule re-simulates the admission pass per winner.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.experiments.harness import (
    TABLE4_MECHANISMS,
    ExperimentScale,
    mechanism_factory,
)
from repro.utils.rng import derive_seed
from repro.utils.tables import format_table

#: The paper's measured milliseconds (for side-by-side reporting).
PAPER_TABLE4_MS = {
    "Random": 0.92,
    "GV": 2.003,
    "Two-price": 3.72,
    "CAF": 7.088,
    "CAF+": 12555.5,
    "CAT": 7.26,
    "CAT+": 10091.2,
}


@dataclass
class RuntimeTable:
    """Measured mean runtimes alongside the paper's Table IV."""

    scale: ExperimentScale
    mean_ms: dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        rows = []
        base = self.mean_ms.get("Random") or 1e-9
        paper_base = PAPER_TABLE4_MS["Random"]
        for name in TABLE4_MECHANISMS:
            rows.append([
                name,
                self.mean_ms.get(name, float("nan")),
                self.mean_ms.get(name, float("nan")) / base,
                PAPER_TABLE4_MS[name],
                PAPER_TABLE4_MS[name] / paper_base,
            ])
        return format_table(
            ["mechanism", "measured ms", "x Random",
             "paper ms", "paper x Random"],
            rows, precision=2,
            title=(f"Table IV — mean mechanism runtime "
                   f"({self.scale.num_queries} queries, capacity 15K "
                   f"scale-equivalent)"))


def table4_runtime(
    scale: ExperimentScale | None = None,
    degrees: tuple[int, ...] = (1, 8, 30),
    repetitions: int = 1,
) -> RuntimeTable:
    """Measure Table IV at the configured scale.

    Runtimes are averaged over the workload sets, the given sharing
    degrees and *repetitions* runs of each point.
    """
    scale = scale or ExperimentScale.from_env()
    capacity = scale.scaled_capacity(15_000.0)
    totals = {name: 0.0 for name in TABLE4_MECHANISMS}
    counts = {name: 0 for name in TABLE4_MECHANISMS}
    for set_index, generator in enumerate(scale.generators()):
        for degree in degrees:
            instance = generator.instance(
                max_sharing=degree, capacity=capacity)
            for name in TABLE4_MECHANISMS:
                for repetition in range(repetitions):
                    mechanism = mechanism_factory(
                        name,
                        derive_seed(scale.seed, "t4", name,
                                    set_index, degree, repetition))
                    started = time.perf_counter()
                    mechanism.run(instance)
                    totals[name] += (time.perf_counter() - started) * 1e3
                    counts[name] += 1
    table = RuntimeTable(scale=scale)
    for name in TABLE4_MECHANISMS:
        table.mean_ms[name] = totals[name] / max(counts[name], 1)
    return table
