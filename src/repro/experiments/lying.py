"""Figure 5: CAR under strategic lying vs. the strategyproof mechanisms.

The paper evaluates CAR (the only non-strategyproof mechanism) on
truthful, moderately-lying (ML) and aggressively-lying (AL) workloads
and compares its profit against CAF, CAT and Two-price at capacity
15,000: "when some users lie, the system profit decreases, motivating
the need ... for a strategyproof mechanism.  The profit of the three
strategyproof mechanisms is dependable, while the profit from CAR is
manipulable."
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.model import AuctionInstance
from repro.experiments.harness import (
    ExperimentScale,
    SweepCell,
    mechanism_factory,
)
from repro.utils.rng import derive_seed
from repro.utils.tables import format_table
from repro.workload.lying import (
    AGGRESSIVE_LYING,
    MODERATE_LYING,
    apply_lying,
)

#: Figure 5's series, in display order.
FIGURE5_SERIES = ("CAF", "CAT", "Two-price", "CAR", "CAR-ML", "CAR-AL")


@dataclass
class Figure5Result:
    """Profit per series across the sharing sweep."""

    scale: ExperimentScale
    capacity_label: float = 15_000.0
    cells: dict[tuple[str, int], SweepCell] = field(default_factory=dict)

    def cell(self, series: str, degree: int) -> SweepCell:
        key = (series, degree)
        if key not in self.cells:
            self.cells[key] = SweepCell(mechanism=series, degree=degree)
        return self.cells[key]

    def profit_series(self, series: str) -> list[tuple[int, float]]:
        """(degree, mean profit) points for one series."""
        return [(degree, self.cell(series, degree).profit)
                for degree in self.scale.degrees]

    def render(self) -> str:
        rows = []
        for degree in self.scale.degrees:
            rows.append([degree] + [self.cell(s, degree).profit
                                    for s in FIGURE5_SERIES])
        return format_table(
            ["degree", *FIGURE5_SERIES], rows, precision=1,
            title=(f"Figure 5 — profit under lying workloads "
                   f"(capacity {self.capacity_label:g} "
                   f"scale-equivalent)"))


def figure5(
    scale: ExperimentScale | None = None,
    paper_capacity: float = 15_000.0,
) -> Figure5Result:
    """Regenerate Figure 5 at the configured scale.

    The paper runs it at capacity 15,000.  With Table III's own demand
    curve, lying only occurs at mid-to-high sharing degrees (that is
    where fair-share loads shrink below the ratio threshold), and at
    15K those degrees are under-loaded, so the experiment is also worth
    running at ``paper_capacity=5_000`` where the overload persists —
    see EXPERIMENTS.md.
    """
    scale = scale or ExperimentScale.from_env()
    capacity = scale.scaled_capacity(paper_capacity)
    result = Figure5Result(scale=scale, capacity_label=paper_capacity)
    for set_index, generator in enumerate(scale.generators()):
        for degree in scale.degrees:
            truthful = generator.instance(
                max_sharing=degree, capacity=capacity)
            moderately = apply_lying(
                truthful, MODERATE_LYING,
                seed=derive_seed(scale.seed, "ml", set_index, degree))
            aggressively = apply_lying(
                truthful, AGGRESSIVE_LYING,
                seed=derive_seed(scale.seed, "al", set_index, degree))
            workloads: list[tuple[str, str, AuctionInstance]] = [
                ("CAF", "CAF", truthful),
                ("CAT", "CAT", truthful),
                ("Two-price", "Two-price", truthful),
                ("CAR", "CAR", truthful),
                ("CAR-ML", "CAR", moderately),
                ("CAR-AL", "CAR", aggressively),
            ]
            for series, mechanism_name, instance in workloads:
                mechanism = mechanism_factory(
                    mechanism_name,
                    derive_seed(scale.seed, "fig5", series,
                                set_index, degree))
                started = time.perf_counter()
                outcome = mechanism.run(instance)
                elapsed_ms = (time.perf_counter() - started) * 1e3
                result.cell(series, degree).add(outcome, elapsed_ms)
    return result
