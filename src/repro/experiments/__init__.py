"""Experiment harness regenerating every table and figure of Section VI."""

from repro.experiments.export import (
    export_figure,
    export_figure5,
    export_report,
    export_sweep,
)
from repro.experiments.figures import (
    FigureResult,
    UtilizationSummary,
    figure4_all_profits,
    figure4_profit,
    figure4a,
    figure4b,
    utilization_summary,
)
from repro.experiments.harness import (
    FIGURE_MECHANISMS,
    PAPER_NUM_QUERIES,
    PAPER_NUM_SETS,
    TABLE4_MECHANISMS,
    ExperimentScale,
    SweepCell,
    SweepResult,
    mechanism_factory,
    run_sharing_sweep,
)
from repro.experiments.lying import FIGURE5_SERIES, Figure5Result, figure5
from repro.experiments.report import FullReport, full_report
from repro.experiments.runtime import (
    PAPER_TABLE4_MS,
    RuntimeTable,
    table4_runtime,
)
from repro.experiments.timeline import (
    BackpressureResult,
    BackpressureTick,
    ChurnConfig,
    PeriodRecord,
    TimelineResult,
    backpressure_rows,
    export_backpressure,
    run_backpressure,
    run_timeline,
)

__all__ = [
    "BackpressureResult",
    "BackpressureTick",
    "ChurnConfig",
    "ExperimentScale",
    "FIGURE5_SERIES",
    "FIGURE_MECHANISMS",
    "Figure5Result",
    "FigureResult",
    "FullReport",
    "PAPER_NUM_QUERIES",
    "PAPER_NUM_SETS",
    "PAPER_TABLE4_MS",
    "PeriodRecord",
    "RuntimeTable",
    "TimelineResult",
    "SweepCell",
    "SweepResult",
    "TABLE4_MECHANISMS",
    "UtilizationSummary",
    "backpressure_rows",
    "export_backpressure",
    "export_figure",
    "export_figure5",
    "export_report",
    "export_sweep",
    "figure4_all_profits",
    "figure4_profit",
    "figure4a",
    "figure4b",
    "figure5",
    "full_report",
    "mechanism_factory",
    "run_backpressure",
    "run_sharing_sweep",
    "run_timeline",
    "table4_runtime",
    "utilization_summary",
]
