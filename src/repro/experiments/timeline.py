"""Multi-period churn and backpressure timelines.

The paper's system model re-auctions "at the end of each subscription
period, say a day" (Section II), with the client population churning:
new queries arrive, served clients re-bid, unserved ones eventually
walk away.  This experiment runs that timeline for each mechanism on
identical arrival sequences and reports per-period and cumulative
revenue, admissions, and client retention — the business view the
single-shot Figure 4 numbers summarize.

Dynamics per period (all seeded):

* ``arrivals_per_period`` new queries arrive, drawing operators from a
  shared catalogue (hot operators get shared, per the Zipf popularity)
  and bids from the Table III rank profile;
* every still-present query participates in the auction (truthfully);
* winners stay for the next period with probability ``retention``;
  losers leave with probability ``loser_departure``.

The module also exports the *backpressure* timeline
(:func:`run_backpressure`): per-tick queue-length and latency curves
of a bounded-work :class:`~repro.dsms.scheduler.ScheduledEngine` at a
given admission factor.  At factor ≤ 1 queues stay flat (the priced
regime); above 1 they grow without bound — the figure-ready view of
*why* admission control is worth paying for.
:func:`backpressure_rows` turns a run into plain dict rows for figure
scripts and CSV export.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.core.mechanism import Mechanism
from repro.core.model import AuctionInstance, Operator, Query
from repro.experiments.harness import mechanism_factory
from repro.utils.rng import derive_seed, spawn_rng
from repro.utils.tables import format_table
from repro.workload.zipf import BoundedZipf


@dataclass(frozen=True)
class ChurnConfig:
    """Knobs of the churn timeline."""

    periods: int = 20
    arrivals_per_period: int = 12
    catalogue_size: int = 40
    max_operator_load: int = 10
    load_skew: float = 1.0
    operator_popularity_skew: float = 1.0
    operators_per_query: int = 3
    max_bid: float = 100.0
    bid_skew: float = 0.5
    capacity: float = 60.0
    retention: float = 0.85
    loser_departure: float = 0.5


@dataclass
class PeriodRecord:
    """One period's business numbers for one mechanism."""

    period: int
    candidates: int
    admitted: int
    revenue: float
    utilization: float


@dataclass
class TimelineResult:
    """The full timeline for a set of mechanisms."""

    config: ChurnConfig
    records: dict[str, list[PeriodRecord]] = field(default_factory=dict)

    def cumulative_revenue(self, mechanism: str) -> float:
        """Total revenue a mechanism collected over the timeline."""
        return sum(r.revenue for r in self.records[mechanism])

    def render(self) -> str:
        mechanisms = sorted(self.records)
        rows = []
        for mechanism in mechanisms:
            records = self.records[mechanism]
            rows.append([
                mechanism,
                self.cumulative_revenue(mechanism),
                sum(r.admitted for r in records) / len(records),
                sum(r.candidates for r in records) / len(records),
                sum(r.utilization for r in records) / len(records),
            ])
        return format_table(
            ["mechanism", "total revenue", "mean admitted",
             "mean candidates", "mean util"],
            rows, precision=2,
            title=(f"Churn timeline — {self.config.periods} periods, "
                   f"{self.config.arrivals_per_period} arrivals/period, "
                   f"capacity {self.config.capacity:g}"))


class _ClientPopulation:
    """Generates identical arrival sequences for every mechanism."""

    def __init__(self, config: ChurnConfig, seed: int) -> None:
        self._config = config
        rng = spawn_rng(derive_seed(seed, "catalogue"))
        load_dist = BoundedZipf(config.max_operator_load,
                                config.load_skew)
        self.operators = {
            f"op{i}": Operator(f"op{i}",
                               float(load_dist.sample(rng)))
            for i in range(config.catalogue_size)
        }
        popularity = BoundedZipf(config.catalogue_size,
                                 config.operator_popularity_skew)
        self._popularity = popularity
        self._seed = seed
        self._next_rank = 1

    def arrivals(self, period: int) -> list[Query]:
        """The new queries arriving at *period* (deterministic)."""
        config = self._config
        rng = spawn_rng(derive_seed(self._seed, "arrivals", period))
        queries = []
        for index in range(config.arrivals_per_period):
            ops: set[str] = set()
            while len(ops) < config.operators_per_query:
                pick = int(self._popularity.sample(rng)) - 1
                ops.add(f"op{pick}")
            # Bids follow the rank profile globally across the run, so
            # late arrivals are not systematically richer.
            rank = rng.integers(
                1, config.periods * config.arrivals_per_period + 1)
            bid = config.max_bid * float(rank) ** (-config.bid_skew)
            queries.append(Query(
                query_id=f"p{period}a{index}",
                operator_ids=tuple(sorted(ops)),
                bid=bid,
                owner=f"client_p{period}a{index}",
            ))
        return queries


@dataclass(frozen=True)
class BackpressureTick:
    """One tick of the bounded-work engine under a load factor."""

    tick: int
    queued: int
    delivered: int
    mean_latency: float
    work: float


@dataclass
class BackpressureResult:
    """Per-tick curves for each admission (load) factor."""

    capacity: float
    ticks: int
    records: dict[float, list[BackpressureTick]] = field(
        default_factory=dict)
    #: factor → :func:`repro.sim.metrics.metrics_snapshot` summary
    #: (queue depths + exact latency percentiles), the same dict shape
    #: the CLI, the benchmarks and the gateway's ``/metrics`` emit.
    snapshots: dict[float, dict] = field(default_factory=dict)

    def final_queue(self, factor: float) -> int:
        """Queue depth at the end of the run for *factor*."""
        return self.records[factor][-1].queued if self.records[factor] else 0


def run_backpressure(
    factors: Sequence[float] = (0.8, 1.0, 1.5),
    capacity: float = 30.0,
    ticks: int = 100,
    queries: int = 6,
    rate: float = 5.0,
    policy: str = "round-robin",
    seed: int = 0,
) -> BackpressureResult:
    """Per-tick queue/latency curves of the over-admission regimes.

    For each *factor*, admits *queries* single-select plans whose
    total analytic load is ``factor × capacity`` into a
    :class:`~repro.sim.LatencyProbe` (a
    :class:`~repro.dsms.scheduler.ScheduledEngine` bounded to
    *capacity* work units per tick, scheduled by the spec-addressable
    *policy*) fed by one Poisson stream, and records every tick's
    total queue length, deliveries, mean delivery latency and work.
    """
    from repro.dsms.operators import SelectOperator
    from repro.dsms.plan import ContinuousQuery
    from repro.dsms.streams import SyntheticStream
    from repro.sim.arrivals import pass_all
    from repro.sim.driver import LatencyProbe
    from repro.sim.metrics import metrics_snapshot

    result = BackpressureResult(capacity=float(capacity),
                                ticks=int(ticks))
    for factor in factors:
        probe = LatencyProbe(
            [SyntheticStream("s", rate=rate, seed=seed)],
            capacity=capacity, policy=policy)
        # Split factor × capacity of analytic load (rate × cost)
        # evenly across the queries.
        cost = (float(factor) * capacity) / (queries * rate)
        plans = {}
        for index in range(queries):
            op = SelectOperator(f"bp{index}", "s", pass_all,
                                cost_per_tuple=cost,
                                selectivity_estimate=1.0)
            plans[f"q{index}"] = ContinuousQuery(
                f"q{index}", (op,), sink_id=op.op_id, bid=1.0)
        probe.sync(plans)
        records = [
            BackpressureTick(
                tick=metrics.time,
                queued=metrics.queued,
                delivered=metrics.delivered,
                mean_latency=metrics.mean_latency,
                work=metrics.work,
            )
            for metrics in (probe.tick(tick)
                            for tick in range(1, int(ticks) + 1))
        ]
        result.records[float(factor)] = records
        result.snapshots[float(factor)] = metrics_snapshot(
            records, probe.engine.latency_samples)
    return result


def backpressure_rows(result: BackpressureResult) -> list[dict]:
    """Figure-script-ready rows: one dict per (factor, tick).

    Columns: ``factor``, ``tick``, ``queued``, ``delivered``,
    ``mean_latency``, ``work`` — ready for ``csv.DictWriter`` or a
    plotting dataframe.
    """
    rows = []
    for factor in sorted(result.records):
        for record in result.records[factor]:
            rows.append({
                "factor": factor,
                "tick": record.tick,
                "queued": record.queued,
                "delivered": record.delivered,
                "mean_latency": record.mean_latency,
                "work": record.work,
            })
    return rows


def export_backpressure(
    result: BackpressureResult, path
) -> None:
    """Write :func:`backpressure_rows` as CSV to *path*."""
    import csv
    from pathlib import Path

    rows = backpressure_rows(result)
    with Path(path).open("w", newline="") as handle:
        writer = csv.DictWriter(
            handle, fieldnames=["factor", "tick", "queued", "delivered",
                                "mean_latency", "work"])
        writer.writeheader()
        writer.writerows(rows)


def run_timeline(
    mechanisms: Sequence[str] = ("CAF", "CAT", "Two-price"),
    config: ChurnConfig | None = None,
    seed: int = 0,
) -> TimelineResult:
    """Run the churn timeline for each mechanism on identical arrivals."""
    config = config or ChurnConfig()
    result = TimelineResult(config=config)
    for name in mechanisms:
        population = _ClientPopulation(config, seed)
        departure_rng = spawn_rng(derive_seed(seed, "departures", name))
        present: dict[str, Query] = {}
        records: list[PeriodRecord] = []
        for period in range(1, config.periods + 1):
            for query in population.arrivals(period):
                present[query.query_id] = query
            instance = AuctionInstance(
                population.operators,
                tuple(present.values()),
                config.capacity,
            )
            mechanism: Mechanism = mechanism_factory(
                name, derive_seed(seed, "mech", name, period))
            outcome = mechanism.run(instance)
            records.append(PeriodRecord(
                period=period,
                candidates=instance.num_queries,
                admitted=len(outcome.winner_ids),
                revenue=outcome.profit,
                utilization=outcome.utilization,
            ))
            # Churn: winners mostly stay, losers mostly leave.
            survivors: dict[str, Query] = {}
            for query_id, query in present.items():
                if outcome.is_winner(query_id):
                    if departure_rng.random() < config.retention:
                        survivors[query_id] = query
                elif departure_rng.random() >= config.loser_departure:
                    survivors[query_id] = query
            present = survivors
        result.records[name] = records
    return result
