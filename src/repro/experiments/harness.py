"""The Section VI experiment harness.

The paper averages every metric over 50 workload sets of 2000 queries.
That scale is reachable here but slow in pure Python (CAF+/CAT+ pay a
quadratic movement-window computation), so the harness exposes a
*scale* that defaults to a reduced, shape-preserving configuration and
is overridable via environment variables:

* ``REPRO_SETS`` — number of workload sets (paper: 50, default 3);
* ``REPRO_QUERIES`` — queries per instance (paper: 2000, default 300);
* ``REPRO_DEGREES`` — comma-separated sharing sweep (paper: 1..60,
  default a 10-point subsample).

Capacities scale proportionally with the query count so the
capacity-to-demand ratio (which determines the figures' shape) matches
the paper's at any scale.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from collections.abc import Callable, Sequence

from repro.core.mechanism import Mechanism, MechanismSpec
from repro.core.result import AuctionOutcome
from repro.utils.rng import derive_seed
from repro.workload.generator import (
    WorkloadConfig,
    WorkloadGenerator,
)

#: Paper scale constants.
PAPER_NUM_SETS = 50
PAPER_NUM_QUERIES = 2000

#: The evaluation line-up of Figure 4 plus the benchmarks of Table IV.
FIGURE_MECHANISMS = ("CAF", "CAF+", "CAT", "CAT+", "Two-price")
TABLE4_MECHANISMS = ("Random", "GV", "Two-price", "CAF", "CAF+",
                     "CAT", "CAT+")

_DEFAULT_DEGREES = (1, 2, 3, 5, 8, 12, 20, 30, 45, 60)


def _env_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    return default if value is None else int(value)


def _env_degrees(default: tuple[int, ...]) -> tuple[int, ...]:
    value = os.environ.get("REPRO_DEGREES")
    if value is None:
        return default
    return tuple(int(part) for part in value.split(",") if part.strip())


@dataclass(frozen=True)
class ExperimentScale:
    """How big to run: sets × queries × sharing degrees."""

    num_sets: int = 3
    num_queries: int = 300
    degrees: tuple[int, ...] = _DEFAULT_DEGREES
    seed: int = 2010  # the paper's year; any constant works

    @classmethod
    def from_env(cls) -> "ExperimentScale":
        """Read the scale from ``REPRO_*`` environment variables."""
        return cls(
            num_sets=_env_int("REPRO_SETS", 3),
            num_queries=_env_int("REPRO_QUERIES", 300),
            degrees=_env_degrees(_DEFAULT_DEGREES),
            seed=_env_int("REPRO_SEED", 2010),
        )

    @classmethod
    def paper(cls) -> "ExperimentScale":
        """The full Section VI scale (slow in pure Python)."""
        return cls(
            num_sets=PAPER_NUM_SETS,
            num_queries=PAPER_NUM_QUERIES,
            degrees=tuple(range(1, 61)),
        )

    def scaled_capacity(self, paper_capacity: float) -> float:
        """Paper capacity adjusted to the reduced query count."""
        return paper_capacity * self.num_queries / PAPER_NUM_QUERIES

    def generators(self) -> list[WorkloadGenerator]:
        """One seeded generator per workload set."""
        config = WorkloadConfig().scaled(self.num_queries)
        return [
            WorkloadGenerator(
                config=config, seed=derive_seed(self.seed, "set", index))
            for index in range(self.num_sets)
        ]


def mechanism_factory(name: str, seed: int) -> Mechanism:
    """Instantiate *name*, seeding the randomized mechanisms.

    Seeding is signature-driven: any registered mechanism whose factory
    takes a ``seed`` parameter (today Two-price and Random) gets one.
    """
    spec = MechanismSpec(name)
    if spec.accepts("seed"):
        spec = spec.with_params(seed=seed)
    return spec.create()


@dataclass
class SweepCell:
    """Metric statistics for one (mechanism, degree) cell of a sweep.

    Means are maintained incrementally; per-metric sums of squares
    allow standard deviations across workload sets (the paper averages
    50 sets — dispersion tells you whether a gap in the figures is
    real at reduced scale).
    """

    mechanism: str
    degree: int
    profit: float = 0.0
    admission_rate: float = 0.0
    total_user_payoff: float = 0.0
    utilization: float = 0.0
    runtime_ms: float = 0.0
    samples: int = 0
    _sum_squares: dict = field(default_factory=dict)

    _METRICS = ("profit", "admission_rate", "total_user_payoff",
                "utilization", "runtime_ms")

    def add(self, outcome: AuctionOutcome, runtime_ms: float) -> None:
        """Fold one run's metrics into the running statistics."""
        values = {
            "profit": outcome.profit,
            "admission_rate": outcome.admission_rate,
            "total_user_payoff": outcome.total_user_payoff,
            "utilization": outcome.utilization,
            "runtime_ms": runtime_ms,
        }
        n = self.samples
        for metric, value in values.items():
            mean = getattr(self, metric)
            setattr(self, metric, (mean * n + value) / (n + 1))
            self._sum_squares[metric] = (
                self._sum_squares.get(metric, 0.0) + value * value)
        self.samples = n + 1

    def std(self, metric: str) -> float:
        """Population standard deviation of *metric* over the samples."""
        if self.samples == 0 or metric not in self._METRICS:
            return 0.0
        mean = getattr(self, metric)
        mean_square = self._sum_squares.get(metric, 0.0) / self.samples
        variance = max(mean_square - mean * mean, 0.0)
        return variance ** 0.5


@dataclass
class SweepResult:
    """A sharing sweep: metric means per mechanism per degree."""

    capacity_label: float
    scale: ExperimentScale
    cells: dict[tuple[str, int], SweepCell] = field(default_factory=dict)

    def cell(self, mechanism: str, degree: int) -> SweepCell:
        key = (mechanism, degree)
        if key not in self.cells:
            self.cells[key] = SweepCell(mechanism=mechanism, degree=degree)
        return self.cells[key]

    def series(
        self, mechanism: str, metric: str
    ) -> list[tuple[int, float]]:
        """(degree, value) pairs for one mechanism and metric."""
        points = []
        for (name, degree), cell in sorted(self.cells.items(),
                                           key=lambda kv: kv[0][1]):
            if name == mechanism:
                points.append((degree, getattr(cell, metric)))
        return points


def run_sharing_sweep(
    scale: ExperimentScale,
    paper_capacity: float,
    mechanisms: Sequence[str] = FIGURE_MECHANISMS,
    instance_hook: "Callable[[object], object] | None" = None,
) -> SweepResult:
    """Run the Figure 4 sweep at one capacity.

    *instance_hook*, when given, transforms each instance before the
    mechanisms run (the lying experiment uses it to inject strategic
    bids).
    """
    capacity = scale.scaled_capacity(paper_capacity)
    result = SweepResult(capacity_label=paper_capacity, scale=scale)
    for set_index, generator in enumerate(scale.generators()):
        for degree in scale.degrees:
            instance = generator.instance(
                max_sharing=degree, capacity=capacity)
            if instance_hook is not None:
                instance = instance_hook(instance)
            for name in mechanisms:
                mechanism = mechanism_factory(
                    name, derive_seed(scale.seed, name, set_index, degree))
                started = time.perf_counter()
                outcome = mechanism.run(instance)
                elapsed_ms = (time.perf_counter() - started) * 1e3
                result.cell(name, degree).add(outcome, elapsed_ms)
    return result
