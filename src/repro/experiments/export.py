"""CSV export of experiment series.

The harness renders ASCII for the terminal; anyone re-plotting the
figures wants machine-readable series.  ``export_sweep`` /
``export_figure5`` / ``export_report`` write tidy CSV (one row per
(mechanism, degree) observation, with means and standard deviations),
loadable by pandas/gnuplot/anything.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.experiments.figures import FigureResult
from repro.experiments.harness import SweepResult
from repro.experiments.lying import FIGURE5_SERIES, Figure5Result

#: Metrics exported for every sweep cell.
SWEEP_METRICS = ("profit", "admission_rate", "total_user_payoff",
                 "utilization", "runtime_ms")


def export_sweep(sweep: SweepResult, path: "str | Path") -> Path:
    """Write a sharing sweep as tidy CSV; returns the path."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        header = ["capacity", "mechanism", "degree", "samples"]
        for metric in SWEEP_METRICS:
            header.extend([metric, f"{metric}_std"])
        writer.writerow(header)
        for (mechanism, degree), cell in sorted(sweep.cells.items()):
            row: list[object] = [
                sweep.capacity_label, mechanism, degree, cell.samples]
            for metric in SWEEP_METRICS:
                row.extend([getattr(cell, metric), cell.std(metric)])
            writer.writerow(row)
    return path


def export_figure(figure: FigureResult, path: "str | Path") -> Path:
    """Write one figure's (degree × mechanism) matrix as CSV."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["degree", *figure.mechanisms])
        for row in figure.rows():
            writer.writerow(row)
    return path


def export_figure5(result: Figure5Result, path: "str | Path") -> Path:
    """Write the Figure 5 profit series as CSV."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["degree", *FIGURE5_SERIES])
        for degree in result.scale.degrees:
            writer.writerow([
                degree,
                *(result.cell(series, degree).profit
                  for series in FIGURE5_SERIES),
            ])
    return path


def export_report(report, directory: "str | Path") -> list[Path]:
    """Write every series of a :class:`FullReport` under *directory*."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = [
        export_figure(report.figure_4a, directory / "figure4a.csv"),
        export_figure(report.figure_4b, directory / "figure4b.csv"),
    ]
    labels = ("c", "d", "e", "f")
    for label, figure in zip(labels, report.profit_figures):
        written.append(export_figure(
            figure, directory / f"figure4{label}_profit.csv"))
    written.append(export_figure5(
        report.figure_5, directory / "figure5.csv"))
    if report.figure_5_overloaded is not None:
        written.append(export_figure5(
            report.figure_5_overloaded,
            directory / "figure5_overloaded.csv"))
    return written
