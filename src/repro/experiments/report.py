"""Run every experiment and print the paper's tables and figures.

``python -m repro.experiments`` regenerates, at the configured scale
(see :class:`repro.experiments.harness.ExperimentScale`):

* Figure 4(a) — admission rate vs. sharing (capacity 15,000);
* Figure 4(b) — total user payoff vs. sharing (capacity 15,000);
* Figures 4(c)–(f) — profit vs. sharing at capacities 5K–20K;
* the utilization summary;
* Table IV — mechanism runtimes;
* Figure 5 — CAR under lying workloads;
* Table I — empirical property verification.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.figures import (
    FigureResult,
    UtilizationSummary,
    figure4a,
    figure4b,
    figure4_profit,
    utilization_summary,
)
from repro.experiments.harness import (
    ExperimentScale,
    run_sharing_sweep,
)
from repro.experiments.lying import Figure5Result, figure5
from repro.experiments.runtime import RuntimeTable, table4_runtime
from repro.experiments.timeline import ChurnConfig, run_timeline
from repro.gametheory.properties import render_verdicts, verify_properties


@dataclass
class FullReport:
    """Every regenerated artifact, renderable as one text report."""

    scale: ExperimentScale
    figure_4a: FigureResult
    figure_4b: FigureResult
    profit_figures: list[FigureResult]
    utilization: UtilizationSummary
    table_4: RuntimeTable
    figure_5: Figure5Result
    figure_5_overloaded: Figure5Result | None = None
    properties_text: str = ""
    sections: list[str] = field(default_factory=list)

    def render(self) -> str:
        parts = [
            f"repro experiment report — {self.scale.num_queries} queries"
            f" x {self.scale.num_sets} sets, degrees {self.scale.degrees}",
            "",
            self.figure_4a.render(), "",
            self.figure_4b.render(), "",
        ]
        for figure in self.profit_figures:
            parts.extend([figure.render(), ""])
        parts.extend([self.utilization.render(), ""])
        parts.extend([self.table_4.render(), ""])
        parts.extend([self.figure_5.render(), ""])
        if self.figure_5_overloaded is not None:
            parts.extend([self.figure_5_overloaded.render(), ""])
        if self.properties_text:
            parts.extend([self.properties_text, ""])
        parts.extend(self.sections)
        return "\n".join(parts)


def full_report(
    scale: ExperimentScale | None = None,
    include_properties: bool = True,
) -> FullReport:
    """Regenerate everything (shares the capacity-15K sweep)."""
    scale = scale or ExperimentScale.from_env()
    sweep_15k = run_sharing_sweep(scale, 15_000.0)
    profit_figures = [
        figure4_profit(5_000.0, scale),
        figure4_profit(10_000.0, scale),
        figure4_profit(15_000.0, scale, sweep=sweep_15k),
        figure4_profit(20_000.0, scale),
    ]
    report = FullReport(
        scale=scale,
        figure_4a=figure4a(scale, sweep=sweep_15k),
        figure_4b=figure4b(scale, sweep=sweep_15k),
        profit_figures=profit_figures,
        utilization=utilization_summary(scale, sweep=sweep_15k),
        table_4=table4_runtime(scale),
        figure_5=figure5(scale),
        figure_5_overloaded=figure5(scale, paper_capacity=5_000.0),
    )
    if include_properties:
        report.properties_text = render_verdicts(verify_properties())
    timeline = run_timeline(
        ("CAF", "CAT", "Two-price"),
        ChurnConfig(periods=12, arrivals_per_period=10,
                    catalogue_size=30, capacity=50.0),
        seed=scale.seed)
    report.sections.append(timeline.render())
    return report
