"""Figure 4 series: admission rate, user payoff, and profit-by-capacity.

Each function regenerates one paper figure as a numeric table (the
series the paper plots), using the shared sweep harness.  Figures
4(a)/(b)/(e) use system capacity 15,000; 4(c)–(f) sweep capacity from
5,000 to 20,000.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.experiments.harness import (
    FIGURE_MECHANISMS,
    ExperimentScale,
    SweepResult,
    run_sharing_sweep,
)
from repro.utils.tables import format_table

#: The capacities of Figures 4(c)–(f).
PROFIT_CAPACITIES = (5_000.0, 10_000.0, 15_000.0, 20_000.0)


@dataclass
class FigureResult:
    """One figure: a metric per mechanism across the sharing sweep."""

    figure: str
    metric: str
    sweep: SweepResult
    mechanisms: tuple[str, ...] = FIGURE_MECHANISMS

    def rows(self) -> list[list[object]]:
        """Degree-indexed rows, one column per mechanism."""
        table: list[list[object]] = []
        for degree in self.sweep.scale.degrees:
            row: list[object] = [degree]
            for name in self.mechanisms:
                row.append(getattr(self.sweep.cell(name, degree),
                                   self.metric))
            table.append(row)
        return table

    def render(self) -> str:
        """ASCII rendering of the figure's series."""
        title = (f"{self.figure} — {self.metric} vs. max degree of "
                 f"sharing (capacity {self.sweep.capacity_label:g}, "
                 f"{self.sweep.scale.num_queries} queries x "
                 f"{self.sweep.scale.num_sets} sets)")
        return format_table(
            ["degree", *self.mechanisms], self.rows(),
            precision=3, title=title)

    def series(self, mechanism: str) -> list[tuple[int, float]]:
        """(degree, value) points for one mechanism."""
        return self.sweep.series(mechanism, self.metric)


def figure4a(
    scale: ExperimentScale | None = None,
    sweep: SweepResult | None = None,
) -> FigureResult:
    """Figure 4(a): percentage of queries serviced, capacity 15,000."""
    scale = scale or ExperimentScale.from_env()
    sweep = sweep or run_sharing_sweep(scale, 15_000.0)
    return FigureResult("Figure 4(a)", "admission_rate", sweep)


def figure4b(
    scale: ExperimentScale | None = None,
    sweep: SweepResult | None = None,
) -> FigureResult:
    """Figure 4(b): total user payoff, capacity 15,000."""
    scale = scale or ExperimentScale.from_env()
    sweep = sweep or run_sharing_sweep(scale, 15_000.0)
    return FigureResult("Figure 4(b)", "total_user_payoff", sweep)


def figure4_profit(
    paper_capacity: float,
    scale: ExperimentScale | None = None,
    sweep: SweepResult | None = None,
) -> FigureResult:
    """Figures 4(c)–(f): system profit at one capacity.

    ``paper_capacity`` selects the sub-figure: 5,000 → (c), 10,000 →
    (d), 15,000 → (e), 20,000 → (f).
    """
    labels = {5_000.0: "(c)", 10_000.0: "(d)",
              15_000.0: "(e)", 20_000.0: "(f)"}
    label = labels.get(float(paper_capacity), "(profit)")
    scale = scale or ExperimentScale.from_env()
    sweep = sweep or run_sharing_sweep(scale, paper_capacity)
    return FigureResult(f"Figure 4{label}", "profit", sweep)


def figure4_all_profits(
    scale: ExperimentScale | None = None,
    capacities: Sequence[float] = PROFIT_CAPACITIES,
) -> list[FigureResult]:
    """All four profit sub-figures (4(c)–(f))."""
    scale = scale or ExperimentScale.from_env()
    return [figure4_profit(capacity, scale) for capacity in capacities]


@dataclass
class UtilizationSummary:
    """The Section VI utilization claim, measured.

    The paper: density mechanisms utilize more than 98% of capacity,
    Two-price 96–98%.  With Table III's own parameters the claim can
    only hold while total demand exceeds capacity, so the summary also
    reports the restriction to *overloaded* sweep points (demand ≥
    capacity); see EXPERIMENTS.md.
    """

    sweep: SweepResult
    overloaded_degrees: tuple[int, ...]

    def mean_utilization(
        self, mechanism: str, overloaded_only: bool = True
    ) -> float:
        degrees = (self.overloaded_degrees if overloaded_only
                   else self.sweep.scale.degrees)
        if not degrees:
            return 0.0
        values = [self.sweep.cell(mechanism, d).utilization
                  for d in degrees]
        return sum(values) / len(values)

    def render(self) -> str:
        rows = []
        for name in FIGURE_MECHANISMS:
            rows.append([
                name,
                100.0 * self.mean_utilization(name, overloaded_only=True),
                100.0 * self.mean_utilization(name, overloaded_only=False),
            ])
        return format_table(
            ["mechanism", "util% (overloaded)", "util% (all degrees)"],
            rows, precision=2,
            title="System utilization (capacity 15,000 sweep)")


def utilization_summary(
    scale: ExperimentScale | None = None,
    sweep: SweepResult | None = None,
) -> UtilizationSummary:
    """Measure the utilization claim on the capacity-15,000 sweep."""
    scale = scale or ExperimentScale.from_env()
    sweep = sweep or run_sharing_sweep(scale, 15_000.0)
    capacity = scale.scaled_capacity(15_000.0)
    generator = scale.generators()[0]
    overloaded = tuple(
        degree for degree in scale.degrees
        if generator.instance(max_sharing=degree).total_demand()
        >= capacity
    )
    return UtilizationSummary(sweep=sweep, overloaded_degrees=overloaded)
