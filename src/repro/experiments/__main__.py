"""CLI entry point: ``python -m repro.experiments`` prints the report."""

from repro.experiments.report import full_report

if __name__ == "__main__":
    print(full_report().render())
