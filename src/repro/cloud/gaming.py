"""Subscription-category gaming — Section VII's open problem, simulated.

"A user who wants to run a CQ for one month in July may instead bid
for a two month subscription starting in June if she believes demand
is low enough in June to get charged a sufficiently low price."
The per-category auctions are each bid-strategyproof, but *category
choice across time* is a new strategic dimension; the paper leaves
guarding it as future work.  This module demonstrates the gap: it
compares a client's total cost under the honest plan (subscribe for
July) versus the gaming plan (subscribe for June+July during the June
lull), under a demand profile the client believes.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Mapping, Sequence

from repro.cloud.subscriptions import (
    SubscriptionCategory,
    SubscriptionRequest,
    SubscriptionScheduler,
)
from repro.core.mechanism import Mechanism
from repro.core.model import Operator, Query


@dataclass(frozen=True)
class GamingOutcome:
    """Cost comparison of the honest and gaming subscription plans."""

    honest_cost: float
    honest_served: bool
    gaming_cost: float
    gaming_served: bool

    @property
    def gaming_profitable(self) -> bool:
        """True when subscribing early-and-long is strictly cheaper
        (while still getting served in the period the user wants)."""
        if not self.gaming_served:
            return False
        if not self.honest_served:
            return True
        return self.gaming_cost < self.honest_cost - 1e-9


def _run_plan(
    operators: Mapping[str, Operator],
    capacity: float,
    mechanism_factory: Callable[[str], Mechanism],
    categories: Sequence[SubscriptionCategory],
    background: Mapping[int, Sequence[SubscriptionRequest]],
    client_requests: Mapping[int, SubscriptionRequest],
    horizon: int,
    target_days: Sequence[int],
) -> tuple[float, bool]:
    """Run the scheduler for *horizon* days; return the client's total
    cost and whether she was actively served on every target day."""
    scheduler = SubscriptionScheduler(
        operators, capacity, mechanism_factory, categories)
    cost = 0.0
    served_days: set[int] = set()
    client_ids = {r.query.query_id for r in client_requests.values()}
    for day in range(1, horizon + 1):
        requests = list(background.get(day, ()))
        if day in client_requests:
            requests.append(client_requests[day])
        scheduler.run_day(requests)
        for subscription in scheduler.active:
            if subscription.query.query_id in client_ids:
                served_days.add(day)
        for result in scheduler.history[-1:]:
            for admitted in result.admitted:
                if admitted.query.query_id in client_ids:
                    cost += admitted.payment
    served = all(
        any(d >= target for d in served_days if d >= target)
        and target in served_days
        for target in target_days
    )
    return cost, served


def simulate_category_gaming(
    operators: Mapping[str, Operator],
    capacity: float,
    mechanism_factory: Callable[[str], Mechanism],
    categories: Sequence[SubscriptionCategory],
    background: Mapping[int, Sequence[SubscriptionRequest]],
    client_query: Query,
    honest_day: int,
    honest_category: str,
    gaming_day: int,
    gaming_category: str,
    horizon: int,
    target_days: Sequence[int],
) -> GamingOutcome:
    """Compare the honest and gaming plans for one client.

    *background* maps day → the other users' requests (identical under
    both plans).  The honest plan submits ``client_query`` on
    *honest_day* in *honest_category*; the gaming plan submits it on
    *gaming_day* in the longer *gaming_category*.  ``target_days`` are
    the days the client genuinely needs service.
    """
    honest_cost, honest_served = _run_plan(
        operators, capacity, mechanism_factory, categories, background,
        {honest_day: SubscriptionRequest(client_query, honest_category)},
        horizon, target_days)
    gaming_cost, gaming_served = _run_plan(
        operators, capacity, mechanism_factory, categories, background,
        {gaming_day: SubscriptionRequest(client_query, gaming_category)},
        horizon, target_days)
    return GamingOutcome(
        honest_cost=honest_cost,
        honest_served=honest_served,
        gaming_cost=gaming_cost,
        gaming_served=gaming_served,
    )
