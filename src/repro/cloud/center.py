"""The DSMS center: auction-driven admission on top of the engine.

Ties the pieces together into the business of Section I: clients submit
continuous queries with bids; at the end of each subscription period
the center estimates operator loads, runs the chosen admission
mechanism, bills the winners, and transitions the stream engine to the
new admitted set (holding tuples at connection points, per Section II).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping, Sequence

from repro.cloud.billing import BillingLedger
from repro.core.mechanism import Mechanism
from repro.core.model import AuctionInstance, Operator, Query
from repro.core.result import AuctionOutcome
from repro.dsms.engine import StreamEngine
from repro.dsms.load import estimate_operator_loads
from repro.dsms.plan import ContinuousQuery, QueryPlanCatalog
from repro.dsms.streams import StreamSource
from repro.utils.validation import ValidationError, require


@dataclass
class PeriodReport:
    """One subscription period's business summary."""

    period: int
    outcome: AuctionOutcome
    revenue: float
    admitted: tuple[str, ...]
    rejected: tuple[str, ...]
    engine_ticks: int
    engine_utilization: float | None

    @property
    def admission_rate(self) -> float:
        """Fraction of submitted queries admitted this period."""
        total = len(self.admitted) + len(self.rejected)
        return len(self.admitted) / total if total else 0.0


@dataclass
class DSMSCenter:
    """A for-profit stream-monitoring service.

    Parameters
    ----------
    sources:
        The data streams the center ingests.
    capacity:
        Work units the servers execute per tick (the auction's
        capacity).
    mechanism:
        The admission mechanism (the paper recommends CAT: the only
        strategyproof *and* sybil-immune choice).
    ticks_per_period:
        Engine ticks that constitute one subscription period ("a day").
    """

    sources: Sequence[StreamSource]
    capacity: float
    mechanism: Mechanism
    ticks_per_period: int = 50
    ledger: BillingLedger = field(default_factory=BillingLedger)

    def __post_init__(self) -> None:
        self.engine = StreamEngine(self.sources, capacity=self.capacity)
        self._pending: dict[str, ContinuousQuery] = {}
        self._period = 0
        self.reports: list[PeriodReport] = []

    # ------------------------------------------------------------------
    # Client-facing API
    # ------------------------------------------------------------------

    def submit(self, query: ContinuousQuery) -> None:
        """Queue *query* (with its bid) for the next period's auction."""
        require(query.bid >= 0, "bids must be non-negative")
        if (query.query_id in self._pending
                or query.query_id in self.engine.admitted_ids):
            raise ValidationError(
                f"query id {query.query_id!r} already submitted")
        self._pending[query.query_id] = query

    def withdraw(self, query_id: str) -> None:
        """Remove a not-yet-auctioned submission."""
        del self._pending[query_id]

    @property
    def pending_ids(self) -> set[str]:
        """Queries awaiting the next auction."""
        return set(self._pending)

    # ------------------------------------------------------------------
    # The period cycle
    # ------------------------------------------------------------------

    def _stream_rates(self) -> dict[str, float]:
        return {source.name: source.expected_rate()
                for source in self.sources}

    def build_auction(self) -> AuctionInstance:
        """The auction input for the next period.

        All candidates compete: currently-running queries re-bid
        alongside new submissions (the paper's model re-auctions each
        period), with loads estimated analytically from stream rates.
        """
        candidates = dict(self._pending)
        for query_id, query in self.engine.catalog.queries.items():
            candidates[query_id] = query
        if not candidates:
            raise ValidationError("no queries to auction")
        catalog = QueryPlanCatalog(candidates.values())
        loads = estimate_operator_loads(catalog, self._stream_rates())
        operators = {
            op_id: Operator(op_id, loads.get(op_id, 0.0))
            for op_id in catalog.operators
        }
        queries = tuple(
            Query(
                query_id=q.query_id,
                operator_ids=q.operator_ids,
                bid=q.bid,
                valuation=q.valuation,
                owner=q.owner,
            )
            for q in candidates.values()
        )
        return AuctionInstance(operators, queries, self.capacity)

    def run_period(self) -> PeriodReport:
        """Auction, transition, execute, and bill one period."""
        self._period += 1
        instance = self.build_auction()
        outcome = self.mechanism.run(instance)
        revenue = self.ledger.bill_outcome(self._period, outcome)

        candidates = dict(self._pending)
        for query_id, query in self.engine.catalog.queries.items():
            candidates.setdefault(query_id, query)
        admitted = sorted(outcome.winner_ids)
        rejected = sorted(set(candidates) - outcome.winner_ids)

        currently_running = self.engine.admitted_ids
        to_remove = sorted(currently_running - set(admitted))
        to_add = [candidates[qid] for qid in admitted
                  if qid not in currently_running]
        if currently_running:
            self.engine.transition(add=to_add, remove=to_remove)
        else:
            for query in to_add:
                self.engine.admit(query)
        self._pending.clear()

        ticks_before = self.engine.report.ticks
        work_before = self.engine.report.total_work
        self.engine.run(self.ticks_per_period)
        ticks = self.engine.report.ticks - ticks_before
        work = self.engine.report.total_work - work_before
        utilization = (work / ticks / self.capacity) if ticks else None

        report = PeriodReport(
            period=self._period,
            outcome=outcome,
            revenue=revenue,
            admitted=tuple(admitted),
            rejected=tuple(rejected),
            engine_ticks=ticks,
            engine_utilization=utilization,
        )
        self.reports.append(report)
        return report

    def run_periods(
        self,
        submissions_per_period: Iterable[Sequence[ContinuousQuery]],
    ) -> list[PeriodReport]:
        """Run several periods, submitting each batch before its auction."""
        reports = []
        for batch in submissions_per_period:
            for query in batch:
                self.submit(query)
            reports.append(self.run_period())
        return reports

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def total_revenue(self) -> float:
        """Revenue over all billed periods."""
        return self.ledger.total_revenue()

    def measured_loads(self) -> Mapping[str, float]:
        """The engine's measured per-operator loads."""
        return self.engine.measured_loads()
