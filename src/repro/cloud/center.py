"""Deprecated: the DSMS center now lives in :mod:`repro.service`.

``DSMSCenter`` used to hard-wire auction building, engine transition,
billing and reporting into one class.  Those responsibilities are now
pluggable components composed by
:class:`repro.service.AdmissionService`; this module keeps the old
constructor working as a thin shim so existing code and archived
experiment scripts keep running.

Migrate::

    # before
    from repro.cloud import DSMSCenter
    center = DSMSCenter(sources=[...], capacity=30.0, mechanism=CAT())

    # after
    from repro.service import ServiceBuilder
    service = (ServiceBuilder()
        .with_sources(...)
        .with_capacity(30.0)
        .with_mechanism("CAT")
        .build())
"""

from __future__ import annotations

import warnings
from collections.abc import Iterable

from repro.core.mechanism import Mechanism, MechanismSpec
from repro.dsms.streams import StreamSource
from repro.service.reports import PeriodReport
from repro.service.service import AdmissionService

__all__ = ["DSMSCenter", "PeriodReport"]


class DSMSCenter(AdmissionService):
    """Deprecated alias of :class:`repro.service.AdmissionService`.

    Accepts the historical positional constructor signature and warns;
    every method and attribute of the new facade is available.
    """

    def __init__(
        self,
        sources: Iterable[StreamSource],
        capacity: float,
        mechanism: "Mechanism | MechanismSpec | str",
        ticks_per_period: int = 50,
        ledger: "object | None" = None,
    ) -> None:
        warnings.warn(
            "DSMSCenter is deprecated; build a repro.service"
            ".AdmissionService (e.g. via ServiceBuilder) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(
            sources=sources,
            capacity=capacity,
            mechanism=mechanism,
            ticks_per_period=ticks_per_period,
            ledger=ledger,
        )
