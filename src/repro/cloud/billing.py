"""Billing: per-period invoices and owner account balances.

The DSMS center charges each admitted query the price the auction
mechanism set.  The ledger records every period's outcome so revenue,
per-user spend and per-mechanism history can be audited — and so sybil
accounting works: an owner's balance aggregates the charges of *all*
queries she submitted, fake or not (Section V's assumption).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.result import AuctionOutcome


@dataclass(frozen=True)
class Invoice:
    """One query's charge for one subscription period."""

    period: int
    query_id: str
    owner: str
    amount: float
    mechanism: str


@dataclass
class BillingLedger:
    """Append-only record of auction charges."""

    invoices: list[Invoice] = field(default_factory=list)

    def bill_outcome(self, period: int, outcome: AuctionOutcome) -> float:
        """Invoice every winner of *outcome*; returns the period revenue."""
        revenue = 0.0
        for query_id, amount in sorted(outcome.payments.items()):
            owner = outcome.instance.query(query_id).owner_id
            self.invoices.append(Invoice(
                period=period,
                query_id=query_id,
                owner=owner,
                amount=amount,
                mechanism=outcome.mechanism,
            ))
            revenue += amount
        return revenue

    def total_revenue(self) -> float:
        """Revenue across all recorded periods."""
        return sum(invoice.amount for invoice in self.invoices)

    def revenue_by_period(self) -> dict[int, float]:
        """Period → revenue."""
        revenue: dict[int, float] = {}
        for invoice in self.invoices:
            revenue[invoice.period] = (
                revenue.get(invoice.period, 0.0) + invoice.amount)
        return revenue

    def owner_balance(self, owner: str) -> float:
        """Total charged to *owner* across all her queries and periods."""
        return sum(invoice.amount for invoice in self.invoices
                   if invoice.owner == owner)

    def invoices_for(self, owner: str) -> list[Invoice]:
        """All invoices charged to *owner*."""
        return [invoice for invoice in self.invoices
                if invoice.owner == owner]
