"""The DSMS-center business layer: billing, subscriptions, energy,
and the (deprecated) auction-driven service orchestrator.

``DSMSCenter`` and ``PeriodReport`` are re-exported lazily: the
orchestrator moved to :mod:`repro.service`, which itself depends on
:mod:`repro.cloud.billing`, so importing them eagerly here would be
circular.
"""

from repro.cloud.billing import BillingLedger, Invoice
from repro.cloud.gaming import GamingOutcome, simulate_category_gaming
from repro.cloud.energy import (
    CapacityChoice,
    EnergyModel,
    best_capacity,
    evaluate_capacities,
)
from repro.cloud.subscriptions import (
    DEFAULT_CATEGORIES,
    ActiveSubscription,
    DailyResult,
    SubscriptionCategory,
    SubscriptionRequest,
    SubscriptionScheduler,
    validate_categories,
)

_LAZY = ("DSMSCenter", "PeriodReport")


def __getattr__(name: str):
    if name in _LAZY:
        from repro.cloud import center

        return getattr(center, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))


__all__ = [
    "ActiveSubscription",
    "BillingLedger",
    "CapacityChoice",
    "DEFAULT_CATEGORIES",
    "DSMSCenter",
    "DailyResult",
    "EnergyModel",
    "GamingOutcome",
    "Invoice",
    "PeriodReport",
    "simulate_category_gaming",
    "SubscriptionCategory",
    "SubscriptionRequest",
    "SubscriptionScheduler",
    "best_capacity",
    "evaluate_capacities",
    "validate_categories",
]
