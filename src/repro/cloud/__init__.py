"""The DSMS-center business layer: billing, subscriptions, energy,
and the auction-driven service orchestrator."""

from repro.cloud.billing import BillingLedger, Invoice
from repro.cloud.center import DSMSCenter, PeriodReport
from repro.cloud.gaming import GamingOutcome, simulate_category_gaming
from repro.cloud.energy import (
    CapacityChoice,
    EnergyModel,
    best_capacity,
    evaluate_capacities,
)
from repro.cloud.subscriptions import (
    DEFAULT_CATEGORIES,
    ActiveSubscription,
    DailyResult,
    SubscriptionCategory,
    SubscriptionRequest,
    SubscriptionScheduler,
)

__all__ = [
    "ActiveSubscription",
    "BillingLedger",
    "CapacityChoice",
    "DEFAULT_CATEGORIES",
    "DSMSCenter",
    "DailyResult",
    "EnergyModel",
    "GamingOutcome",
    "Invoice",
    "PeriodReport",
    "simulate_category_gaming",
    "SubscriptionCategory",
    "SubscriptionRequest",
    "SubscriptionScheduler",
    "best_capacity",
    "evaluate_capacities",
]
