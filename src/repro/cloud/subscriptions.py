"""Multi-period subscription auctions (Section VII).

The paper's extension to queries wanting different minimum subscription
lengths: partition system capacity across *subscription categories*
(say day / week / month), run an independent strategyproof auction per
category, and each day reclaim the capacity of expiring subscriptions
and iterate.  Because each per-category auction is bid-strategyproof,
the scheme as a whole remains bid-strategyproof (users may still game
*category choice* across periods — the open problem the paper notes;
see ``examples/subscriptions_demo.py`` for a demonstration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Mapping, Sequence

from repro.core.mechanism import Mechanism
from repro.core.model import AuctionInstance, Operator, Query
from repro.core.result import AuctionOutcome
from repro.utils.validation import ValidationError, require, require_positive


@dataclass(frozen=True)
class SubscriptionCategory:
    """A subscription length on offer, with its capacity share."""

    name: str
    length_days: int
    capacity_fraction: float

    def __post_init__(self) -> None:
        require(self.length_days >= 1, "length_days must be >= 1")
        require(0 < self.capacity_fraction <= 1,
                "capacity_fraction must be in (0, 1]")


#: The paper's example category mix (Section VII).
DEFAULT_CATEGORIES = (
    SubscriptionCategory("day", 1, 0.40),
    SubscriptionCategory("week", 7, 0.35),
    SubscriptionCategory("month", 30, 0.25),
)


def validate_categories(
    categories: Sequence[SubscriptionCategory],
) -> tuple[SubscriptionCategory, ...]:
    """Validate a category mix; returns it as a tuple.

    Names must be unique and the capacity fractions must sum to at
    most 1 — the partition shares one physical capacity, so a mix
    summing above it would admit load the servers cannot execute.
    Violations raise :class:`ValidationError` naming the categories.
    """
    categories = tuple(categories)
    require(len(categories) >= 1, "at least one category is required")
    names = [c.name for c in categories]
    require(len(set(names)) == len(names),
            "category names must be unique")
    total_fraction = sum(c.capacity_fraction for c in categories)
    if total_fraction > 1.0 + 1e-9:
        shares = ", ".join(
            f"{c.name}={c.capacity_fraction:g}" for c in categories)
        raise ValidationError(
            f"capacity fractions of categories [{shares}] sum to "
            f"{total_fraction:g} > 1; the partition shares one "
            f"capacity, so the fractions must sum to at most 1")
    return categories


@dataclass(frozen=True)
class SubscriptionRequest:
    """A query bidding for a given subscription category."""

    query: Query
    category: str


@dataclass(frozen=True)
class ActiveSubscription:
    """A running subscription occupying capacity until ``expires_day``."""

    query: Query
    category: str
    start_day: int
    expires_day: int
    payment: float


@dataclass
class DailyResult:
    """What happened on one scheduler day."""

    day: int
    outcomes: Mapping[str, AuctionOutcome] = field(default_factory=dict)
    admitted: list[ActiveSubscription] = field(default_factory=list)
    expired: list[ActiveSubscription] = field(default_factory=list)
    reclaimed_capacity: float = 0.0

    @property
    def revenue(self) -> float:
        """Revenue collected from the day's auctions."""
        return sum(outcome.profit for outcome in self.outcomes.values())


class SubscriptionScheduler:
    """Runs the daily per-category auctions of Section VII.

    Parameters
    ----------
    operators:
        The shared operator catalogue (loads) requests draw from.
    total_capacity:
        The system capacity partitioned across categories.
    mechanism_factory:
        Builds the auction mechanism for a category
        (``factory(category_name)``); per Section VII you may "run the
        strategyproof auction mechanism of your choice" per category.
    categories:
        The offered subscription lengths and capacity fractions
        (fractions must sum to at most 1).
    """

    def __init__(
        self,
        operators: Mapping[str, Operator],
        total_capacity: float,
        mechanism_factory: Callable[[str], Mechanism],
        categories: Sequence[SubscriptionCategory] = DEFAULT_CATEGORIES,
    ) -> None:
        require_positive(total_capacity, "total_capacity")
        categories = validate_categories(categories)
        self._operators = dict(operators)
        self.total_capacity = float(total_capacity)
        self._mechanism_factory = mechanism_factory
        self.categories = {c.name: c for c in categories}
        self.active: list[ActiveSubscription] = []
        self.day = 0
        self.history: list[DailyResult] = []

    # ------------------------------------------------------------------
    # Capacity accounting
    # ------------------------------------------------------------------

    def occupied_capacity(self) -> float:
        """Union load of every active subscription's operators.

        Shared operators across active subscriptions are counted once —
        the engine runs them once.
        """
        ops: set[str] = set()
        for subscription in self.active:
            ops.update(subscription.query.operator_ids)
        return sum(self._operators[op_id].load for op_id in ops)

    def free_capacity(self) -> float:
        """Capacity not held by active subscriptions."""
        return max(self.total_capacity - self.occupied_capacity(), 0.0)

    # ------------------------------------------------------------------
    # The daily cycle
    # ------------------------------------------------------------------

    def run_day(
        self, requests: Sequence[SubscriptionRequest]
    ) -> DailyResult:
        """One day: expire, reclaim, partition, auction per category."""
        self.day += 1
        result = DailyResult(day=self.day)

        # 1. Reclaim the capacity of subscriptions expiring today.
        still_active = []
        for subscription in self.active:
            if subscription.expires_day <= self.day:
                result.expired.append(subscription)
            else:
                still_active.append(subscription)
        self.active = still_active
        result.reclaimed_capacity = sum(
            sum(self._operators[op].load
                for op in sub.query.operator_ids)
            for sub in result.expired
        )

        # 2. Partition the currently free capacity among categories.
        # Operators already running for active subscriptions cost new
        # requests nothing extra (they are shared with the running
        # queries), so their load is zeroed in the auction input.
        free = self.free_capacity()
        active_ops: set[str] = set()
        for subscription in self.active:
            active_ops.update(subscription.query.operator_ids)
        auction_operators = {
            op_id: (Operator(op_id, 0.0) if op_id in active_ops
                    else operator)
            for op_id, operator in self._operators.items()
        }
        outcomes: dict[str, AuctionOutcome] = {}
        for name, category in self.categories.items():
            pending = [r.query for r in requests if r.category == name]
            if not pending:
                continue
            slice_capacity = free * category.capacity_fraction
            if slice_capacity <= 0:
                continue
            instance = AuctionInstance(
                operators=auction_operators,
                queries=tuple(pending),
                capacity=slice_capacity,
            )
            mechanism = self._mechanism_factory(name)
            outcome = mechanism.run(instance)
            outcomes[name] = outcome
            for query in pending:
                if outcome.is_winner(query.query_id):
                    subscription = ActiveSubscription(
                        query=query,
                        category=name,
                        start_day=self.day,
                        expires_day=self.day + category.length_days,
                        payment=outcome.payment(query.query_id),
                    )
                    self.active.append(subscription)
                    result.admitted.append(subscription)

        result.outcomes = outcomes
        self.history.append(result)
        return result

    def total_revenue(self) -> float:
        """Revenue across all days run so far."""
        return sum(result.revenue for result in self.history)
