"""Energy-aware capacity selection (Section VII).

"Different levels of system operation incur different energy costs.
This can be coupled with the observation that it might be more
profitable not to fully utilize the available capacity. ... an
extension is to decide what is the most beneficial capacity for a
given auction, while considering both the profit as well as the
savings from energy reduction."

:class:`EnergyModel` prices operating a server at a given offered
capacity and realized load; :func:`best_capacity` sweeps candidate
capacities, runs the auction at each, and maximizes net profit
(auction revenue minus energy cost).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.mechanism import Mechanism
from repro.core.model import AuctionInstance
from repro.utils.validation import require_non_negative


@dataclass(frozen=True)
class EnergyModel:
    """Affine-plus-dynamic energy cost model.

    * ``idle_cost_per_unit`` — cost of *provisioning* a unit of
      capacity for the period (powered, cooled, even if unused);
    * ``dynamic_cost_per_unit`` — additional cost per unit of capacity
      actually *used* by admitted queries.

    This is the standard "idle + proportional" server power shape; any
    convex refinement can subclass and override :meth:`cost`.
    """

    idle_cost_per_unit: float = 0.05
    dynamic_cost_per_unit: float = 0.10

    def __post_init__(self) -> None:
        require_non_negative(self.idle_cost_per_unit, "idle cost")
        require_non_negative(self.dynamic_cost_per_unit, "dynamic cost")

    def cost(self, offered_capacity: float, used_capacity: float) -> float:
        """Energy cost of offering *offered_capacity* and using part."""
        return (self.idle_cost_per_unit * offered_capacity
                + self.dynamic_cost_per_unit * used_capacity)


@dataclass(frozen=True)
class CapacityChoice:
    """One candidate capacity's economics."""

    capacity: float
    profit: float
    energy_cost: float

    @property
    def net_profit(self) -> float:
        """Auction revenue minus energy cost."""
        return self.profit - self.energy_cost


def evaluate_capacities(
    mechanism: Mechanism,
    instance: AuctionInstance,
    capacities: Sequence[float],
    energy_model: EnergyModel,
) -> list[CapacityChoice]:
    """Run the auction at each candidate capacity and price the energy."""
    choices = []
    for capacity in capacities:
        outcome = mechanism.run(instance.with_capacity(capacity))
        energy = energy_model.cost(capacity, outcome.used_capacity)
        choices.append(CapacityChoice(
            capacity=capacity,
            profit=outcome.profit,
            energy_cost=energy,
        ))
    return choices


def best_capacity(
    mechanism: Mechanism,
    instance: AuctionInstance,
    capacities: Sequence[float],
    energy_model: EnergyModel,
) -> CapacityChoice:
    """The net-profit-maximizing candidate capacity."""
    choices = evaluate_capacities(
        mechanism, instance, capacities, energy_model)
    return max(choices, key=lambda choice: choice.net_profit)
