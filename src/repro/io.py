"""JSON (de)serialization of auction instances and outcomes.

A downstream user needs to move instances in and out of the library —
to pin a regression case, to auction real workloads exported from
another system, or to archive an outcome for billing audits.  The
format is deliberately plain JSON:

```json
{
  "capacity": 10.0,
  "operators": {"A": 4.0, "B": 1.0},
  "queries": [
    {"id": "q1", "operators": ["A", "B"], "bid": 55.0,
     "valuation": 60.0, "owner": "alice"}
  ]
}
```

``valuation`` and ``owner`` are optional, exactly as in the model.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.model import AuctionInstance, Operator, Query
from repro.core.result import AuctionOutcome
from repro.utils.validation import ValidationError


def instance_to_dict(instance: AuctionInstance) -> dict:
    """Plain-JSON-able representation of *instance*."""
    queries = []
    for query in instance.queries:
        entry: dict[str, object] = {
            "id": query.query_id,
            "operators": list(query.operator_ids),
            "bid": query.bid,
        }
        if query.valuation is not None:
            entry["valuation"] = query.valuation
        if query.owner is not None:
            entry["owner"] = query.owner
        queries.append(entry)
    return {
        "capacity": instance.capacity,
        "operators": {op_id: op.load
                      for op_id, op in sorted(instance.operators.items())},
        "queries": queries,
    }


def instance_from_dict(payload: dict) -> AuctionInstance:
    """Parse the :func:`instance_to_dict` format (with validation)."""
    try:
        capacity = float(payload["capacity"])
        operator_items = payload["operators"].items()
        query_entries = payload["queries"]
    except (KeyError, AttributeError, TypeError) as exc:
        raise ValidationError(
            f"malformed instance document: {exc!r}") from exc
    operators = {
        op_id: Operator(op_id, float(load))
        for op_id, load in operator_items
    }
    queries = []
    for entry in query_entries:
        try:
            queries.append(Query(
                query_id=entry["id"],
                operator_ids=tuple(entry["operators"]),
                bid=float(entry["bid"]),
                valuation=(float(entry["valuation"])
                           if "valuation" in entry else None),
                owner=entry.get("owner"),
            ))
        except KeyError as exc:
            raise ValidationError(
                f"query entry missing field {exc}") from exc
    return AuctionInstance(operators, tuple(queries), capacity)


def save_instance(instance: AuctionInstance, path: "str | Path") -> None:
    """Write *instance* as JSON to *path*."""
    Path(path).write_text(
        json.dumps(instance_to_dict(instance), indent=2) + "\n")


def load_instance(path: "str | Path") -> AuctionInstance:
    """Read an instance JSON document from *path*."""
    return instance_from_dict(json.loads(Path(path).read_text()))


def outcome_to_dict(outcome: AuctionOutcome) -> dict:
    """Plain-JSON-able representation of *outcome* (audit record)."""
    return {
        "mechanism": outcome.mechanism,
        "payments": {qid: outcome.payment(qid)
                     for qid in sorted(outcome.winner_ids)},
        "metrics": outcome.summary(),
    }


def save_outcome(outcome: AuctionOutcome, path: "str | Path") -> None:
    """Write *outcome*'s audit record as JSON to *path*."""
    Path(path).write_text(
        json.dumps(outcome_to_dict(outcome), indent=2) + "\n")
