"""(De)serialization: instances, outcomes, period reports, snapshots.

A downstream user needs to move data in and out of the library — to
pin a regression case, to auction real workloads exported from another
system, to archive an outcome for billing audits, or to stop a running
:class:`~repro.service.AdmissionService` and resume it later.  Three
formats live here:

* **Auction instances** — plain JSON, deliberately simple:

  ```json
  {
    "capacity": 10.0,
    "operators": {"A": 4.0, "B": 1.0},
    "queries": [
      {"id": "q1", "operators": ["A", "B"], "bid": 55.0,
       "valuation": 60.0, "owner": "alice"}
    ]
  }
  ```

  ``valuation`` and ``owner`` are optional, exactly as in the model.

* **Period reports** — a *versioned* JSON schema
  (``schema: "repro/period-report"``, ``version: 1``) embedding the
  full instance and outcome, so a report round-trips losslessly and a
  future version can migrate old archives.

* **Service snapshots** — a versioned pickle envelope
  (``schema: "repro/service-snapshot"``) holding a
  :class:`~repro.service.ServiceSnapshot`.  Pickle, because engine
  state includes arbitrary operator callables; only load snapshot
  files you trust, and use module-level functions (not lambdas) in
  plans you intend to checkpoint.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.core.model import AuctionInstance, Operator, Query
from repro.core.result import AuctionOutcome
from repro.utils.validation import ValidationError
from repro.wal.crashpoints import crashpoint, register

#: Fault-injection point between writing the temp file and the
#: ``os.replace`` that publishes it — a crash here must leave the old
#: file intact and only a stray ``*.tmp`` behind.
CP_IO_SAVE_AFTER_TMP = register("io.save.after-tmp")

#: Schema tags + versions of the formats written by this module.
PERIOD_REPORT_SCHEMA = "repro/period-report"
PERIOD_REPORT_VERSION = 1
SNAPSHOT_SCHEMA = "repro/service-snapshot"
SNAPSHOT_VERSION = 1
CLUSTER_REPORT_SCHEMA = "repro/cluster-report"
CLUSTER_REPORT_VERSION = 1
CLUSTER_SNAPSHOT_SCHEMA = "repro/cluster-snapshot"
CLUSTER_SNAPSHOT_VERSION = 1
SIM_TRACE_SCHEMA = "repro/sim-trace"
SIM_TRACE_VERSION = 1
SIM_TRACE_BINARY_VERSION = 2
SIM_SNAPSHOT_SCHEMA = "repro/sim-snapshot"
SIM_SNAPSHOT_VERSION = 1
SERVE_REQUEST_SCHEMA = "repro/serve-request"
SERVE_REQUEST_VERSION = 1
SERVE_RESPONSE_SCHEMA = "repro/serve-response"
SERVE_RESPONSE_VERSION = 1


def _atomic_write(path: "str | Path", data: bytes) -> None:
    """Publish *data* at *path* all-or-nothing.

    Writes to a same-directory temp file, fsyncs it, then
    ``os.replace``s it over *path* — a crash at any instant leaves
    either the previous complete file or the new complete file, never
    a truncated hybrid.  The directory entry is fsynced best-effort
    (not every filesystem supports opening a directory).
    """
    target = Path(path)
    directory = target.parent if str(target.parent) else Path(".")
    handle, tmp_name = tempfile.mkstemp(
        prefix=target.name + ".", suffix=".tmp", dir=str(directory))
    try:
        with os.fdopen(handle, "wb") as stream:
            stream.write(data)
            stream.flush()
            os.fsync(stream.fileno())
        crashpoint(CP_IO_SAVE_AFTER_TMP)
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    try:
        dir_fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


def _atomic_write_text(path: "str | Path", text: str) -> None:
    _atomic_write(path, text.encode("utf-8"))


def _read_json(path: "str | Path", what: str) -> object:
    """Load a JSON file, naming *path* in any corruption error."""
    raw = Path(path).read_bytes()
    try:
        return json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValidationError(
            f"malformed {what} file {str(path)!r}: {exc!r}") from exc


#: What a corrupt or truncated pickle can raise: the unpickler's own
#: errors plus whatever a garbage stream makes it do — resolve a
#: missing global, index past the memo, build with wrong arguments.
_PICKLE_ERRORS = (
    pickle.UnpicklingError, EOFError, AttributeError, ImportError,
    IndexError, KeyError, ValueError, TypeError,
)


def instance_to_dict(instance: AuctionInstance) -> dict:
    """Plain-JSON-able representation of *instance*."""
    queries = []
    for query in instance.queries:
        entry: dict[str, object] = {
            "id": query.query_id,
            "operators": list(query.operator_ids),
            "bid": query.bid,
        }
        if query.valuation is not None:
            entry["valuation"] = query.valuation
        if query.owner is not None:
            entry["owner"] = query.owner
        queries.append(entry)
    return {
        "capacity": instance.capacity,
        "operators": {op_id: op.load
                      for op_id, op in sorted(instance.operators.items())},
        "queries": queries,
    }


def instance_from_dict(payload: dict) -> AuctionInstance:
    """Parse the :func:`instance_to_dict` format (with validation)."""
    try:
        capacity = float(payload["capacity"])
        operator_items = payload["operators"].items()
        query_entries = payload["queries"]
    except (KeyError, AttributeError, TypeError) as exc:
        raise ValidationError(
            f"malformed instance document: {exc!r}") from exc
    operators = {
        op_id: Operator(op_id, float(load))
        for op_id, load in operator_items
    }
    queries = []
    for entry in query_entries:
        try:
            queries.append(Query(
                query_id=entry["id"],
                operator_ids=tuple(entry["operators"]),
                bid=float(entry["bid"]),
                valuation=(float(entry["valuation"])
                           if "valuation" in entry else None),
                owner=entry.get("owner"),
            ))
        except KeyError as exc:
            raise ValidationError(
                f"query entry missing field {exc}") from exc
    return AuctionInstance(operators, tuple(queries), capacity)


def save_instance(instance: AuctionInstance, path: "str | Path") -> None:
    """Write *instance* as JSON to *path* (atomically)."""
    _atomic_write_text(
        path, json.dumps(instance_to_dict(instance), indent=2) + "\n")


def load_instance(path: "str | Path") -> AuctionInstance:
    """Read an instance JSON document from *path*."""
    return instance_from_dict(_read_json(path, "instance"))


def outcome_to_dict(outcome: AuctionOutcome) -> dict:
    """Plain-JSON-able representation of *outcome* (audit record)."""
    return {
        "mechanism": outcome.mechanism,
        "payments": {qid: outcome.payment(qid)
                     for qid in sorted(outcome.winner_ids)},
        "metrics": outcome.summary(),
    }


def save_outcome(outcome: AuctionOutcome, path: "str | Path") -> None:
    """Write *outcome*'s audit record as JSON to *path* (atomically)."""
    _atomic_write_text(
        path, json.dumps(outcome_to_dict(outcome), indent=2) + "\n")


def _jsonable(value: object) -> object:
    """Best-effort conversion of mechanism diagnostics to plain JSON.

    Tuples become lists, sets become sorted lists, numpy scalars their
    Python equivalents; anything else unrepresentable falls back to
    ``repr`` so a report never fails to serialize.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return float(value)
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted((_jsonable(item) for item in value), key=repr)
    if hasattr(value, "item"):  # numpy scalar
        try:
            return _jsonable(value.item())
        except (TypeError, ValueError):
            pass
    return repr(value)


def full_outcome_to_dict(outcome: AuctionOutcome) -> dict:
    """Lossless (modulo diagnostics typing) outcome representation.

    Unlike :func:`outcome_to_dict` (the compact audit record), this
    keeps the payments, mechanism name and diagnostics needed to
    rebuild the outcome against its instance with
    :func:`outcome_from_dict`.
    """
    return {
        "mechanism": outcome.mechanism,
        "payments": {qid: outcome.payments[qid]
                     for qid in sorted(outcome.payments)},
        "details": _jsonable(dict(outcome.details)),
        "metrics": outcome.summary(),
    }


def outcome_from_dict(
    payload: dict, instance: AuctionInstance
) -> AuctionOutcome:
    """Rebuild an outcome serialized by :func:`full_outcome_to_dict`.

    The instance is not part of the payload (the compact audit record
    never carried it); pass the instance the outcome belongs to.
    """
    try:
        payments = {str(qid): float(amount)
                    for qid, amount in payload["payments"].items()}
        mechanism = payload.get("mechanism", "")
        details = payload.get("details", {})
    except (KeyError, AttributeError, TypeError, ValueError) as exc:
        raise ValidationError(
            f"malformed outcome document: {exc!r}") from exc
    return AuctionOutcome(
        instance=instance,
        payments=payments,
        mechanism=mechanism,
        details=details,
    )


# ----------------------------------------------------------------------
# Period reports (versioned schema)
# ----------------------------------------------------------------------


def report_to_dict(report: object) -> dict:
    """Versioned JSON document for a :class:`PeriodReport`.

    The embedded instance makes the document self-contained: an
    archived period can be re-audited (payments recomputed, capacity
    revalidated) without the service that produced it.
    """
    outcome = report.outcome
    return {
        "schema": PERIOD_REPORT_SCHEMA,
        "version": PERIOD_REPORT_VERSION,
        "period": report.period,
        "revenue": report.revenue,
        "admitted": list(report.admitted),
        "rejected": list(report.rejected),
        "engine_ticks": report.engine_ticks,
        "engine_utilization": report.engine_utilization,
        "instance": instance_to_dict(outcome.instance),
        "outcome": full_outcome_to_dict(outcome),
    }


def report_from_dict(payload: dict) -> object:
    """Parse a :func:`report_to_dict` document into a PeriodReport."""
    from repro.service.reports import PeriodReport

    if not isinstance(payload, dict):
        raise ValidationError(
            f"malformed report document: expected an object, got "
            f"{type(payload).__name__}")
    schema = payload.get("schema")
    if schema != PERIOD_REPORT_SCHEMA:
        raise ValidationError(
            f"not a period-report document (schema {schema!r}, "
            f"expected {PERIOD_REPORT_SCHEMA!r})")
    version = payload.get("version")
    if version != PERIOD_REPORT_VERSION:
        raise ValidationError(
            f"unsupported period-report version {version!r}; this "
            f"build reads version {PERIOD_REPORT_VERSION}")
    try:
        instance = instance_from_dict(payload["instance"])
        outcome = outcome_from_dict(payload["outcome"], instance)
        return PeriodReport(
            period=int(payload["period"]),
            outcome=outcome,
            revenue=float(payload["revenue"]),
            admitted=tuple(payload["admitted"]),
            rejected=tuple(payload["rejected"]),
            engine_ticks=int(payload["engine_ticks"]),
            engine_utilization=(
                None if payload.get("engine_utilization") is None
                else float(payload["engine_utilization"])),
        )
    except (KeyError, TypeError, ValueError) as exc:
        if isinstance(exc, ValidationError):
            raise
        raise ValidationError(
            f"malformed report document: {exc!r}") from exc


def save_report(report: object, path: "str | Path") -> None:
    """Write one period report as versioned JSON to *path*."""
    _atomic_write_text(
        path,
        json.dumps(report_to_dict(report), indent=2, sort_keys=True)
        + "\n")


def load_report(path: "str | Path") -> object:
    """Read a period report written by :func:`save_report`."""
    return report_from_dict(_read_json(path, "period report"))


def save_reports(reports: "list | tuple", path: "str | Path") -> None:
    """Write a run's reports as one JSON array (period history)."""
    _atomic_write_text(
        path,
        json.dumps([report_to_dict(r) for r in reports],
                   indent=2, sort_keys=True) + "\n")


def load_reports(path: "str | Path") -> list:
    """Read a period history written by :func:`save_reports`."""
    payload = _read_json(path, "report history")
    if not isinstance(payload, list):
        raise ValidationError(
            "malformed report history: expected a JSON array")
    return [report_from_dict(entry) for entry in payload]


# ----------------------------------------------------------------------
# Cluster reports (versioned schema)
# ----------------------------------------------------------------------


def cluster_report_to_dict(report: object) -> dict:
    """Versioned JSON document for a :class:`ClusterReport`.

    Embeds every shard's full period-report document (each
    self-contained, schema-tagged) plus the cluster aggregates and the
    rebalancer's migrations, so one archived document re-audits an
    entire cluster period.
    """
    return {
        "schema": CLUSTER_REPORT_SCHEMA,
        "version": CLUSTER_REPORT_VERSION,
        "period": report.period,
        "total_revenue": report.total_revenue,
        "utilization": report.utilization,
        "rejected_load": report.rejected_load,
        "migrations": [
            {
                "query_id": migration.query_id,
                "origin": migration.origin,
                "target": migration.target,
                "load": migration.load,
            }
            for migration in report.migrations
        ],
        "shard_capacities": list(report.shard_capacities),
        "shards": [report_to_dict(shard_report)
                   for shard_report in report.shard_reports],
    }


def cluster_report_from_dict(payload: dict) -> object:
    """Parse a :func:`cluster_report_to_dict` document."""
    from repro.cluster.reports import ClusterReport, Migration

    if not isinstance(payload, dict):
        raise ValidationError(
            f"malformed cluster report: expected an object, got "
            f"{type(payload).__name__}")
    schema = payload.get("schema")
    if schema != CLUSTER_REPORT_SCHEMA:
        raise ValidationError(
            f"not a cluster-report document (schema {schema!r}, "
            f"expected {CLUSTER_REPORT_SCHEMA!r})")
    version = payload.get("version")
    if version != CLUSTER_REPORT_VERSION:
        raise ValidationError(
            f"unsupported cluster-report version {version!r}; this "
            f"build reads version {CLUSTER_REPORT_VERSION}")
    try:
        return ClusterReport(
            period=int(payload["period"]),
            shard_reports=tuple(
                report_from_dict(entry) for entry in payload["shards"]),
            shard_capacities=tuple(
                float(capacity)
                for capacity in payload["shard_capacities"]),
            migrations=tuple(
                Migration(
                    query_id=entry["query_id"],
                    origin=int(entry["origin"]),
                    target=int(entry["target"]),
                    load=float(entry["load"]),
                )
                for entry in payload["migrations"]
            ),
            rejected_load=float(payload["rejected_load"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        if isinstance(exc, ValidationError):
            raise
        raise ValidationError(
            f"malformed cluster report: {exc!r}") from exc


def save_cluster_report(report: object, path: "str | Path") -> None:
    """Write one cluster report as versioned JSON to *path*."""
    _atomic_write_text(
        path,
        json.dumps(cluster_report_to_dict(report), indent=2,
                   sort_keys=True) + "\n")


def load_cluster_report(path: "str | Path") -> object:
    """Read a cluster report written by :func:`save_cluster_report`."""
    return cluster_report_from_dict(_read_json(path, "cluster report"))


# ----------------------------------------------------------------------
# Service snapshots (versioned pickle envelope)
# ----------------------------------------------------------------------


def _snapshot_envelope(snapshot: object) -> dict:
    """The versioned envelope wrapped around one service snapshot."""
    return {
        "schema": SNAPSHOT_SCHEMA,
        "version": SNAPSHOT_VERSION,
        "snapshot": snapshot,
    }


def _unwrap_snapshot_envelope(envelope: object, origin: str) -> object:
    """Validate a service-snapshot envelope and return its payload."""
    if not isinstance(envelope, dict):
        raise ValidationError(
            f"malformed snapshot file {origin!r}: not an envelope")
    schema = envelope.get("schema")
    if schema != SNAPSHOT_SCHEMA:
        raise ValidationError(
            f"not a service snapshot (schema {schema!r}, expected "
            f"{SNAPSHOT_SCHEMA!r})")
    version = envelope.get("version")
    if version != SNAPSHOT_VERSION:
        raise ValidationError(
            f"unsupported snapshot version {version!r}; this build "
            f"reads version {SNAPSHOT_VERSION}")
    return envelope["snapshot"]


def save_snapshot(snapshot: object, path: "str | Path") -> None:
    """Write a service snapshot as a versioned pickle envelope.

    *snapshot* is a :class:`~repro.service.ServiceSnapshot` (from
    :meth:`AdmissionService.snapshot`).  Everything inside must be
    picklable: module-level functions in operator predicates and
    stream payloads are, lambdas and closures are not.
    """
    _atomic_write(path, pickle.dumps(
        _snapshot_envelope(snapshot), protocol=pickle.HIGHEST_PROTOCOL))


def load_snapshot(path: "str | Path") -> object:
    """Read a snapshot envelope written by :func:`save_snapshot`.

    Pickle executes code on load — only open snapshot files you trust.
    """
    try:
        envelope = pickle.loads(Path(path).read_bytes())
    except _PICKLE_ERRORS as exc:
        raise ValidationError(
            f"malformed snapshot file {str(path)!r}: {exc!r}") from exc
    return _unwrap_snapshot_envelope(envelope, str(path))


# ----------------------------------------------------------------------
# Simulation traces (versioned schema)
# ----------------------------------------------------------------------


def sim_trace_to_dict(trace: object) -> dict:
    """Versioned JSON document for a :class:`~repro.sim.SimTrace`.

    The entry list is the run's whole workload — every arrival's
    virtual time, query and subscription category — so replaying the
    document against an identically configured service reproduces the
    recorded run byte-identically.
    """
    from repro.sim.trace import entry_to_dict

    return {
        "schema": SIM_TRACE_SCHEMA,
        "version": SIM_TRACE_VERSION,
        "arrivals": [entry_to_dict(entry) for entry in trace.entries],
    }


def sim_trace_from_dict(payload: dict) -> object:
    """Parse a :func:`sim_trace_to_dict` document into a SimTrace.

    The result is column-backed, exactly like a v2 binary load:
    select-encoded arrivals come back as compact
    :class:`~repro.sim.arrivals.SelectPlan` rows, so a v1 replay
    drives the very same objects through routing and the auctions as
    the recorded run did (and as a v2 replay would) — not freshly
    materialized plan graphs.
    """
    from repro.sim.trace import SimTrace, TraceColumns, entry_from_dict

    if not isinstance(payload, dict):
        raise ValidationError(
            f"malformed trace document: expected an object, got "
            f"{type(payload).__name__}")
    schema = payload.get("schema")
    if schema != SIM_TRACE_SCHEMA:
        raise ValidationError(
            f"not a sim-trace document (schema {schema!r}, expected "
            f"{SIM_TRACE_SCHEMA!r})")
    version = payload.get("version")
    if version != SIM_TRACE_VERSION:
        raise ValidationError(
            f"unsupported sim-trace version {version!r}; this build "
            f"reads version {SIM_TRACE_VERSION}")
    entries = payload.get("arrivals")
    if not isinstance(entries, list):
        raise ValidationError(
            "malformed trace document: 'arrivals' must be an array")
    return SimTrace(columns=TraceColumns.from_entries(
        entry_from_dict(entry) for entry in entries))


def _intern_column(values: list) -> tuple:
    """(codes int32, table U-strings) for a column of str-or-None.

    Table order is an implementation detail of the writer — codes are
    only ever resolved through the table stored next to them, so the
    sorted (numpy) and first-appearance (dict) paths interoperate.
    """
    import numpy as np

    if values and None not in values:
        # All-string column: sort-based interning entirely in C.
        table, codes = np.unique(np.asarray(values, dtype="U"),
                                 return_inverse=True)
        return codes.astype(np.int32), table
    # setdefault assigns first-appearance codes in one pass; dict
    # insertion order IS the table.
    index: dict[str, int] = {}
    codes = [-1 if value is None else index.setdefault(value, len(index))
             for value in values]
    return (np.asarray(codes, dtype=np.int32),
            np.asarray(list(index), dtype="U") if index
            else np.empty(0, dtype="U1"))


def _uncode_column(codes, table) -> list:
    """Invert :func:`_intern_column` back to str-or-None cells."""
    names = [str(name) for name in table.tolist()]
    lookup = dict(enumerate(names))
    return [lookup.get(code) for code in codes.tolist()]


def sim_trace_to_arrays(trace: object) -> dict:
    """The v2 (binary) column arrays of a :class:`SimTrace`.

    One structured numeric array (``rows``: time, stream, cost,
    selectivity, bid, valuation + presence flag, interned owner /
    category / input-stream codes) plus the id/op string columns and
    the interned string tables.  Opaque plans ride as JSON-encoded
    :func:`~repro.sim.trace.encode_query` documents in a plain string
    array, so the container never needs ``allow_pickle`` at the numpy
    layer — the pickle payload (if any) stays inside the inspectable
    query codec, exactly as in the v1 format.
    """
    import numpy as np

    from repro.sim.trace import TraceColumns, encode_query

    columns = trace.columns()
    if columns is None:
        columns = TraceColumns.from_entries(trace.entries)
    count = len(columns)
    rows = np.zeros(count, dtype=[
        ("time", "f8"), ("stream", "i4"), ("cost", "f8"),
        ("selectivity", "f8"), ("bid", "f8"), ("valuation", "f8"),
        ("has_valuation", "u1"), ("owner", "i4"), ("category", "i4"),
        ("input", "i4")])
    rows["time"] = columns.times
    rows["stream"] = columns.streams
    rows["cost"] = columns.costs
    rows["selectivity"] = columns.selectivities
    rows["bid"] = columns.bids
    valuations = columns.valuations
    if None in valuations:
        rows["valuation"] = [0.0 if value is None else value
                             for value in valuations]
        rows["has_valuation"] = [value is not None
                                 for value in valuations]
    else:
        rows["valuation"] = valuations
        rows["has_valuation"] = 1
    owner_codes, owner_table = _intern_column(columns.owners)
    category_codes, category_table = _intern_column(columns.categories)
    input_codes, input_table = _intern_column(columns.inputs)
    rows["owner"] = owner_codes
    rows["category"] = category_codes
    rows["input"] = input_codes
    opaque_rows = sorted(columns.opaque)
    return {
        "schema": np.asarray(SIM_TRACE_SCHEMA),
        "version": np.asarray(SIM_TRACE_BINARY_VERSION),
        "rows": rows,
        "ids": (np.asarray(columns.ids, dtype="U") if count
                else np.empty(0, dtype="U1")),
        "ops": (np.asarray(columns.ops, dtype="U") if count
                else np.empty(0, dtype="U1")),
        "owner_table": owner_table,
        "category_table": category_table,
        "input_table": input_table,
        "opaque_rows": np.asarray(opaque_rows, dtype=np.int64),
        "opaque_queries": (np.asarray(
            [json.dumps(encode_query(columns.opaque[row]),
                        sort_keys=True) for row in opaque_rows],
            dtype="U") if opaque_rows else np.empty(0, dtype="U1")),
    }


def sim_trace_from_arrays(arrays) -> object:
    """Rebuild a column-backed :class:`SimTrace` from the v2 arrays."""
    import numpy as np

    from repro.sim.trace import SimTrace, TraceColumns, decode_query

    try:
        schema = str(arrays["schema"])
        version = int(arrays["version"])
    except KeyError as exc:
        raise ValidationError(
            f"malformed binary trace: missing {exc}") from exc
    if schema != SIM_TRACE_SCHEMA:
        raise ValidationError(
            f"not a sim-trace document (schema {schema!r}, expected "
            f"{SIM_TRACE_SCHEMA!r})")
    if version != SIM_TRACE_BINARY_VERSION:
        raise ValidationError(
            f"unsupported binary sim-trace version {version!r}; this "
            f"build reads version {SIM_TRACE_BINARY_VERSION}")
    try:
        rows = arrays["rows"]
        columns = TraceColumns(
            times=rows["time"].tolist(),
            streams=rows["stream"].tolist(),
            categories=_uncode_column(rows["category"],
                                      arrays["category_table"]),
            ids=[str(value) for value in arrays["ids"].tolist()],
            ops=[str(value) for value in arrays["ops"].tolist()],
            inputs=_uncode_column(rows["input"],
                                  arrays["input_table"]),
            costs=rows["cost"].tolist(),
            selectivities=rows["selectivity"].tolist(),
            bids=rows["bid"].tolist(),
            valuations=[
                value if present else None
                for value, present in zip(
                    rows["valuation"].tolist(),
                    rows["has_valuation"].tolist())],
            owners=_uncode_column(rows["owner"],
                                  arrays["owner_table"]),
            opaque={
                int(row): decode_query(json.loads(str(payload)))
                for row, payload in zip(
                    arrays["opaque_rows"].tolist(),
                    arrays["opaque_queries"].tolist())},
        )
    except (KeyError, TypeError, ValueError) as exc:
        if isinstance(exc, ValidationError):
            raise
        raise ValidationError(
            f"malformed binary trace: {exc!r}") from exc
    # Keep the numeric columns as float64 arrays alongside the list
    # form: TraceArrivals slices them straight into arrival blocks
    # instead of re-converting list slices, which is most of the replay
    # setup cost on million-row traces.  The values are the same
    # objects either way (tolist() round-trips float64 bitwise).
    columns._numeric_cache = (
        np.ascontiguousarray(rows["time"], dtype=np.float64),
        np.ascontiguousarray(rows["cost"], dtype=np.float64),
        np.ascontiguousarray(rows["bid"], dtype=np.float64),
    )
    return SimTrace(columns=columns)


def save_sim_trace(trace: object, path: "str | Path",
                   format: "str | None" = None) -> None:
    """Write a simulation trace to *path*.

    *format* picks the container: ``"json"`` (the v1 document),
    ``"binary"`` (the v2 numpy ``.npz`` columns), or ``None`` to
    choose by suffix — ``.npz`` writes binary, anything else JSON.
    """
    if format is None:
        format = ("binary" if str(path).endswith(".npz") else "json")
    if format == "binary":
        import io as _io

        import numpy as np

        buffer = _io.BytesIO()
        np.savez(buffer, **sim_trace_to_arrays(trace))
        _atomic_write(path, buffer.getvalue())
        return
    if format != "json":
        raise ValidationError(
            f"unknown trace format {format!r}; this build writes "
            f"'json' and 'binary'")
    _atomic_write_text(
        path,
        json.dumps(sim_trace_to_dict(trace), indent=2, sort_keys=True)
        + "\n")


def load_sim_trace(path: "str | Path") -> object:
    """Read a trace written by :func:`save_sim_trace` (either format).

    The container is sniffed, not trusted from the suffix: a zip
    magic number means the v2 binary columns (loaded with
    ``allow_pickle=False`` — the numpy layer never unpickles),
    anything else the v1 JSON document.  Traces of non-synthetic
    plans may carry base64-pickled queries *inside the query codec*,
    which execute code on load — only replay traces you trust.
    """
    raw = Path(path).read_bytes()
    if raw[:2] == b"PK":
        import io as _io
        import zipfile

        import numpy as np

        try:
            with np.load(_io.BytesIO(raw), allow_pickle=False) as data:
                return sim_trace_from_arrays(data)
        except (ValueError, OSError, KeyError,
                zipfile.BadZipFile) as exc:
            raise ValidationError(
                f"malformed binary trace file {str(path)!r}: "
                f"{exc!r}") from exc
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValidationError(
            f"malformed trace file {str(path)!r}: {exc!r}") from exc
    return sim_trace_from_dict(payload)


# ----------------------------------------------------------------------
# Simulation snapshots (versioned pickle envelope)
# ----------------------------------------------------------------------


def save_sim_snapshot(snapshot: object, path: "str | Path") -> None:
    """Write a simulation snapshot as a versioned pickle envelope.

    *snapshot* is a :class:`~repro.sim.SimSnapshot` (from
    :meth:`SimulationDriver.snapshot`): the driver's clock, event
    queue, arrival-process RNGs, subscription books and probes, plus
    the host service/cluster snapshot.  The usual pickle rules apply —
    module-level functions only, and only load files you trust.
    """
    _atomic_write(path, pickle.dumps({
        "schema": SIM_SNAPSHOT_SCHEMA,
        "version": SIM_SNAPSHOT_VERSION,
        "snapshot": snapshot,
    }, protocol=pickle.HIGHEST_PROTOCOL))


def load_sim_snapshot(path: "str | Path") -> object:
    """Read a snapshot envelope written by :func:`save_sim_snapshot`."""
    try:
        envelope = pickle.loads(Path(path).read_bytes())
    except _PICKLE_ERRORS as exc:
        raise ValidationError(
            f"malformed simulation snapshot file {str(path)!r}: "
            f"{exc!r}") from exc
    if not isinstance(envelope, dict):
        raise ValidationError(
            f"malformed simulation snapshot file {str(path)!r}: not "
            f"an envelope")
    schema = envelope.get("schema")
    if schema != SIM_SNAPSHOT_SCHEMA:
        raise ValidationError(
            f"not a simulation snapshot (schema {schema!r}, expected "
            f"{SIM_SNAPSHOT_SCHEMA!r})")
    version = envelope.get("version")
    if version != SIM_SNAPSHOT_VERSION:
        raise ValidationError(
            f"unsupported simulation-snapshot version {version!r}; "
            f"this build reads version {SIM_SNAPSHOT_VERSION}")
    return envelope["snapshot"]


# ----------------------------------------------------------------------
# Cluster snapshots (one envelope composing the per-shard envelopes)
# ----------------------------------------------------------------------


def save_cluster_snapshot(snapshot: object, path: "str | Path") -> None:
    """Write a cluster snapshot as one versioned pickle envelope.

    *snapshot* is a :class:`~repro.cluster.ClusterSnapshot`.  Each
    shard's :class:`~repro.service.ServiceSnapshot` is wrapped in the
    same envelope :func:`save_snapshot` writes, so the cluster format
    *composes* the service format instead of forking it — a cluster
    file is N shard checkpoints plus the federation state (placement
    policy, rebalancer, period counter, report history).
    """
    envelope = {
        "schema": CLUSTER_SNAPSHOT_SCHEMA,
        "version": CLUSTER_SNAPSHOT_VERSION,
        "cluster": {
            "state_version": snapshot.version,
            "placement": snapshot.placement,
            "rebalancer": snapshot.rebalancer,
            "period": snapshot.period,
            "reports": snapshot.reports,
        },
        "shards": [_snapshot_envelope(shard) for shard in snapshot.shards],
    }
    _atomic_write(
        path, pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL))


def load_cluster_snapshot(path: "str | Path") -> object:
    """Read a cluster snapshot written by :func:`save_cluster_snapshot`.

    Every embedded shard envelope is validated with the same rules as
    a standalone service checkpoint.  Pickle executes code on load —
    only open snapshot files you trust.
    """
    from repro.cluster.federation import ClusterSnapshot

    try:
        envelope = pickle.loads(Path(path).read_bytes())
    except _PICKLE_ERRORS as exc:
        raise ValidationError(
            f"malformed cluster snapshot file {str(path)!r}: "
            f"{exc!r}") from exc
    if not isinstance(envelope, dict):
        raise ValidationError(
            f"malformed cluster snapshot file {str(path)!r}: not an "
            f"envelope")
    schema = envelope.get("schema")
    if schema != CLUSTER_SNAPSHOT_SCHEMA:
        raise ValidationError(
            f"not a cluster snapshot (schema {schema!r}, expected "
            f"{CLUSTER_SNAPSHOT_SCHEMA!r})")
    version = envelope.get("version")
    if version != CLUSTER_SNAPSHOT_VERSION:
        raise ValidationError(
            f"unsupported cluster-snapshot version {version!r}; this "
            f"build reads version {CLUSTER_SNAPSHOT_VERSION}")
    try:
        cluster = envelope["cluster"]
        shards = tuple(
            _unwrap_snapshot_envelope(shard, str(path))
            for shard in envelope["shards"])
        return ClusterSnapshot(
            version=cluster["state_version"],
            placement=cluster["placement"],
            rebalancer=cluster["rebalancer"],
            period=cluster["period"],
            reports=cluster["reports"],
            shards=shards,
        )
    except (KeyError, TypeError) as exc:
        if isinstance(exc, ValidationError):
            raise
        raise ValidationError(
            f"malformed cluster snapshot file {str(path)!r}: "
            f"{exc!r}") from exc


# ----------------------------------------------------------------------
# Serving-layer wire schemas (versioned request/response envelopes)
# ----------------------------------------------------------------------

#: Operations a gateway request may name.
SERVE_OPS = ("submit", "subscribe", "withdraw")


@dataclass(frozen=True)
class ServeRequest:
    """One validated gateway request body.

    ``op`` is one of :data:`SERVE_OPS`; ``submit``/``subscribe`` carry
    a query plan (and ``subscribe`` a subscription category),
    ``withdraw`` carries the query id to pull back.
    """

    op: str
    query: "object | None" = None
    query_id: "str | None" = None
    category: "str | None" = None

    def __post_init__(self) -> None:
        if self.op not in SERVE_OPS:
            raise ValidationError(
                f"unknown serve op {self.op!r}; this build handles "
                f"{', '.join(SERVE_OPS)}")
        if self.op in ("submit", "subscribe") and self.query is None:
            raise ValidationError(f"a {self.op!r} request needs a query")
        if self.op == "subscribe" and self.category is None:
            raise ValidationError(
                "a 'subscribe' request needs a category")
        if self.op == "withdraw" and not self.query_id:
            raise ValidationError("a 'withdraw' request needs a query_id")


def serve_request_to_dict(request: ServeRequest) -> dict:
    """Versioned JSON document for one gateway request.

    Query plans ride the sim-trace codec
    (:func:`repro.sim.trace.encode_query`): compact for synthetic
    single-select plans, base64-pickle for arbitrary ones.  Note that
    servers refuse pickle plans by default — see
    :func:`serve_request_from_dict`.
    """
    from repro.sim.trace import encode_query

    document: dict[str, object] = {
        "schema": SERVE_REQUEST_SCHEMA,
        "version": SERVE_REQUEST_VERSION,
        "op": request.op,
    }
    if request.query is not None:
        document["query"] = encode_query(request.query)
    if request.query_id is not None:
        document["query_id"] = request.query_id
    if request.category is not None:
        document["category"] = request.category
    return document


def serve_request_from_dict(payload: object,
                            allow_pickle: bool = False) -> ServeRequest:
    """Parse and validate a :func:`serve_request_to_dict` document.

    ``'pickle'``-encoded query plans are refused unless *allow_pickle*
    is set: unpickling executes arbitrary code chosen by whoever built
    the bytes, which is fine for local trace files you wrote yourself
    and catastrophic for request bodies arriving over a socket.  A
    gateway must leave this off unless every client is trusted
    (:attr:`~repro.serve.gateway.GatewayConfig.allow_pickle_plans`).
    """
    from repro.sim.trace import decode_query

    if not isinstance(payload, dict):
        raise ValidationError(
            f"malformed serve request: expected an object, got "
            f"{type(payload).__name__}")
    schema = payload.get("schema")
    if schema != SERVE_REQUEST_SCHEMA:
        raise ValidationError(
            f"not a serve request (schema {schema!r}, expected "
            f"{SERVE_REQUEST_SCHEMA!r})")
    version = payload.get("version")
    if version != SERVE_REQUEST_VERSION:
        raise ValidationError(
            f"unsupported serve-request version {version!r}; this "
            f"build reads version {SERVE_REQUEST_VERSION}")
    try:
        op = payload["op"]
    except KeyError:
        raise ValidationError(
            "malformed serve request: missing 'op'") from None
    query = payload.get("query")
    if query is not None:
        if (not allow_pickle and isinstance(query, dict)
                and query.get("plan") == "pickle"):
            raise ValidationError(
                "'pickle'-encoded query plans are refused at the "
                "network boundary; send a 'select' plan, or run the "
                "gateway with pickle plans explicitly enabled for "
                "trusted clients only")
        try:
            query = decode_query(query)
        except ValidationError:
            raise
        except Exception as exc:
            # Pickled plans deserialize by reference: the *server*
            # must be able to import the plan's modules.  A plan it
            # cannot rebuild is the client's malformed request, not an
            # internal error.
            raise ValidationError(
                f"could not decode the request's query plan "
                f"({type(exc).__name__}: {exc}); custom plans must be "
                f"importable where the gateway runs") from exc
    return ServeRequest(
        op=str(op),
        query=query,
        query_id=payload.get("query_id"),
        category=payload.get("category"),
    )


def serve_response_to_dict(
    status: str, request_id: str, **fields: object
) -> dict:
    """Versioned JSON document for one gateway response.

    ``status`` is the application-level outcome (``"ok"``,
    ``"queued"``, ``"throttled"``, ``"error"``...); extra *fields*
    (shard, report, error message) merge into the envelope.
    """
    return {
        "schema": SERVE_RESPONSE_SCHEMA,
        "version": SERVE_RESPONSE_VERSION,
        "status": str(status),
        "request_id": str(request_id),
        **fields,
    }


def serve_response_from_dict(payload: object) -> dict:
    """Validate a :func:`serve_response_to_dict` envelope, return it."""
    if not isinstance(payload, dict):
        raise ValidationError(
            f"malformed serve response: expected an object, got "
            f"{type(payload).__name__}")
    schema = payload.get("schema")
    if schema != SERVE_RESPONSE_SCHEMA:
        raise ValidationError(
            f"not a serve response (schema {schema!r}, expected "
            f"{SERVE_RESPONSE_SCHEMA!r})")
    version = payload.get("version")
    if version != SERVE_RESPONSE_VERSION:
        raise ValidationError(
            f"unsupported serve-response version {version!r}; this "
            f"build reads version {SERVE_RESPONSE_VERSION}")
    if "status" not in payload or "request_id" not in payload:
        raise ValidationError(
            "malformed serve response: missing 'status'/'request_id'")
    return payload
