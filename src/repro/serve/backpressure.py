"""Load-shedding primitives: token buckets and retry budgets.

Two small, clock-injectable mechanisms keep the gateway standing when
"millions of users" actually show up:

* :class:`TokenBucket` — per-client admission rate.  Each client id
  owns a bucket refilled at ``rate`` tokens/second up to ``burst``;
  a request that finds the bucket empty is answered ``429 Too Many
  Requests`` with a precise ``Retry-After``.
* :class:`RetryBudget` — the *server's* willingness to retry
  internally.  Transient auction-phase contention (a period settle
  holding the service lock) is retried only while the budget holds:
  every accepted request deposits a fraction of a token, every retry
  withdraws a whole one, so retries are bounded to a fixed percentage
  of real traffic and cannot amplify an overload into a retry storm.

Both take an injectable monotonic clock so tests drive them
deterministically.
"""

from __future__ import annotations

import time

from repro.utils.validation import require


class TokenBucket:
    """A standard token bucket: ``rate`` tokens/s, capacity ``burst``.

    :meth:`try_acquire` either takes a token (returns 0.0) or returns
    the seconds until one will be available — the ``Retry-After`` the
    gateway sends with a 429.
    """

    def __init__(self, rate: float, burst: float,
                 clock=time.monotonic) -> None:
        require(rate > 0, "token rate must be positive")
        require(burst >= 1, "burst must be >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._updated = float(clock())

    def _refill(self) -> None:
        now = float(self._clock())
        elapsed = max(0.0, now - self._updated)
        self._updated = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    def try_acquire(self, tokens: float = 1.0) -> float:
        """Take *tokens* if available; else seconds until they will be."""
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return 0.0
        return (tokens - self._tokens) / self.rate

    @property
    def available(self) -> float:
        """Tokens currently in the bucket."""
        self._refill()
        return self._tokens


class RetryBudget:
    """A deposit/withdraw retry budget (the Finagle scheme).

    Every accepted request deposits ``deposit`` tokens (so the budget
    scales with real traffic); every internal retry withdraws one.
    ``initial`` seeds the budget so a cold server can still absorb a
    first contention blip; ``cap`` bounds the balance so a long quiet
    stretch cannot bank an unbounded retry storm.
    """

    def __init__(self, deposit: float = 0.1, initial: float = 10.0,
                 cap: float = 100.0) -> None:
        require(deposit >= 0, "deposit must be >= 0")
        require(initial >= 0, "initial balance must be >= 0")
        require(cap >= initial, "cap must be >= the initial balance")
        self.deposit_per_request = float(deposit)
        self.cap = float(cap)
        self._balance = float(initial)
        self.requests = 0
        self.retries = 0
        self.exhausted = 0

    def record_request(self) -> None:
        """Deposit for one accepted request."""
        self.requests += 1
        self._balance = min(self.cap,
                            self._balance + self.deposit_per_request)

    def try_withdraw(self) -> bool:
        """Spend one retry token; ``False`` when the budget is dry."""
        if self._balance >= 1.0:
            self._balance -= 1.0
            self.retries += 1
            return True
        self.exhausted += 1
        return False

    @property
    def balance(self) -> float:
        """Tokens currently available for retries."""
        return self._balance
