"""Structured gateway logging: stderr for humans, JSONL for machines.

Every gateway event is one flat record — an event name, a level, and
plain key/value fields (request ids, client ids, endpoints, latencies).
:class:`StructuredLog` writes each record twice:

* a single ``key=value`` line to stderr (or any text stream), so an
  operator tailing the process sees what is happening;
* a JSON object per line to an append-only ``.jsonl`` file, so log
  pipelines ingest the same record without parsing prose.

Secrets never reach either sink: field names that look like
credentials (``token``, ``secret``, ``password``, ``authorization``,
``api_key``...) are redacted *by key* before formatting, recursively
through nested mappings — the value is replaced with ``"[redacted]"``,
the key survives so the record stays debuggable.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from pathlib import Path
from collections.abc import Mapping

#: Substrings (lower-cased) that mark a field name as secret-bearing.
SECRET_MARKERS = ("token", "secret", "password", "passwd", "apikey",
                  "api_key", "authorization", "credential", "cookie")

#: What a redacted value is replaced with.
REDACTED = "[redacted]"

_LEVELS = ("debug", "info", "warning", "error")


def _is_secret(key: str) -> bool:
    lowered = key.lower()
    return any(marker in lowered for marker in SECRET_MARKERS)


def redact(fields: Mapping) -> dict:
    """A copy of *fields* with secret-looking keys' values replaced.

    Recurses through nested mappings; lists and tuples are scanned for
    nested mappings too.  The keys themselves are preserved.
    """
    cleaned: dict = {}
    for key, value in fields.items():
        if _is_secret(str(key)):
            cleaned[key] = REDACTED
        elif isinstance(value, Mapping):
            cleaned[key] = redact(value)
        elif isinstance(value, (list, tuple)):
            cleaned[key] = [redact(item) if isinstance(item, Mapping)
                            else item for item in value]
        else:
            cleaned[key] = value
    return cleaned


class StructuredLog:
    """A dual-sink (text + JSONL) structured event log.

    Parameters
    ----------
    path:
        JSONL file to append records to; ``None`` disables the file
        sink.
    stream:
        Text stream for the human-readable line; defaults to stderr,
        ``None`` disables it.
    clock:
        Wall-clock source for the ``ts`` field (injectable for
        deterministic tests).
    """

    def __init__(
        self,
        path: "str | Path | None" = None,
        stream: "object | None" = sys.stderr,
        clock=time.time,
    ) -> None:
        self.path = None if path is None else Path(path)
        self.stream = stream
        self._clock = clock
        self._lock = threading.Lock()
        self._handle = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")

    def log(self, event: str, level: str = "info", **fields: object) -> dict:
        """Emit one record to every sink; returns the (redacted) record."""
        if level not in _LEVELS:
            raise ValueError(
                f"unknown log level {level!r}; use one of {_LEVELS}")
        if self.stream is None and self._handle is None:
            # No sink: skip building and redacting the record entirely
            # (a quiet gateway logs every request on the hot path).
            return {}
        record = {"ts": round(float(self._clock()), 6), "level": level,
                  "event": event, **redact(fields)}
        with self._lock:
            if self.stream is not None:
                print(self._format_line(record), file=self.stream)
            if self._handle is not None:
                self._handle.write(
                    json.dumps(record, sort_keys=True, default=repr)
                    + "\n")
                self._handle.flush()
        return record

    @staticmethod
    def _format_line(record: Mapping) -> str:
        parts = [f"[{record['level']}] {record['event']}"]
        for key, value in record.items():
            if key in ("level", "event"):
                continue
            parts.append(f"{key}={value}")
        return " ".join(parts)

    def close(self) -> None:
        """Flush and close the JSONL sink (idempotent)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "StructuredLog":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()
