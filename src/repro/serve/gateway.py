"""The admission gateway: HTTP/JSON serving over any admission host.

The paper's mechanisms assume requests *arrive*; this module is the
front door they arrive through.  :class:`AdmissionGateway` wraps any
:class:`~repro.service.AdmissionService`,
:class:`~repro.cluster.FederatedAdmissionService`, or
:class:`~repro.sim.SimulationDriver` behind a plain HTTP/1.1 JSON API
(pure asyncio — no HTTP library needed):

=======================  ==============================================
``POST /v1/submit``      queue a query for the next auction period
``POST /v1/subscribe``   queue a categoried subscription request
``POST /v1/withdraw``    withdraw a not-yet-auctioned query
``GET  /v1/report``      the last period report + running revenue
``POST /v1/tick``        run one auction-period boundary now
``GET  /healthz``        liveness / drain state (never throttled)
``GET  /metrics``        queue depths, latencies, shed counts (ditto)
=======================  ==============================================

Load hardening, because admission control that falls over under load
would be a poor advertisement for admission control:

* per-client token buckets answer over-rate clients ``429`` with a
  precise ``Retry-After`` (:class:`~repro.serve.backpressure.TokenBucket`),
  with a per-peer-address floor beneath the client-chosen id and an
  LRU-bounded bucket table;
* a bounded in-flight gate sheds excess concurrency with ``503``;
* tiered timeouts — data-plane requests get ``fast_timeout``, the
  auction settle gets ``slow_timeout`` — turn stalls into ``504``;
* contention with an in-progress settle is retried server-side only
  while the :class:`~repro.serve.backpressure.RetryBudget` holds;
* shutdown drains in-flight requests, then runs one final settle so
  accepted-but-unauctioned submissions are not silently dropped;
* every request is logged (stderr + JSONL) with a request id, and
  credential-looking fields are redacted before they reach any sink.

The auction itself runs in a worker thread under ``asyncio.shield``
with the service lock released by a done-callback — a client whose
``/v1/tick`` times out mid-auction gets its ``504``, but the settle
still completes and the lock is released exactly once, when it does.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import sys
import time
from collections import Counter, deque
from dataclasses import dataclass

from repro.io import (
    serve_request_from_dict,
    serve_response_to_dict,
)
from repro.serve import http
from repro.serve.backpressure import RetryBudget, TokenBucket
from repro.serve.http import HttpError, HttpRequest
from repro.serve.logs import StructuredLog
from repro.sim.events import ArrivalEvent
from repro.sim.hosts import wrap_host
from repro.utils.validation import ValidationError, require
from repro.wal.crashpoints import crashpoint, register

CP_TICK_BEFORE_PERIOD = register("gateway.tick.before-period-record")
CP_TICK_AFTER_PERIOD = register("gateway.tick.after-period-record")


def report_document(report: object) -> "dict | None":
    """Any period report as a JSON-ready dict (``None`` passes through)."""
    from repro.cluster.reports import ClusterReport
    from repro.io import cluster_report_to_dict, report_to_dict
    from repro.service.reports import PeriodReport
    from repro.sim.driver import SimPeriodReport

    if report is None:
        return None
    if isinstance(report, ClusterReport):
        return cluster_report_to_dict(report)
    if isinstance(report, PeriodReport):
        return report_to_dict(report)
    if isinstance(report, SimPeriodReport):
        return {
            "period": report.period,
            "admitted": list(report.admitted),
            "rejected": list(report.rejected),
            "expired": list(report.expired),
            "renewed": list(report.renewed),
            "revenue": report.revenue,
            "reclaimed_capacity": report.reclaimed_capacity,
            "engine_ticks": report.engine_ticks,
            "engine_utilization": report.engine_utilization,
        }
    raise ValidationError(
        f"cannot serialize a {type(report).__name__} period report")


# ----------------------------------------------------------------------
# Backends: what the gateway serves
# ----------------------------------------------------------------------


def _validate_streams(query, services) -> None:
    """Fail unknown-stream plans at the front door.

    The engines check this again at settle time, but by then the
    submission was already acknowledged — the 400 belongs to the
    submitter, at submit.  Every shard must serve the plan's streams,
    since placement may route it anywhere.
    """
    for service in services:
        service.engine.validate_streams(query)


class HostBackend:
    """Serve a bare admission host (service or federation).

    Submissions go straight to the host in request order — a gateway-
    mediated run admits byte-identically to the same submissions made
    in-process, which the serving benchmark asserts.
    """

    #: Whether ``/v1/subscribe`` is available.
    subscriptions = False

    def __init__(self, target: object) -> None:
        self.host = wrap_host(target)
        self.last_report: object = None

    @property
    def services(self):
        return self.host.services

    @property
    def period(self) -> int:
        return self.host.period

    def submit(self, query, category: "str | None" = None) -> "int | None":
        if category is not None:
            raise ValidationError(
                "subscription categories need a simulation-driver "
                "backend; serve a SimulationDriver built with "
                "subscriptions enabled")
        _validate_streams(query, self.services)
        return self.host.submit(query)

    def withdraw(self, query_id: str):
        cluster = getattr(self.host, "cluster", None)
        if cluster is not None:
            return cluster.withdraw(query_id)
        return self.services[0].withdraw(query_id)

    def tick(self):
        self.last_report = self.host.run_auction_period(allow_idle=True)
        return self.last_report

    def pending_count(self) -> int:
        return sum(len(service.pending_ids) for service in self.services)

    def total_revenue(self) -> float:
        return sum(service.total_revenue() for service in self.services)

    def probe_snapshot(self) -> "dict | None":
        return None


class DriverBackend:
    """Serve a :class:`~repro.sim.SimulationDriver`.

    Submissions buffer in a gateway-side inbox and are pushed as
    arrival events at the upcoming boundary's time when a tick runs —
    the same schedule :meth:`SimulationDriver.run_lockstep` builds, so
    withdrawing before the boundary is cheap (the event queue never
    sees the query).  Subscriptions are available when the driver has
    managers.
    """

    def __init__(self, driver) -> None:
        self.driver = driver
        self._inbox: list[tuple[object, "str | None"]] = []
        self.last_report: object = None

    @property
    def subscriptions(self) -> bool:
        return self.driver.managers is not None

    @property
    def services(self):
        return self.driver.host.services

    @property
    def period(self) -> int:
        return self.driver.period

    def _known_ids(self) -> set[str]:
        known = {query.query_id for query, _ in self._inbox}
        for shard_pending in self.driver.pending:
            known.update(query.query_id for query, _ in shard_pending)
        for service in self.services:
            known.update(service.pending_ids)
            known.update(service.engine.admitted_ids)
        for manager in self.driver.managers or ():
            known.update(manager.active)
        return known

    def submit(self, query, category: "str | None" = None) -> None:
        """Buffer *query*; routing happens at the boundary (shard is
        therefore unknown until then — the response carries ``None``)."""
        if category is not None:
            if not self.subscriptions:
                raise ValidationError(
                    "this driver has no subscription managers; "
                    "construct it with subscriptions enabled")
            self.driver.managers[0].category(category)
        if query.query_id in self._known_ids():
            raise ValidationError(
                f"query id {query.query_id!r} already submitted")
        _validate_streams(query, self.services)
        self._inbox.append((query, category))
        return None

    def withdraw(self, query_id: str):
        for index, (query, _) in enumerate(self._inbox):
            if query.query_id == query_id:
                del self._inbox[index]
                return query
        for shard_pending in self.driver.pending:
            for index, (query, _) in enumerate(shard_pending):
                if query.query_id == query_id:
                    del shard_pending[index]
                    return query
        for service in self.services:
            if query_id in service.pending_ids:
                return service.withdraw(query_id)
        raise ValidationError(
            f"unknown query id {query_id!r}; nothing to withdraw")

    def tick(self):
        boundary = float(
            self.driver.period * self.driver.host.ticks_per_period)
        for query, category in self._inbox:
            self.driver.queue.push(ArrivalEvent(
                time=boundary, query=query, category=category))
        self._inbox.clear()
        self.last_report = self.driver.run(1)[0]
        return self.last_report

    def pending_count(self) -> int:
        return (len(self._inbox)
                + sum(len(p) for p in self.driver.pending)
                + sum(len(service.pending_ids)
                      for service in self.services))

    def total_revenue(self) -> float:
        return self.driver.total_revenue()

    def probe_snapshot(self) -> "dict | None":
        if not self.driver.probes:
            return None
        return self.driver.metrics_snapshot()


def make_backend(target: object):
    """Coerce *target* into a gateway backend."""
    from repro.sim.driver import SimulationDriver

    if isinstance(target, (HostBackend, DriverBackend)):
        return target
    if isinstance(target, SimulationDriver):
        return DriverBackend(target)
    return HostBackend(target)


class RawBody:
    """A handler result that is already rendered response bytes.

    Handlers normally return envelope fields; returning a ``RawBody``
    instead short-circuits JSON encoding entirely — the cached
    ``/v1/report`` body and a front-end worker relaying a forwarded
    response both use it.
    """

    __slots__ = ("body", "status", "headers")

    def __init__(self, body: bytes, status: int = 200,
                 headers: "dict[str, str] | None" = None) -> None:
        self.body = body
        self.status = status
        self.headers = headers or {}


#: The request-id placeholder baked into cached response bodies; its
#: JSON encoding (``rid``) cannot collide with real data
#: because the splice searches for the full ``"request_id":"..."``
#: pattern, whose bare quotes cannot occur inside a JSON string value.
_RID_SENTINEL = "\x01rid\x01"
_RID_TOKEN = b'"request_id":"\\u0001rid\\u0001"'
_RID_PREFIX = b'"request_id":"'


# ----------------------------------------------------------------------
# The gateway
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class GatewayConfig:
    """Every serving knob in one place (defaults suit tests/benches)."""

    host: str = "127.0.0.1"
    port: int = 0
    #: Per-client token bucket: sustained requests/s and burst size.
    #: The client id comes from the ``x-client-id`` header, which the
    #: client chooses — so a per-peer-address bucket sits beneath it
    #: as the floor an id-rotating client cannot duck under.
    client_rate: float = 200.0
    client_burst: float = 50.0
    #: Per-peer-address token bucket (all client ids from one address
    #: combined).
    peer_rate: float = 1000.0
    peer_burst: float = 250.0
    #: Most token buckets kept at once; the longest-idle bucket is
    #: evicted first (an evicted client restarts with a full burst).
    max_tracked_clients: int = 1024
    #: Accept base64-pickle query plans from the wire.  Unpickling
    #: runs arbitrary client-chosen code: leave this off unless every
    #: client is trusted.  Compact 'select' plans always work.
    allow_pickle_plans: bool = False
    #: Concurrent in-flight request cap (excess is shed with 503).
    max_inflight: int = 64
    #: Data-plane (submit/withdraw/report) request timeout, seconds.
    fast_timeout: float = 2.0
    #: Auction-settle (/v1/tick) request timeout, seconds.
    slow_timeout: float = 30.0
    #: How long one lock-acquisition attempt waits before it counts as
    #: contention and a server-side retry is considered.
    lock_patience: float = 0.25
    #: Retry budget: deposit per accepted request, seed, and cap.
    retry_deposit: float = 0.1
    retry_initial: float = 10.0
    retry_cap: float = 100.0
    max_body: int = 1 << 20
    #: Shutdown: how long to wait for in-flight requests to finish.
    drain_timeout: float = 5.0
    #: Period-tick driver interval, seconds (None = ticks only on
    #: demand via /v1/tick).
    tick_interval: "float | None" = None
    #: JSONL log path (None disables the file sink).
    log_path: "str | None" = None
    #: Suppress the human-readable stderr log line.
    quiet: bool = False
    #: Write-ahead log directory (None disables durability).  Every
    #: acknowledged mutation is appended before its response goes
    #: out; a restarted gateway replays the log tail (reporting
    #: ``recovery: replaying`` on /healthz until caught up).
    wal_dir: "str | None" = None
    #: WAL fsync policy: ``never``, ``always``, or ``batch:N``.
    wal_fsync: str = "batch:256"
    #: Compact the WAL into a fresh snapshot every this many settled
    #: periods (0 disables compaction).
    compact_every: int = 64
    #: Group-commit acknowledged mutations: appends happen in request
    #: order, but concurrent requests share one fsync per bounded
    #: flush window instead of paying ``wal_fsync`` each.  Durability
    #: per acknowledged response is *stronger* than ``batch:N`` — every
    #: 200 means "on disk" — at a fraction of the fsyncs.
    wal_group_commit: bool = False
    #: Group-commit flush-wait window, seconds (the most extra latency
    #: a lone mutation pays to wait for batch-mates).
    wal_group_window: float = 0.002

    def __post_init__(self) -> None:
        require(self.max_inflight >= 1, "max_inflight must be >= 1")
        require(self.max_tracked_clients >= 2,
                "max_tracked_clients must be >= 2")
        require(self.fast_timeout > 0, "fast_timeout must be positive")
        require(self.slow_timeout > 0, "slow_timeout must be positive")
        require(self.lock_patience > 0, "lock_patience must be positive")
        require(self.drain_timeout >= 0, "drain_timeout must be >= 0")
        require(self.wal_group_window >= 0,
                "wal_group_window must be >= 0")


class AdmissionGateway:
    """An asyncio HTTP/JSON gateway over an admission backend.

    Usage::

        gateway = AdmissionGateway(service, GatewayConfig(port=8080))
        await gateway.start()
        ...
        await gateway.stop()       # drain + final settle

    All service access is serialized by one asyncio lock; submits run
    synchronously under it (cancel-safe), the period settle runs in a
    worker thread with the lock released by its done-callback so a
    timed-out client cannot release it mid-auction.
    """

    def __init__(self, target: object,
                 config: "GatewayConfig | None" = None,
                 log: "StructuredLog | None" = None) -> None:
        self.backend = make_backend(target)
        self.config = config or GatewayConfig()
        self._owns_log = log is None
        self.log = log if log is not None else StructuredLog(
            path=self.config.log_path,
            stream=None if self.config.quiet else sys.stderr)
        self._server: "asyncio.AbstractServer | None" = None
        self._lock = asyncio.Lock()
        self._budget = RetryBudget(
            deposit=self.config.retry_deposit,
            initial=self.config.retry_initial,
            cap=self.config.retry_cap)
        self._buckets: dict[str, TokenBucket] = {}
        self._ids = itertools.count(1)
        self._inflight = 0
        self._draining = False
        self._stopped = False
        self._started_at: "float | None" = None
        self._tick_task: "asyncio.Task | None" = None
        self._connections: set = set()
        self._backend_cache: "dict | None" = None
        self._wal = None
        self._committer = None
        #: Bumped after every settle (and recovery); the rendered
        #: /v1/report and /metrics body caches key on it.
        self._settle_generation = 0
        self._mutations_acked = 0
        self._report_cache: "tuple[int, bytes, bytes] | None" = None
        self._metrics_cache: "tuple[tuple, float, bytes] | None" = None
        self._recovering = False
        self._recovered_from_wal = False
        self._replayed_records = 0
        self.counters: Counter = Counter()
        self._latency: dict[str, deque] = {
            "fast": deque(maxlen=4096), "slow": deque(maxlen=512)}
        self.port: "int | None" = None

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> "AdmissionGateway":
        """Bind and start serving; resolves the ephemeral port.

        With a WAL configured, a fresh directory is initialised with a
        genesis checkpoint before the first request can be accepted; an
        existing one triggers background replay — the socket answers
        immediately, but mutating requests see 503 (and ``/healthz``
        says ``recovery: replaying``) until the tail is re-applied.
        """
        require(self._server is None, "the gateway is already started")
        recover = False
        if self.config.wal_dir:
            from repro.wal import WriteAheadLog, wal_exists
            from repro.wal.recovery import gateway_wal_state

            recover = wal_exists(self.config.wal_dir)
            if not recover:
                self._wal = WriteAheadLog.create(
                    self.config.wal_dir,
                    gateway_wal_state(self.backend),
                    fsync=self._wal_fsync_policy(),
                    compact_every=self.config.compact_every)
                self._attach_committer()
        self._backend_stats()       # prime the open-tier snapshot
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()
        if recover:
            # Replay runs in a worker thread with the service lock
            # held; the done-callback releases it, exactly like a
            # settle.  Probes stay answerable off the primed cache.
            self._recovering = True
            await self._lock.acquire()
            loop = asyncio.get_running_loop()
            future = loop.run_in_executor(None, self._recover_wal)
            future.add_done_callback(self._recovery_done)
        if self.config.tick_interval:
            self._tick_task = asyncio.create_task(self._auto_tick())
        self.log.log("listening", host=self.config.host, port=self.port,
                     backend=type(self.backend).__name__,
                     wal=self.config.wal_dir,
                     recovering=self._recovering or None)
        return self

    def _wal_fsync_policy(self) -> str:
        """The underlying log's policy (``never`` under group commit —
        the committer owns every fsync)."""
        return ("never" if self.config.wal_group_commit
                else self.config.wal_fsync)

    def _attach_committer(self) -> None:
        if self._wal is not None and self.config.wal_group_commit:
            from repro.wal.groupcommit import GroupCommitter

            self._committer = GroupCommitter(
                self._wal, window=self.config.wal_group_window)

    def _recover_wal(self):
        from repro.wal.recovery import recover_gateway_backend

        return recover_gateway_backend(
            self.config.wal_dir, self.backend,
            fsync=self._wal_fsync_policy(),
            compact_every=self.config.compact_every)

    def _recovery_done(self, future) -> None:
        self._lock.release()
        self._recovering = False
        exc = None if future.cancelled() else future.exception()
        if exc is not None:
            # Fail closed: a gateway that could not re-apply its own
            # acknowledged log must not take new mutations on top of
            # half-recovered state.
            self._draining = True
            self.log.log("wal_recovery_failed", level="error",
                         error=repr(exc))
            return
        self._wal = future.result()
        self._attach_committer()
        self._recovered_from_wal = True
        self._replayed_records = self._wal.stats.get("replayed", 0)
        self._backend_cache = None
        self._settle_generation += 1
        self._backend_stats()
        self.log.log("wal_recovered", period=self.backend.period,
                     replayed=self._replayed_records,
                     torn=self._wal.stats["torn_tail"])

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) pair."""
        require(self.port is not None, "the gateway is not started")
        return (self.config.host, self.port)

    async def stop(self, final_settle: bool = True) -> None:
        """Drain in-flight requests, settle pending work, shut down."""
        if self._stopped:
            return
        self._draining = True
        if self._tick_task is not None:
            self._tick_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._tick_task
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.drain_timeout
        while self._inflight > 0 and loop.time() < deadline:
            await asyncio.sleep(0.005)
        if self._inflight:
            self.log.log("drain_timeout", level="warning",
                         abandoned=self._inflight)
        if final_settle and self.backend.pending_count() > 0:
            # Best effort only: a drain-abandoned tick still holding
            # the lock can exhaust the retry budget here, and a settle
            # failure must not leak the sockets or the JSONL sink.
            try:
                report = await self._tick_locked("shutdown")
                document = report_document(report) or {}
                self.log.log("final_settle",
                             period=self.backend.period,
                             admitted=len(document.get("admitted", ())),
                             revenue=document.get("revenue"))
            except Exception as exc:  # noqa: BLE001 - shutdown proceeds
                self.log.log("final_settle_failed", level="error",
                             pending=self.backend.pending_count(),
                             error=repr(exc))
        if self._committer is not None:
            with contextlib.suppress(Exception):
                await self._committer.close()
        if self._wal is not None:
            # Durability before availability teardown: everything the
            # gateway acknowledged is on disk before the sockets go.
            self._wal.sync()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Closing idle keep-alive connections sends their handlers a
        # clean EOF, so no task is left to be cancelled at loop exit.
        for writer in list(self._connections):
            writer.close()
        while self._connections:
            await asyncio.sleep(0.005)
        if self._wal is not None:
            self._wal.close()
        self._stopped = True
        self.log.log("stopped", requests=self._budget.requests,
                     retries=self._budget.retries,
                     throttled=self.counters["throttled"],
                     shed=self.counters["shed"],
                     timeouts=self.counters["timeouts"])
        if self._owns_log:
            self.log.close()

    async def _auto_tick(self) -> None:
        while not self._draining:
            await asyncio.sleep(self.config.tick_interval)
            try:
                await self._tick_locked("auto")
            except HttpError as exc:
                self.log.log("auto_tick_skipped", level="warning",
                             error=exc.message)
            except ValidationError as exc:
                self.log.log("auto_tick_failed", level="error",
                             error=str(exc))

    # -- connection handling -------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        peer = writer.get_extra_info("peername")
        client_host = str(peer[0]) if peer else "unknown"
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await http.read_request(
                        reader, max_body=self.config.max_body)
                except HttpError as exc:
                    writer.write(self._render_error(
                        exc, "r000000", keep_alive=False))
                    await writer.drain()
                    return
                if request is None:
                    return
                payload, keep_alive = await self._respond(
                    request, client_host)
                writer.write(payload)
                await writer.drain()
                if not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            # Swallowing CancelledError here is deliberate: the
            # response (if any) is already written, the coroutine ends
            # on the next line, and ending it cleanly instead of
            # cancelled keeps loop teardown quiet.
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()

    def _render_error(self, exc: HttpError, request_id: str,
                      keep_alive: bool = True) -> bytes:
        headers = {}
        if exc.retry_after is not None:
            headers["Retry-After"] = f"{max(exc.retry_after, 0.0):.3f}"
        body = http.json_body(serve_response_to_dict(
            "error", request_id, error=exc.message))
        return http.render_response(exc.status, body, headers=headers,
                                    keep_alive=keep_alive)

    async def _respond(
        self, request: HttpRequest, client_host: str, *,
        gate: bool = True,
    ) -> tuple[bytes, bool]:
        request_id = f"r{next(self._ids):06d}"
        client = request.headers.get("x-client-id", client_host)
        started = time.monotonic()
        headers: dict[str, str] = {}
        tier = None
        raw: "bytes | None" = None
        try:
            handler, tier = self._route(request)
            if tier == "open":
                document = handler()
                if isinstance(document, (bytes, bytearray)):
                    raw, document = bytes(document), None
                status = 200
            else:
                if gate:
                    self._gate(client, client_host)
                self._budget.record_request()
                self._inflight += 1
                timeout = (self.config.slow_timeout if tier == "slow"
                           else self.config.fast_timeout)
                try:
                    fields = await asyncio.wait_for(
                        handler(request, request_id), timeout)
                except asyncio.TimeoutError:
                    self.counters["timeouts"] += 1
                    raise HttpError(
                        504, f"{request.path} timed out after "
                             f"{timeout:g}s") from None
                finally:
                    self._inflight -= 1
                if isinstance(fields, RawBody):
                    raw, document = fields.body, None
                    status = fields.status
                    headers.update(fields.headers)
                else:
                    document = serve_response_to_dict(
                        "ok", request_id, **fields)
                    status = 200
        except HttpError as exc:
            status = exc.status
            document = serve_response_to_dict(
                "error", request_id, error=exc.message)
            if exc.retry_after is not None:
                headers["Retry-After"] = (
                    f"{max(exc.retry_after, 0.0):.3f}")
        except ValidationError as exc:
            status = 400
            document = serve_response_to_dict(
                "error", request_id, error=str(exc))
        except Exception as exc:  # noqa: BLE001 - the server must stand
            status = 500
            document = serve_response_to_dict(
                "error", request_id,
                error=f"internal error: {type(exc).__name__}: {exc}")
        elapsed = time.monotonic() - started
        if tier in ("fast", "slow"):
            self._latency[tier].append(elapsed)
        self.counters[f"{request.path}:{status}"] += 1
        self.log.log(
            "request",
            level="error" if status >= 500 else "info",
            request_id=request_id, client=client,
            method=request.method, path=request.path, status=status,
            ms=round(elapsed * 1000.0, 3),
            params=dict(request.params) or None)
        keep_alive = request.keep_alive
        body = raw if raw is not None else http.json_body(document)
        return (http.render_response(
            status, body, headers=headers,
            keep_alive=keep_alive), keep_alive)

    def _route(self, request: HttpRequest):
        routes = {
            "/healthz": ("GET", self.health_document, "open"),
            "/metrics": ("GET", self._metrics_body, "open"),
            "/v1/submit": ("POST", self._handle_submit, "fast"),
            "/v1/subscribe": ("POST", self._handle_subscribe, "fast"),
            "/v1/withdraw": ("POST", self._handle_withdraw, "fast"),
            "/v1/report": ("GET", self._handle_report, "fast"),
            "/v1/tick": ("POST", self._handle_tick, "slow"),
        }
        entry = routes.get(request.path)
        if entry is None:
            raise HttpError(404, f"no such endpoint {request.path!r}")
        method, handler, tier = entry
        if request.method != method:
            raise HttpError(
                405, f"{request.path} takes {method}, "
                     f"not {request.method}")
        return handler, tier

    def _bucket(self, key: str, rate: float, burst: float) -> TokenBucket:
        """The token bucket for *key*, bounding the table as it grows.

        Client ids are client-chosen, so the table would otherwise
        grow one bucket per id forever; past ``max_tracked_clients``
        the longest-idle bucket is evicted (that client merely
        restarts with a full burst — the per-peer floor still holds).
        """
        bucket = self._buckets.get(key)
        if bucket is None:
            if len(self._buckets) >= self.config.max_tracked_clients:
                idle = min(self._buckets,
                           key=lambda k: self._buckets[k]._updated)
                del self._buckets[idle]
                self.counters["buckets_evicted"] += 1
            bucket = self._buckets[key] = TokenBucket(rate, burst)
        return bucket

    def _gate(self, client: str, peer: str) -> None:
        """Admission control for the admission controller."""
        if self._draining:
            raise HttpError(
                503, "gateway is draining; resubmit elsewhere",
                retry_after=self.config.drain_timeout)
        if self._recovering:
            raise HttpError(
                503, "gateway is replaying its write-ahead log; "
                     "retry shortly",
                retry_after=self.config.lock_patience)
        if self._inflight >= self.config.max_inflight:
            self.counters["shed"] += 1
            raise HttpError(
                503, f"gateway is at its in-flight cap "
                     f"({self.config.max_inflight}); retry shortly",
                retry_after=self.config.lock_patience)
        # The peer-address floor first: rotating x-client-id values
        # must not buy a client more rate than its address is allowed.
        wait = self._bucket(f"peer\x00{peer}", self.config.peer_rate,
                            self.config.peer_burst).try_acquire()
        if wait > 0.0:
            self.counters["throttled"] += 1
            raise HttpError(
                429, f"address {peer!r} is over its request rate "
                     f"({self.config.peer_rate:g}/s across all "
                     f"client ids)",
                retry_after=wait)
        wait = self._bucket(f"client\x00{client}",
                            self.config.client_rate,
                            self.config.client_burst).try_acquire()
        if wait > 0.0:
            self.counters["throttled"] += 1
            raise HttpError(
                429, f"client {client!r} is over its request rate "
                     f"({self.config.client_rate:g}/s)",
                retry_after=wait)

    # -- the service lock ----------------------------------------------

    async def _acquire_service_lock(self, request_id: str,
                                    endpoint: str) -> None:
        """Take the lock; retry contention only while the budget holds."""
        patience = self.config.lock_patience
        try:
            await asyncio.wait_for(self._lock.acquire(), patience)
            return
        except asyncio.TimeoutError:
            pass
        while True:
            if not self._budget.try_withdraw():
                raise HttpError(
                    503, f"{endpoint} contended with a settling "
                         f"auction and the retry budget is exhausted",
                    retry_after=patience)
            self.log.log("contention_retry", level="debug",
                         request_id=request_id, endpoint=endpoint,
                         budget=round(self._budget.balance, 2))
            try:
                await asyncio.wait_for(self._lock.acquire(), patience)
                return
            except asyncio.TimeoutError:
                continue

    @contextlib.asynccontextmanager
    async def _service_lock(self, request_id: str, endpoint: str):
        await self._acquire_service_lock(request_id, endpoint)
        try:
            yield
        finally:
            self._lock.release()

    async def _tick_locked(self, request_id: str):
        """Run one period settle in a worker thread, shielded.

        The lock is released by the future's done-callback, never by
        the (possibly cancelled) awaiting request — a ``504`` mid-
        auction leaves the settle to finish and unlock on its own.
        """
        await self._acquire_service_lock(request_id, "tick")
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(None, self._tick_and_log)
        future.add_done_callback(self._tick_done)
        return await asyncio.shield(future)

    def _tick_and_log(self):
        """One settle plus its durability record (worker thread).

        Runs under the service lock, so the backend is quiescent
        between the tick and the WAL append — the logged receipt is
        exactly the post-settle state a replay must reproduce.
        """
        report = self.backend.tick()
        wal = self._wal
        if wal is not None and not wal.suspended:
            crashpoint(CP_TICK_BEFORE_PERIOD)
            wal.append_period(
                period=self.backend.period,
                events=getattr(getattr(self.backend, "driver", None),
                               "events_processed", 0),
                revenue=self.backend.total_revenue(),
                arrivals=0)
            if self._committer is not None:
                # The log's own policy is "never" under group commit;
                # the period receipt is rare enough to sync in place.
                wal.sync()
            crashpoint(CP_TICK_AFTER_PERIOD)
            if wal.due_for_compaction(self.backend.period):
                from repro.wal.recovery import gateway_wal_state

                wal.compact(gateway_wal_state(self.backend),
                            self.backend.period)
        return report

    def _tick_done(self, future) -> None:
        self._lock.release()
        self._settle_generation += 1
        if future.cancelled():
            return
        exc = future.exception()
        if exc is not None:
            self.log.log("tick_failed", level="error", error=repr(exc))

    # -- endpoint handlers ---------------------------------------------

    def _parse_request(self, request: HttpRequest):
        return serve_request_from_dict(
            request.json(),
            allow_pickle=self.config.allow_pickle_plans)

    def _wal_append_op(self, parsed) -> "asyncio.Future | None":
        """Log an acknowledged mutation (called under the service lock).

        The append happens *before* the 200 goes out, so every response
        the client sees is durable to the configured fsync policy.
        Under group commit the append still happens here — in request
        order, under the lock — but the fsync is deferred: the caller
        awaits the returned future *after* releasing the lock, so
        concurrent mutations share one fsync instead of queueing on
        the window.
        """
        self._mutations_acked += 1
        if self._wal is None:
            return None
        from repro.io import serve_request_to_dict

        document = serve_request_to_dict(parsed)
        if self._committer is not None:
            return self._committer.enqueue(self._wal.append_op, document)
        self._wal.append_op(document)
        return None

    async def _handle_submit(self, request: HttpRequest,
                             request_id: str) -> dict:
        parsed = self._parse_request(request)
        if parsed.op not in ("submit", "subscribe"):
            raise ValidationError(
                f"/v1/submit got a {parsed.op!r} request")
        async with self._service_lock(request_id, "submit"):
            shard = self.backend.submit(parsed.query,
                                        category=parsed.category)
            receipt = self._wal_append_op(parsed)
            period = self.backend.period
            pending = self.backend.pending_count()
        if receipt is not None:
            await receipt
        return {"query_id": parsed.query.query_id, "shard": shard,
                "period": period, "pending": pending}

    async def _handle_subscribe(self, request: HttpRequest,
                                request_id: str) -> dict:
        parsed = self._parse_request(request)
        if parsed.op != "subscribe":
            raise ValidationError(
                f"/v1/subscribe got a {parsed.op!r} request")
        if not self.backend.subscriptions:
            raise HttpError(
                409, "this gateway's backend takes plain submissions "
                     "only; serve a SimulationDriver with "
                     "subscriptions enabled")
        async with self._service_lock(request_id, "subscribe"):
            self.backend.submit(parsed.query, category=parsed.category)
            receipt = self._wal_append_op(parsed)
            period = self.backend.period
            pending = self.backend.pending_count()
        if receipt is not None:
            await receipt
        return {"query_id": parsed.query.query_id,
                "category": parsed.category,
                "period": period, "pending": pending}

    async def _handle_withdraw(self, request: HttpRequest,
                               request_id: str) -> dict:
        parsed = self._parse_request(request)
        if parsed.op != "withdraw":
            raise ValidationError(
                f"/v1/withdraw got a {parsed.op!r} request")
        async with self._service_lock(request_id, "withdraw"):
            try:
                self.backend.withdraw(parsed.query_id)
            except ValidationError as exc:
                raise HttpError(404, str(exc)) from exc
            receipt = self._wal_append_op(parsed)
            pending = self.backend.pending_count()
        if receipt is not None:
            await receipt
        return {"query_id": parsed.query_id, "withdrawn": True,
                "pending": pending}

    async def _handle_report(self, request: HttpRequest,
                             request_id: str) -> RawBody:
        async with self._service_lock(request_id, "report"):
            cache = self._report_cache
            if cache is None or cache[0] != self._settle_generation:
                cache = self._render_report_cache()
        prefix, suffix = cache[1], cache[2]
        return RawBody(b"".join(
            (prefix, request_id.encode("ascii"), suffix)))

    def _render_report_cache(self) -> "tuple[int, bytes, bytes]":
        """Render /v1/report once per settle generation.

        The response envelope embeds a per-request id, so the cache
        holds the rendered body split around a sentinel request id;
        serving a request is then two slices and a join instead of a
        full report→dict→JSON encode.
        """
        body = http.json_body(serve_response_to_dict(
            "ok", _RID_SENTINEL,
            period=self.backend.period,
            revenue=self.backend.total_revenue(),
            report=report_document(self.backend.last_report)))
        at = body.index(_RID_TOKEN)
        prefix = body[:at] + _RID_PREFIX
        suffix = body[at + len(_RID_TOKEN) - 1:]
        self._report_cache = (self._settle_generation, prefix, suffix)
        return self._report_cache

    async def _handle_tick(self, request: HttpRequest,
                           request_id: str) -> dict:
        report = await self._tick_locked(request_id)
        return {"period": self.backend.period,
                "report": report_document(report)}

    # -- operational documents -----------------------------------------

    def _backend_stats(self) -> dict:
        """Backend-derived vitals for the open-tier documents.

        ``/healthz`` and ``/metrics`` skip the service lock so probes
        stay answerable during a settle — but the settle mutates the
        very structures they report, in an executor thread.  The lock
        is held (and released only by the tick's done-callback) for
        that whole window, so: lock free ⇒ no thread is mutating, read
        fresh and cache; lock held ⇒ serve the last snapshot.  Both
        branches run on the event loop with no await in between, so
        the check cannot go stale mid-read.
        """
        if self._lock.locked() and self._backend_cache is not None:
            return self._backend_cache
        backend = self.backend
        probe = backend.probe_snapshot()
        self._backend_cache = {
            "period": backend.period,
            "pending": backend.pending_count(),
            "revenue": backend.total_revenue(),
            "shards": [
                {"shard": index,
                 "pending": len(service.pending_ids),
                 "admitted": len(service.engine.admitted_ids),
                 "capacity": service.capacity}
                for index, service in enumerate(backend.services)],
            "probe": probe,
        }
        return self._backend_cache

    def health_document(self) -> dict:
        """The ``/healthz`` body (cheap; never throttled)."""
        uptime = (time.monotonic() - self._started_at
                  if self._started_at is not None else 0.0)
        stats = self._backend_stats()
        return {
            "status": "draining" if self._draining else "ok",
            "recovery": "replaying" if self._recovering else "clean",
            "recovered_from_wal": self._recovered_from_wal,
            "replayed_records": self._replayed_records,
            "period": stats["period"],
            "pending": stats["pending"],
            "inflight": self._inflight,
            "uptime_s": round(uptime, 3),
        }

    #: How long a rendered /metrics body may be re-served unchanged
    #: (its own request counters go that stale; settles and mutations
    #: invalidate immediately via the cache key).
    METRICS_TTL = 0.25

    def _metrics_body(self) -> bytes:
        """The rendered ``/metrics`` bytes, cached briefly.

        The cache key is ``(settle generation, acked mutations)`` so a
        settle or an acknowledged mutation invalidates instantly; the
        short TTL only lets the gateway's own request/latency counters
        lag, sparing the full snapshot+encode on every poll.
        """
        key = (self._settle_generation, self._mutations_acked)
        now = time.monotonic()
        cache = self._metrics_cache
        if cache is not None and cache[0] == key and now < cache[1]:
            return cache[2]
        body = http.json_body(self.metrics_document())
        self._metrics_cache = (key, now + self.METRICS_TTL, body)
        return body

    def metrics_document(self) -> dict:
        """The ``/metrics`` body: the gateway's own vitals plus the
        backend's queue depths, shard states, and (when the backend
        drives latency probes) the shared
        :func:`~repro.sim.metrics.metrics_snapshot` summary."""
        from repro.sim.metrics import percentile_dict, wal_snapshot

        stats = self._backend_stats()
        document = {
            "schema": "repro/serve-metrics",
            "version": 1,
            "draining": self._draining,
            "inflight": self._inflight,
            "period": stats["period"],
            "pending": stats["pending"],
            "revenue": stats["revenue"],
            "requests": dict(self.counters),
            "backpressure": {
                "throttled": self.counters["throttled"],
                "shed": self.counters["shed"],
                "timeouts": self.counters["timeouts"],
                "retries": self._budget.retries,
                "retry_budget": round(self._budget.balance, 3),
                "retry_exhausted": self._budget.exhausted,
            },
            "latency_ms": {
                tier: percentile_dict(
                    [seconds * 1000.0 for seconds in samples])
                for tier, samples in self._latency.items()},
            "shards": stats["shards"],
            "wal": wal_snapshot(self._wal),
        }
        if self._committer is not None:
            document["wal"]["group_commit"] = (
                self._committer.stats_snapshot())
        if stats["probe"] is not None:
            document["probe"] = stats["probe"]
        return document


async def serve_forever(target: object,
                        config: "GatewayConfig | None" = None) -> None:
    """Start a gateway and run until cancelled (SIGINT/SIGTERM safe)."""
    import signal

    gateway = AdmissionGateway(target, config)
    await gateway.start()
    loop = asyncio.get_running_loop()
    closing = asyncio.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError, RuntimeError):
            loop.add_signal_handler(signum, closing.set)
    try:
        await closing.wait()
    finally:
        await gateway.stop()
