"""Minimal HTTP/1.1 framing over asyncio streams.

The gateway speaks plain HTTP/JSON so any client — curl, a browser, a
load balancer's health checker — can talk to it, but the container
ships no HTTP library; this module is the small, strict subset the
gateway and its load generator need: request/response line parsing,
headers, ``Content-Length`` bodies, and keep-alive.  Both directions
live here so the server (:func:`read_request`) and the client
(:func:`read_response`) cannot drift apart.

Framing limits are explicit arguments — an over-long request line or
an oversized body raises :class:`HttpError` with the right status
(431/413) instead of buffering unboundedly.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, urlsplit

from repro.utils.validation import ValidationError

#: Reason phrases for every status the gateway emits.
REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """A protocol-level failure with the HTTP status to report."""

    def __init__(self, status: int, message: str,
                 retry_after: "float | None" = None) -> None:
        super().__init__(message)
        self.status = int(status)
        self.message = message
        self.retry_after = retry_after


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    target: str
    path: str
    params: dict[str, str]
    headers: dict[str, str]
    body: bytes = b""

    def json(self) -> object:
        """The body parsed as JSON (raises :class:`ValidationError`)."""
        if not self.body:
            raise ValidationError("request body is empty, expected JSON")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValidationError(
                f"request body is not valid JSON: {exc}") from exc

    @property
    def keep_alive(self) -> bool:
        """Whether the client asked to reuse the connection."""
        return self.headers.get("connection", "keep-alive").lower() != "close"


@dataclass
class HttpResponse:
    """One parsed response (client side)."""

    status: int
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> object:
        """The body parsed as JSON (raises :class:`ValidationError`)."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValidationError(
                f"response body is not valid JSON: {exc}") from exc


async def _read_line(reader: asyncio.StreamReader, limit: int) -> bytes:
    try:
        line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError) as exc:
        raise HttpError(431, f"header line too long: {exc}") from exc
    if len(line) > limit:
        raise HttpError(431, "header line too long")
    return line


async def _read_headers(
    reader: asyncio.StreamReader, max_line: int, max_headers: int
) -> dict[str, str]:
    headers: dict[str, str] = {}
    while True:
        line = await _read_line(reader, max_line)
        if line in (b"\r\n", b"\n", b""):
            return headers
        if len(headers) >= max_headers:
            raise HttpError(431, "too many headers")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()


async def _read_body(
    reader: asyncio.StreamReader, headers: dict[str, str], max_body: int
) -> bytes:
    raw = headers.get("content-length", "0")
    try:
        length = int(raw)
    except ValueError:
        raise HttpError(400, f"bad Content-Length {raw!r}") from None
    if length < 0:
        raise HttpError(400, f"bad Content-Length {raw!r}")
    if length > max_body:
        raise HttpError(
            413, f"body of {length} bytes exceeds the {max_body}-byte "
                 f"limit")
    if length == 0:
        return b""
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise HttpError(
            400, f"connection closed mid-body ({len(exc.partial)}/"
                 f"{length} bytes)") from exc


async def read_request(
    reader: asyncio.StreamReader,
    *,
    max_line: int = 8192,
    max_headers: int = 64,
    max_body: int = 1 << 20,
) -> "HttpRequest | None":
    """Parse one request; ``None`` on a clean connection close."""
    line = await _read_line(reader, max_line)
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1"):
        raise HttpError(400, f"malformed request line {line!r}")
    method, target, _version = parts
    split = urlsplit(target)
    headers = await _read_headers(reader, max_line, max_headers)
    body = await _read_body(reader, headers, max_body)
    return HttpRequest(
        method=method.upper(),
        target=target,
        path=split.path or "/",
        params=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
    )


async def read_response(
    reader: asyncio.StreamReader,
    *,
    max_line: int = 8192,
    max_headers: int = 64,
    max_body: int = 8 << 20,
) -> "HttpResponse | None":
    """Parse one response; ``None`` on a clean connection close."""
    line = await _read_line(reader, max_line)
    if not line:
        return None
    parts = line.decode("latin-1").strip().split(None, 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1"):
        raise HttpError(400, f"malformed status line {line!r}")
    try:
        status = int(parts[1])
    except ValueError:
        raise HttpError(
            400, f"malformed status line {line!r}") from None
    headers = await _read_headers(reader, max_line, max_headers)
    body = await _read_body(reader, headers, max_body)
    return HttpResponse(status=status, headers=headers, body=body)


#: Precomputed response-head byte pairs, keyed by
#: ``(status, keep_alive)``: everything before the Content-Length
#: digits, and everything after them.  JSON responses with no extra
#: headers — the entire serving hot path — assemble in one
#: ``bytes.join`` with zero per-request string formatting.
_HEAD_CACHE: "dict[tuple[int, bool], tuple[bytes, bytes]]" = {}


def _head_parts(status: int, keep_alive: bool) -> tuple[bytes, bytes]:
    parts = _HEAD_CACHE.get((status, keep_alive))
    if parts is None:
        reason = REASONS.get(status, "Unknown")
        prefix = (f"HTTP/1.1 {status} {reason}\r\n"
                  f"Content-Type: application/json\r\n"
                  f"Content-Length: ").encode("latin-1")
        suffix = ("\r\nConnection: "
                  + ("keep-alive" if keep_alive else "close")
                  + "\r\n\r\n").encode("latin-1")
        parts = _HEAD_CACHE[(status, keep_alive)] = (prefix, suffix)
    return parts


def render_response(
    status: int,
    body: bytes = b"",
    *,
    content_type: str = "application/json",
    headers: "dict[str, str] | None" = None,
    keep_alive: bool = True,
) -> bytes:
    """Serialize one response, ready for ``writer.write``."""
    if body and not headers and content_type == "application/json":
        prefix, suffix = _head_parts(status, keep_alive)
        return b"".join(
            (prefix, b"%d" % len(body), suffix, body))
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    if body:
        lines.append(f"Content-Type: {content_type}")
    lines.append(f"Content-Length: {len(body)}")
    lines.append("Connection: " + ("keep-alive" if keep_alive else "close"))
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


def render_request(
    method: str,
    target: str,
    body: bytes = b"",
    *,
    host: str = "localhost",
    headers: "dict[str, str] | None" = None,
    keep_alive: bool = True,
) -> bytes:
    """Serialize one request (the load generator's half)."""
    lines = [f"{method.upper()} {target} HTTP/1.1", f"Host: {host}"]
    if body:
        lines.append("Content-Type: application/json")
    lines.append(f"Content-Length: {len(body)}")
    lines.append("Connection: " + ("keep-alive" if keep_alive else "close"))
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


def json_body(document: object) -> bytes:
    """A JSON document as compact, sorted, UTF-8 bytes."""
    return json.dumps(document, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
