"""Multi-process gateway front-end: pre-fork workers over one port.

One :class:`GatewaySupervisor` (the parent process) binds the public
listening socket — ``SO_REUSEPORT`` when the kernel offers it, a single
shared inherited socket otherwise — plus one loopback *control* socket
per worker, then forks ``N`` :class:`WorkerGateway` processes that all
accept on the public port.  The parent keeps every socket open so a
crashed worker can be respawned onto the very same file descriptors.

Scaling without a cross-process lock comes from *shard affinity*:
:class:`~repro.cluster.affinity.ShardAffinityMap` reproduces the
federation's consistent-hash placement bit-for-bit and partitions the
shards into contiguous per-worker groups.  Every mutating request
routes (by its client key, forwarded over the control plane when it
arrives at the wrong worker) to the one worker owning its shard — so
each worker buffers its shards' submissions in arrival order with no
coordination on the hot path.

Settles stay single-writer: worker 0 is the *coordinator* and holds
the only authoritative federation.  ``/v1/tick`` (forwarded there by
the others) drains every worker's buffer over the control plane in
worker order, applies the ops, runs the ordinary settle, and pushes
the resulting report to the other workers' response caches — the
merged report is byte-identical to the same submissions made through
a single-process gateway, or in-process.

Durability is *striped*: each worker appends its acked mutations to
its own WAL stripe (``stripe-NN/`` under the shared ``wal_dir``,
group-committed when configured) and the coordinator's main log
records each settle with a per-stripe ``consumed`` high-water mark.
:func:`~repro.wal.recovery.recover_striped_gateway` merges the stripes
deterministically by those marks; ops past the last mark are exactly
the workers' unsettled buffers, which each worker reloads from its own
stripe on respawn.  A worker killed mid-request therefore loses
nothing that was acknowledged, and re-delivered ops are dropped by the
federation's duplicate check — live and during replay alike.

Stripe logs are append-only for now: compaction of a stripe must be
coordinated with the main log's checkpoints (a stripe may only drop
ops below every checkpoint's consumed mark), which is left as a
follow-on; the 8 MiB segment roll keeps individual files bounded.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import multiprocessing
import os
import signal
import socket
import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.cluster.affinity import ShardAffinityMap, affinity_key
from repro.io import (
    serve_request_from_dict,
    serve_request_to_dict,
    serve_response_to_dict,
)
from repro.serve import http
from repro.serve.gateway import (
    _RID_PREFIX,
    _RID_SENTINEL,
    _RID_TOKEN,
    AdmissionGateway,
    GatewayConfig,
    HostBackend,
    RawBody,
    _validate_streams,
    make_backend,
    report_document,
)
from repro.serve.http import HttpError, HttpRequest
from repro.utils.validation import ValidationError, require
from repro.wal.crashpoints import arm_from_env, crashpoint, disarm, register

#: Worker index that owns the federation and runs every settle.
COORDINATOR = 0

CP_FRONTEND_BEFORE_PERIOD = register("frontend.tick.before-period-record")
CP_FRONTEND_AFTER_PERIOD = register("frontend.tick.after-period-record")
CP_FRONTEND_DRAIN_SYNCED = register("frontend.drain.after-sync")

#: Headers the control plane uses.  ``x-affinity-key`` lets the entry
#: worker route without decoding the body; ``x-repro-forwarded`` marks
#: a relayed request so a routing disagreement 400s instead of looping.
AFFINITY_HEADER = "x-affinity-key"
FORWARDED_HEADER = "x-repro-forwarded"


def stripe_directory(wal_dir, worker: int) -> Path:
    """Worker *worker*'s WAL stripe under the shared *wal_dir*."""
    return Path(wal_dir) / f"stripe-{int(worker):02d}"


@dataclass(frozen=True)
class FrontendConfig:
    """The supervisor's knobs, wrapping one shared
    :class:`~repro.serve.gateway.GatewayConfig` for every worker."""

    workers: int = 2
    gateway: GatewayConfig = field(default_factory=GatewayConfig)
    #: How long a spawned worker may take to answer its ready probe.
    ready_timeout: float = 15.0
    #: Respawn workers that die (the crash-recovery path); off leaves
    #: the corpse for a test to inspect.
    respawn: bool = True
    #: Crash-detection poll interval, seconds.
    monitor_interval: float = 0.05
    #: How long a SIGTERMed worker gets to drain before SIGKILL.
    term_timeout: float = 10.0

    def __post_init__(self) -> None:
        require(int(self.workers) >= 1, "workers must be >= 1")
        require(self.ready_timeout > 0, "ready_timeout must be positive")
        require(self.monitor_interval > 0,
                "monitor_interval must be positive")
        require(self.term_timeout > 0, "term_timeout must be positive")


class PeerPool:
    """Pooled keep-alive connections to the other workers' control
    ports.  Stale pooled connections are discarded and retried; a
    fresh connection gets no retry, because its failure may mean the
    peer executed the (non-idempotent) request before dying."""

    def __init__(self, host: str, ports) -> None:
        self.host = host
        self.ports = list(ports)
        self._idle: dict[int, list] = {}

    async def _acquire(self, worker: int):
        pool = self._idle.setdefault(worker, [])
        while pool:
            reader, writer = pool.pop()
            if not writer.is_closing():
                return reader, writer, True
            writer.close()
        reader, writer = await asyncio.open_connection(
            self.host, self.ports[worker])
        return reader, writer, False

    def _release(self, worker: int, reader, writer) -> None:
        if writer.is_closing():
            writer.close()
            return
        self._idle.setdefault(worker, []).append((reader, writer))

    async def roundtrip(self, worker: int, payload: bytes):
        while True:
            reader, writer, reused = await self._acquire(worker)
            try:
                writer.write(payload)
                await writer.drain()
                response = await http.read_response(
                    reader, max_body=64 << 20)
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.IncompleteReadError, OSError):
                # Only a *reused* keep-alive connection earns a retry:
                # its death just means the pooled connection went
                # stale while idle.  A fresh connection that dies
                # mid-exchange may have delivered the request to a
                # peer that executed it before crashing — re-sending
                # would duplicate a non-idempotent relay (a tick
                # settles twice), so the failure must propagate.
                writer.close()
                if not reused:
                    raise
                continue
            if response is None:    # stale keep-alive: clean EOF
                writer.close()
                if not reused:
                    raise ConnectionResetError(
                        f"worker {worker} closed the control "
                        f"connection")
                continue
            self._release(worker, reader, writer)
            return response

    async def forward(self, worker: int, request: HttpRequest,
                      client: str, key: "str | None" = None):
        """Relay *request* verbatim to *worker*'s control port."""
        headers = {"x-client-id": client, FORWARDED_HEADER: "1"}
        if key is not None:
            headers[AFFINITY_HEADER] = key
        payload = http.render_request(
            request.method, request.target, request.body,
            headers=headers)
        return await self.roundtrip(worker, payload)

    async def post_json(self, worker: int, path: str, document: dict):
        payload = http.render_request(
            "POST", path, http.json_body(document))
        response = await self.roundtrip(worker, payload)
        return response.status, (response.json()
                                 if response.body else {})

    async def get_json(self, worker: int, target: str):
        payload = http.render_request("GET", target)
        response = await self.roundtrip(worker, payload)
        return response.status, (response.json()
                                 if response.body else {})

    async def close(self) -> None:
        for pool in self._idle.values():
            for _reader, writer in pool:
                writer.close()
                with contextlib.suppress(Exception,
                                         asyncio.CancelledError):
                    await writer.wait_closed()
        self._idle.clear()


class WorkerGateway(AdmissionGateway):
    """One pre-forked front-end worker.

    Every worker builds its own federation from the shared factory,
    but only the coordinator's copy ever advances — the others use
    theirs for request validation and for deriving the (identical)
    affinity map.  Mutations the worker owns are buffered locally as
    ``(seq, request document, query id)`` and appended to the worker's
    WAL stripe before the 200 goes out; the coordinator drains the
    buffers at each settle.
    """

    def __init__(self, target: object,
                 config: "GatewayConfig | None" = None, *,
                 index: int, num_workers: int, control_ports,
                 log=None) -> None:
        super().__init__(target, config, log)
        if not isinstance(self.backend, HostBackend):
            raise ValidationError(
                "the multi-process front-end serves a federation "
                "host backend only; simulation drivers and "
                "subscriptions are single-process")
        cluster = getattr(self.backend.host, "cluster", None)
        if cluster is None:
            raise ValidationError(
                "the multi-process front-end needs a federated "
                "(multi-shard) admission service")
        self.index = int(index)
        self.num_workers = int(num_workers)
        require(0 <= self.index < self.num_workers,
                "worker index out of range")
        self.affinity = ShardAffinityMap.for_cluster(
            cluster, self.num_workers)
        self._shards = self.affinity.shards_of_worker(self.index)
        self._peers = PeerPool("127.0.0.1", control_ports)
        #: Unsettled acked mutations: (seq, request document, query id).
        self._buffer: list = []
        self._buffer_ids: set = set()
        self._next_seq = 1
        self._stripe = None
        self._stripe_path: "Path | None" = None
        #: Coordinator only: stripe index -> highest settled seq.
        self._consumed = {worker: 0
                          for worker in range(self.num_workers)}
        #: Coordinator only: buffers handed off by draining workers.
        self._handoffs: dict[int, tuple] = {}
        #: Last settled (period, revenue, report) pushed from the
        #: coordinator; what /v1/report serves on non-coordinators.
        self._cluster_view: "dict | None" = None
        self._control_server = None
        self._ready = False

    @property
    def is_coordinator(self) -> bool:
        return self.index == COORDINATOR

    # -- lifecycle -----------------------------------------------------

    async def start_worker(self, public_sock, control_sock):
        """Recover/initialise durability, then listen on the inherited
        sockets.  The parent's ready probe connects to *control_sock*;
        it stays unanswered (connection refused — the parent binds but
        never listens) until this method has finished, so "accepting"
        means "recovered and ready"."""
        require(self._server is None, "the worker is already started")
        if self.config.wal_dir:
            await self._start_durability()
        self._backend_stats()       # prime the open-tier snapshot
        self._control_server = await asyncio.start_server(
            self._handle_control_connection, sock=control_sock)
        self._server = await asyncio.start_server(
            self._handle_connection, sock=public_sock)
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()
        self._ready = True
        if self.config.tick_interval and self.is_coordinator:
            self._tick_task = asyncio.create_task(self._auto_tick())
        if self.is_coordinator and self._recovered_from_wal:
            await self._nudge_peers_after_recovery()
        self.log.log("worker_listening", worker=self.index,
                     role=self._role(), port=self.port,
                     shards=[self._shards.start, self._shards.stop],
                     buffered=len(self._buffer),
                     recovered=self._recovered_from_wal or None)
        return self

    async def _start_durability(self) -> None:
        from repro.wal import GroupCommitter, WriteAheadLog, wal_exists
        from repro.wal.recovery import (
            recover_striped_gateway,
            resume_stripe,
        )

        root = Path(self.config.wal_dir)
        if self.is_coordinator:
            if wal_exists(root):
                self._wal, consumed = recover_striped_gateway(
                    root, self.backend,
                    fsync=self._wal_fsync_policy(),
                    compact_every=self.config.compact_every)
                self._consumed.update(consumed)
                self._recovered_from_wal = True
                self._replayed_records = self._wal.stats.get(
                    "replayed", 0)
                self._settle_generation += 1
                self._cluster_view = {
                    "period": self.backend.period,
                    "revenue": self.backend.total_revenue(),
                    "report": report_document(
                        self.backend.last_report),
                }
                self.log.log("worker_recovered", worker=self.index,
                             period=self.backend.period,
                             replayed=self._replayed_records,
                             consumed=dict(self._consumed))
            else:
                self._wal = WriteAheadLog.create(
                    root, self._frontend_wal_state(),
                    fsync=self._wal_fsync_policy(),
                    compact_every=self.config.compact_every)
        path = stripe_directory(root, self.index)
        if wal_exists(path):
            self._stripe, ops, self._next_seq = resume_stripe(
                path, fsync=self._wal_fsync_policy())
        else:
            self._stripe = WriteAheadLog.create(
                path, {"kind": "stripe", "worker": self.index,
                       "seq": 0},
                fsync=self._wal_fsync_policy())
            ops = []
        self._stripe_path = path
        if self.config.wal_group_commit:
            self._committer = GroupCommitter(
                self._stripe, window=self.config.wal_group_window)
        if self.is_coordinator:
            self._rebuild_buffer(
                ops, self._consumed.get(COORDINATOR, 0))
        elif ops:
            high = await self._fetch_consumed_with_retry()
            self._rebuild_buffer(ops, high)

    async def _fetch_consumed_with_retry(self) -> int:
        """Ask the coordinator how far this stripe has been settled.

        Holds the coordinator's service lock server-side, so the
        answer can never be a mid-settle snapshot — a respawned worker
        either reloads ops a finished settle excluded, or ops an
        unfinished one will re-receive (and deterministically drop as
        duplicates)."""
        deadline = time.monotonic() + max(
            self.config.slow_timeout, 1.0)
        while True:
            try:
                status, document = await asyncio.wait_for(
                    self._peers.get_json(
                        COORDINATOR,
                        f"/internal/consumed?stripe={self.index}"),
                    self.config.fast_timeout)
                if status == 200:
                    return int(document["hw"])
            except (HttpError, OSError, ValidationError,
                    asyncio.TimeoutError):
                pass
            if time.monotonic() > deadline:
                raise ValidationError(
                    f"worker {self.index} could not learn its "
                    f"consumed high-water mark from the coordinator")
            await asyncio.sleep(0.05)

    async def _nudge_peers_after_recovery(self) -> None:
        """After a coordinator respawn, surviving workers may have
        drained ops whose settle never became durable — tell each to
        rebuild its buffer from its stripe above the recovered mark,
        and push the recovered report so their caches match."""
        for worker in range(self.num_workers):
            if worker == self.index:
                continue
            with contextlib.suppress(HttpError, OSError,
                                     ValidationError,
                                     asyncio.TimeoutError):
                await asyncio.wait_for(
                    self._peers.post_json(
                        worker, "/internal/reload",
                        {"hw": self._consumed.get(worker, 0)}),
                    self.config.fast_timeout)
        await self._push_cluster_view()

    async def stop_worker(self) -> None:
        """Graceful drain: forwarders hand their unsettled buffer to
        the coordinator; the coordinator runs one final settle."""
        if self._stopped:
            return
        self._draining = True
        self._ready = False
        if self._tick_task is not None:
            self._tick_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._tick_task
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.drain_timeout
        while self._inflight > 0 and loop.time() < deadline:
            await asyncio.sleep(0.005)
        try:
            if self.is_coordinator:
                handed = any(ops for _, ops in self._handoffs.values())
                if (self._buffer or handed
                        or self.backend.pending_count()):
                    await self._coordinator_tick("shutdown")
            else:
                async with self._service_lock("shutdown", "handoff"):
                    high, ops = await self._drain_local_locked()
                if ops or high:
                    with contextlib.suppress(HttpError, OSError,
                                             ValidationError,
                                             asyncio.TimeoutError):
                        await asyncio.wait_for(
                            self._peers.post_json(
                                COORDINATOR, "/internal/handoff",
                                {"worker": self.index, "hw": high,
                                 "ops": [[seq, document]
                                         for seq, document in ops]}),
                            self.config.fast_timeout)
        except Exception as exc:  # noqa: BLE001 - shutdown proceeds
            self.log.log("final_settle_failed", level="error",
                         worker=self.index, error=repr(exc))
        if self._committer is not None:
            with contextlib.suppress(Exception):
                await self._committer.close()
        for log in (self._stripe, self._wal):
            if log is not None:
                log.sync()
        for server in (self._server, self._control_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        for writer in list(self._connections):
            writer.close()
        while self._connections:
            await asyncio.sleep(0.005)
        await self._peers.close()
        for log in (self._stripe, self._wal):
            if log is not None:
                log.close()
        self._stopped = True
        self.log.log("worker_stopped", worker=self.index,
                     forwarded=self.counters["forwarded"])
        if self._owns_log:
            self.log.close()

    # -- striped durability --------------------------------------------

    def _frontend_wal_state(self, consumed=None) -> dict:
        from repro.wal.recovery import gateway_wal_state

        state = gateway_wal_state(self.backend)
        state["consumed"] = {
            str(stripe): int(seq) for stripe, seq
            in sorted((consumed or self._consumed).items())}
        return state

    def _stripe_append(self, document: dict):
        """Append one acked op to this worker's stripe (under the
        service lock); returns the group-commit receipt to await after
        the lock is released, or ``None``."""
        self._mutations_acked += 1
        if self._stripe is None:
            return None
        if self._committer is not None:
            return self._committer.enqueue(
                self._stripe.append_op, document)
        self._stripe.append_op(document)
        return None

    def _rebuild_buffer(self, ops, high: int) -> None:
        """Rebuild the unsettled buffer from stripe *ops* above the
        consumed mark *high*, netting out logged withdraws."""
        self._buffer = []
        self._buffer_ids = set()
        for seq, document in ops:
            if seq <= high:
                continue
            request = serve_request_from_dict(
                document, allow_pickle=True)
            if request.op == "withdraw":
                self._buffer = [entry for entry in self._buffer
                                if entry[2] != request.query_id]
                self._buffer_ids.discard(request.query_id)
            else:
                self._buffer.append(
                    (seq, document, request.query.query_id))
                self._buffer_ids.add(request.query.query_id)
        self._next_seq = max(
            [self._next_seq] + [seq + 1 for seq, _ in ops])

    def _scan_own_stripe(self):
        from repro.wal import scan_wal
        from repro.wal import records as rec

        ops = []
        scan = scan_wal(self._stripe_path)
        for record in scan.tail(keep_kinds=(rec.RECORD_OP,)):
            document = rec.decode_json(record.body, "op")
            ops.append((int(document["seq"]), document["request"]))
        ops.sort(key=lambda pair: pair[0])
        return ops

    async def _drain_local_locked(self):
        """Swap out the buffer, then make its stripe records durable.

        Swap-first is deliberate: every op in the swapped batch was
        appended before the swap, and a flush/sync covers all bytes
        appended before it — so nothing the settle consumes can be
        lost to a crash, while ops arriving during the fsync simply
        wait for the next drain."""
        ops = [(seq, document) for seq, document, _ in self._buffer]
        high = self._next_seq - 1
        self._buffer = []
        self._buffer_ids = set()
        if self._committer is not None:
            await self._committer.flush()
        elif self._stripe is not None:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self._stripe.sync)
        crashpoint(CP_FRONTEND_DRAIN_SYNCED)
        return high, ops

    # -- routing -------------------------------------------------------

    def _role(self) -> str:
        return "coordinator" if self.is_coordinator else "forwarder"

    def _relay_result(self, response) -> RawBody:
        headers = {}
        retry = response.headers.get("retry-after")
        if retry is not None:
            headers["Retry-After"] = retry
        return RawBody(response.body, status=response.status,
                       headers=headers)

    async def _relay(self, owner: int, request: HttpRequest,
                     key: "str | None" = None) -> RawBody:
        client = request.headers.get("x-client-id", "forwarded")
        try:
            response = await self._peers.forward(
                owner, request, client, key=key)
        except OSError as exc:
            raise HttpError(
                503, f"worker {owner} is unavailable ({exc}); "
                     f"retry shortly",
                retry_after=self.config.lock_patience) from exc
        self.counters["forwarded"] += 1
        return self._relay_result(response)

    def _reject_draining(self) -> None:
        if self._draining:
            raise HttpError(
                503, "worker is draining; resubmit shortly",
                retry_after=self.config.drain_timeout)

    # -- endpoint handlers ---------------------------------------------

    async def _handle_submit(self, request: HttpRequest,
                             request_id: str):
        forwarded = FORWARDED_HEADER in request.headers
        hinted = request.headers.get(AFFINITY_HEADER)
        if hinted is not None and not forwarded:
            owner = self.affinity.worker_of(hinted)
            if owner != self.index:
                return await self._relay(owner, request, key=hinted)
        parsed = self._parse_request(request)
        if parsed.op not in ("submit", "subscribe"):
            raise ValidationError(
                f"/v1/submit got a {parsed.op!r} request")
        if parsed.category is not None:
            raise ValidationError(
                "subscription categories need a simulation-driver "
                "backend, which is single-process; the multi-worker "
                "front-end takes plain submissions only")
        key = affinity_key(parsed.query)
        owner = self.affinity.worker_of(key)
        if owner != self.index:
            if forwarded:
                raise HttpError(
                    400, f"affinity key mismatch: worker "
                         f"{self.index} was forwarded {key!r}, "
                         f"which worker {owner} owns")
            return await self._relay(owner, request, key=key)
        shard = self.affinity.shard_of(key)
        async with self._service_lock(request_id, "submit"):
            self._reject_draining()
            query_id = parsed.query.query_id
            if query_id in self._buffer_ids:
                raise ValidationError(
                    f"query id {query_id!r} already submitted")
            _validate_streams(parsed.query, self.backend.services)
            document = serve_request_to_dict(parsed)
            seq = self._next_seq
            self._next_seq += 1
            self._buffer.append((seq, document, query_id))
            self._buffer_ids.add(query_id)
            receipt = self._stripe_append(
                {"seq": seq, "request": document})
            period = self._cluster_period()
            pending = len(self._buffer)
        if receipt is not None:
            await receipt
        return {"query_id": query_id, "shard": shard,
                "period": period, "pending": pending}

    async def _handle_withdraw(self, request: HttpRequest,
                               request_id: str):
        forwarded = FORWARDED_HEADER in request.headers
        hinted = request.headers.get(AFFINITY_HEADER)
        if hinted is not None and not forwarded:
            owner = self.affinity.worker_of(hinted)
            if owner != self.index:
                return await self._relay(owner, request, key=hinted)
        parsed = self._parse_request(request)
        if parsed.op != "withdraw":
            raise ValidationError(
                f"/v1/withdraw got a {parsed.op!r} request")
        query_id = parsed.query_id
        found = False
        async with self._service_lock(request_id, "withdraw"):
            position = next(
                (index for index, entry in enumerate(self._buffer)
                 if entry[2] == query_id), None)
            if position is not None:
                self._reject_draining()
                found = True
                del self._buffer[position]
                self._buffer_ids.discard(query_id)
                document = serve_request_to_dict(parsed)
                seq = self._next_seq
                self._next_seq += 1
                receipt = self._stripe_append(
                    {"seq": seq, "request": document})
                pending = len(self._buffer)
        if found:
            if receipt is not None:
                await receipt
            return {"query_id": query_id, "withdrawn": True,
                    "pending": pending}
        if not forwarded:
            # The submit-time key may have been an owner id, not the
            # query id — the query could be buffered anywhere.  Probe
            # the other workers before giving up.
            for worker in range(self.num_workers):
                if worker == self.index:
                    continue
                try:
                    response = await self._peers.forward(
                        worker, request,
                        request.headers.get("x-client-id",
                                            "forwarded"))
                except OSError:
                    continue
                if response.status == 404:
                    continue
                self.counters["forwarded"] += 1
                return self._relay_result(response)
        raise HttpError(
            404, f"unknown query id {query_id!r}; nothing to "
                 f"withdraw")

    async def _handle_report(self, request: HttpRequest,
                             request_id: str) -> RawBody:
        if self.is_coordinator:
            return await super()._handle_report(request, request_id)
        cache = self._report_cache
        if cache is None or cache[0] != self._settle_generation:
            cache = self._render_view_report_cache()
        return RawBody(b"".join(
            (cache[1], request_id.encode("ascii"), cache[2])))

    def _render_view_report_cache(self):
        view = self._cluster_view or {
            "period": 0, "revenue": 0.0, "report": None}
        body = http.json_body(serve_response_to_dict(
            "ok", _RID_SENTINEL,
            period=view["period"], revenue=view["revenue"],
            report=view["report"]))
        at = body.index(_RID_TOKEN)
        self._report_cache = (
            self._settle_generation,
            body[:at] + _RID_PREFIX,
            body[at + len(_RID_TOKEN) - 1:])
        return self._report_cache

    async def _handle_tick(self, request: HttpRequest,
                           request_id: str):
        if not self.is_coordinator:
            return await self._relay(COORDINATOR, request)
        report = await self._tick_locked(request_id)
        return {"period": self.backend.period,
                "report": report_document(report)}

    async def _tick_locked(self, request_id: str):
        if not self.is_coordinator:
            raise HttpError(
                409, "period ticks settle at the coordinator worker")
        # Shielded so a timed-out client cannot cancel the settle
        # between a peer drain and its consumed-mark record.
        task = asyncio.create_task(self._coordinator_tick(request_id))
        return await asyncio.shield(task)

    # -- the coordinated settle ----------------------------------------

    def _cluster_period(self) -> int:
        if self.is_coordinator:
            return self.backend.period
        view = self._cluster_view
        return int(view["period"]) if view else 0

    async def _coordinator_tick(self, request_id: str):
        async with self._service_lock(request_id, "tick"):
            batches: dict[int, list] = {}
            consumed_now = dict(self._consumed)
            own_high, own_ops = await self._drain_local_locked()
            batches[COORDINATOR] = own_ops
            consumed_now[COORDINATOR] = max(
                consumed_now.get(COORDINATOR, 0), own_high)
            for worker in range(self.num_workers):
                if worker == COORDINATOR:
                    continue
                ops: list = []
                high = consumed_now.get(worker, 0)
                try:
                    status, document = await asyncio.wait_for(
                        self._peers.post_json(
                            worker, "/internal/drain", {}),
                        self.config.fast_timeout)
                except (HttpError, OSError, ValidationError,
                        asyncio.TimeoutError) as exc:
                    # A dead worker's unsettled ops stay in its
                    # stripe; they settle after its respawn.
                    self.log.log("drain_skipped", level="warning",
                                 worker=worker, error=repr(exc))
                    status = None
                if status == 200:
                    ops = [(int(seq), document_op)
                           for seq, document_op in document["ops"]]
                    high = max(high, int(document["hw"]))
                elif status is not None:
                    self.log.log("drain_failed", level="warning",
                                 worker=worker, status=status)
                handed = self._handoffs.pop(worker, None)
                if handed is not None:
                    ops = ops + list(handed[1])
                    high = max(high, int(handed[0]))
                batches[worker] = sorted(ops,
                                         key=lambda pair: pair[0])
                consumed_now[worker] = high
            loop = asyncio.get_running_loop()
            report = await loop.run_in_executor(
                None, self._settle_batches, batches, consumed_now)
            self._settle_generation += 1
        await self._push_cluster_view()
        return report

    def _settle_batches(self, batches, consumed_now):
        """Apply drained ops in worker order, settle, and record the
        period with its consumed marks (worker thread, lock held).
        This is the exact order striped replay reproduces."""
        dropped = 0
        for worker in sorted(batches):
            for seq, document in batches[worker]:
                request = serve_request_from_dict(
                    document, allow_pickle=True)
                try:
                    if request.op in ("submit", "subscribe"):
                        self.backend.submit(
                            request.query,
                            category=request.category)
                    else:
                        self.backend.withdraw(request.query_id)
                except ValidationError as exc:
                    # Duplicate re-delivery after a crash window, or
                    # a cross-worker duplicate id: drop, exactly as
                    # replay will.
                    dropped += 1
                    self.log.log("op_dropped", level="warning",
                                 worker=worker, seq=seq,
                                 error=str(exc))
        report = self.backend.tick()
        wal = self._wal
        if wal is not None and not wal.suspended:
            crashpoint(CP_FRONTEND_BEFORE_PERIOD)
            wal.append_period(
                period=self.backend.period, events=0,
                revenue=self.backend.total_revenue(), arrivals=0,
                consumed=consumed_now)
            wal.sync()
            crashpoint(CP_FRONTEND_AFTER_PERIOD)
            if wal.due_for_compaction(self.backend.period):
                wal.compact(self._frontend_wal_state(consumed_now),
                            self.backend.period)
        self._consumed = dict(consumed_now)
        if dropped:
            self.counters["ops_dropped"] += dropped
        self._cluster_view = {
            "period": self.backend.period,
            "revenue": self.backend.total_revenue(),
            "report": report_document(report),
        }
        return report

    async def _push_cluster_view(self) -> None:
        view = self._cluster_view
        if view is None or self.num_workers == 1:
            return
        payload = {"generation": self._settle_generation,
                   "view": view}
        for worker in range(self.num_workers):
            if worker == self.index:
                continue
            with contextlib.suppress(HttpError, OSError,
                                     ValidationError,
                                     asyncio.TimeoutError):
                await asyncio.wait_for(
                    self._peers.post_json(
                        worker, "/internal/invalidate", payload),
                    self.config.fast_timeout)

    # -- the control plane ---------------------------------------------

    async def _handle_control_connection(self, reader,
                                         writer) -> None:
        """Loopback peer traffic: forwarded public requests (ungated —
        the entry worker already gated them) plus the /internal/*
        coordination endpoints."""
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await http.read_request(
                        reader, max_body=64 << 20)
                except HttpError as exc:
                    writer.write(self._render_error(
                        exc, "c000000", keep_alive=False))
                    await writer.drain()
                    return
                if request is None:
                    return
                if request.path.startswith("/internal/"):
                    payload, keep_alive = (
                        await self._respond_internal(request))
                else:
                    payload, keep_alive = await self._respond(
                        request, "control", gate=False)
                writer.write(payload)
                await writer.drain()
                if not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            with contextlib.suppress(Exception,
                                     asyncio.CancelledError):
                await writer.wait_closed()

    async def _respond_internal(self, request: HttpRequest):
        routes = {
            "/internal/ready": self._control_ready,
            "/internal/drain": self._control_drain,
            "/internal/consumed": self._control_consumed,
            "/internal/invalidate": self._control_invalidate,
            "/internal/handoff": self._control_handoff,
            "/internal/reload": self._control_reload,
        }
        try:
            handler = routes.get(request.path)
            if handler is None:
                raise HttpError(
                    404, f"no such control endpoint "
                         f"{request.path!r}")
            document = await handler(request)
            status = 200
        except HttpError as exc:
            status, document = exc.status, {"error": exc.message}
        except ValidationError as exc:
            status, document = 400, {"error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - the server stands
            status, document = 500, {
                "error": f"{type(exc).__name__}: {exc}"}
        keep_alive = request.keep_alive
        return (http.render_response(
            status, http.json_body(document),
            keep_alive=keep_alive), keep_alive)

    async def _control_ready(self, request: HttpRequest) -> dict:
        return {"ready": self._ready and not self._draining,
                "worker": self.index, "role": self._role(),
                "period": self._cluster_period()}

    async def _control_drain(self, request: HttpRequest) -> dict:
        if self.is_coordinator:
            raise HttpError(
                409, "the coordinator drains itself at settle")
        async with self._service_lock("internal", "drain"):
            high, ops = await self._drain_local_locked()
        return {"worker": self.index, "hw": high,
                "ops": [[seq, document] for seq, document in ops]}

    async def _control_consumed(self, request: HttpRequest) -> dict:
        if not self.is_coordinator:
            raise HttpError(
                409, "the consumed map lives at the coordinator")
        stripe = int(request.params.get("stripe", -1))
        # Under the service lock: a settle in flight has drained the
        # asker's predecessor already, so waiting it out returns the
        # post-settle mark, never a mid-settle one.
        async with self._service_lock("internal", "consumed"):
            high = int(self._consumed.get(stripe, 0))
        return {"stripe": stripe, "hw": high}

    async def _control_invalidate(self,
                                  request: HttpRequest) -> dict:
        document = request.json()
        view = document.get("view")
        if view is not None:
            self._cluster_view = view
        self._settle_generation += 1
        return {"worker": self.index}

    async def _control_handoff(self, request: HttpRequest) -> dict:
        if not self.is_coordinator:
            raise HttpError(
                409, "buffer handoff goes to the coordinator")
        document = request.json()
        worker = int(document["worker"])
        ops = [(int(seq), op)
               for seq, op in document.get("ops", [])]
        high = int(document.get("hw", 0))
        async with self._service_lock("internal", "handoff"):
            previous = self._handoffs.get(worker)
            if previous is not None:
                high = max(high, previous[0])
                ops = list(previous[1]) + ops
            self._handoffs[worker] = (high, ops)
        return {"worker": worker, "ops": len(ops)}

    async def _control_reload(self, request: HttpRequest) -> dict:
        document = request.json()
        high = int(document.get("hw", 0))
        async with self._service_lock("internal", "reload"):
            if self._stripe is not None:
                if self._committer is not None:
                    await self._committer.flush()
                else:
                    loop = asyncio.get_running_loop()
                    await loop.run_in_executor(
                        None, self._stripe.sync)
                loop = asyncio.get_running_loop()
                ops = await loop.run_in_executor(
                    None, self._scan_own_stripe)
                self._rebuild_buffer(ops, high)
        return {"worker": self.index,
                "buffered": len(self._buffer)}

    # -- operational documents -----------------------------------------

    def health_document(self) -> dict:
        document = super().health_document()
        document["worker"] = self.index
        document["role"] = self._role()
        document["workers"] = self.num_workers
        document["buffered"] = len(self._buffer)
        if not self.is_coordinator:
            document["period"] = self._cluster_period()
        return document

    def metrics_document(self) -> dict:
        from repro.sim.metrics import wal_snapshot

        document = super().metrics_document()
        view = self._cluster_view
        if not self.is_coordinator and view is not None:
            document["period"] = view["period"]
            document["revenue"] = view["revenue"]
        document["frontend"] = {
            "worker": self.index,
            "workers": self.num_workers,
            "role": self._role(),
            "buffered": len(self._buffer),
            "forwarded": self.counters["forwarded"],
            "shard_range": [self._shards.start, self._shards.stop],
            "consumed": ({str(stripe): seq for stripe, seq
                          in sorted(self._consumed.items())}
                         if self.is_coordinator else None),
            "stripe": wal_snapshot(self._stripe),
        }
        return document


# ----------------------------------------------------------------------
# The pre-fork supervisor
# ----------------------------------------------------------------------


def _control_call(port: int, target: str,
                  timeout: float = 1.0) -> tuple[int, dict]:
    """One synchronous GET against a worker's control port (the
    parent's ready probe — the parent has no event loop)."""
    with socket.create_connection(("127.0.0.1", port),
                                  timeout=timeout) as sock:
        sock.settimeout(timeout)
        sock.sendall((f"GET {target} HTTP/1.1\r\nHost: control\r\n"
                      f"Content-Length: 0\r\n"
                      f"Connection: close\r\n\r\n").encode("latin-1"))
        data = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            data += chunk
    head, _, body = data.partition(b"\r\n\r\n")
    status = int(head.split(b"\r\n", 1)[0].split()[1])
    return status, (json.loads(body) if body else {})


def _worker_main(factory, config: FrontendConfig, index: int,
                 public_sock, control_sock, control_ports,
                 crash_armed: bool) -> None:
    """Forked worker entry point: fresh loop, SIGTERM = drain."""
    if crash_armed:
        arm_from_env()
    else:
        # A respawned worker must not re-fire the crashpoint that
        # killed its predecessor (inherited via fork + environment).
        disarm()
    try:
        asyncio.run(_worker_async_main(
            factory, config, index, public_sock, control_sock,
            control_ports))
    except KeyboardInterrupt:   # pragma: no cover - interactive
        pass


async def _worker_async_main(factory, config: FrontendConfig,
                             index: int, public_sock, control_sock,
                             control_ports) -> None:
    gateway = WorkerGateway(
        factory(), config.gateway, index=index,
        num_workers=config.workers, control_ports=control_ports)
    closing = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        with contextlib.suppress(NotImplementedError, RuntimeError):
            loop.add_signal_handler(signum, closing.set)
    await gateway.start_worker(public_sock, control_sock)
    try:
        await closing.wait()
    finally:
        await gateway.stop_worker()


class GatewaySupervisor:
    """Pre-fork parent: binds the sockets, forks the workers, respawns
    the dead, and rolls a graceful drain on stop.

    Usage::

        supervisor = GatewaySupervisor(factory, FrontendConfig(...))
        supervisor.start()          # returns once every worker is up
        ...                         # clients hit supervisor.address
        supervisor.stop()           # rolling drain, coordinator last

    *factory* is a zero-argument callable building the federation; it
    runs once in the parent (validation) and once per worker.  Only
    the coordinator's instance ever advances.
    """

    def __init__(self, factory,
                 config: "FrontendConfig | None" = None) -> None:
        self.factory = factory
        self.config = config or FrontendConfig()
        self.host = self.config.gateway.host
        self.port: "int | None" = None
        self.control_ports: list[int] = []
        self.reuseport = False
        self.respawns: Counter = Counter()
        self._public: list = []
        self._controls: list = []
        self._procs: dict = {}
        self._monitor: "threading.Thread | None" = None
        self._stop_event = threading.Event()
        self._started = False

    @property
    def address(self) -> tuple[str, int]:
        require(self.port is not None,
                "the supervisor is not started")
        return (self.host, self.port)

    def start(self) -> "GatewaySupervisor":
        require(not self._started, "the supervisor is already started")
        self._validate_factory()
        self._bind_sockets()
        self._started = True
        # Coordinator first: it recovers the shared WAL and must be
        # answering /internal/consumed before any other worker boots.
        self._spawn(COORDINATOR)
        self._await_ready(COORDINATOR)
        for index in range(1, self.config.workers):
            self._spawn(index)
        for index in range(1, self.config.workers):
            self._await_ready(index)
        self._monitor = threading.Thread(
            target=self._monitor_loop,
            name="gateway-supervisor-monitor", daemon=True)
        self._monitor.start()
        return self

    def _validate_factory(self) -> None:
        """Fail multi-worker misconfiguration in the parent, where the
        error is visible, not in a forked child's stderr."""
        backend = make_backend(self.factory())
        if not isinstance(backend, HostBackend):
            raise ValidationError(
                "the multi-process front-end serves a federation "
                "host backend only; simulation drivers and "
                "subscriptions are single-process")
        cluster = getattr(backend.host, "cluster", None)
        if cluster is None:
            raise ValidationError(
                "the multi-process front-end needs a federated "
                "(multi-shard) admission service")
        ShardAffinityMap.for_cluster(cluster, self.config.workers)

    def _public_socket(self) -> socket.socket:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        return sock

    def _bind_sockets(self) -> None:
        workers = self.config.workers
        first = self._public_socket()
        self.reuseport = (workers > 1
                          and hasattr(socket, "SO_REUSEPORT"))
        if self.reuseport:
            try:
                first.setsockopt(socket.SOL_SOCKET,
                                 socket.SO_REUSEPORT, 1)
            except OSError:
                self.reuseport = False
        first.bind((self.host, self.config.gateway.port))
        self.port = first.getsockname()[1]
        publics = [first]
        if self.reuseport:
            try:
                for _ in range(1, workers):
                    sock = self._public_socket()
                    sock.setsockopt(socket.SOL_SOCKET,
                                    socket.SO_REUSEPORT, 1)
                    sock.bind((self.host, self.port))
                    publics.append(sock)
            except OSError:
                for sock in publics[1:]:
                    sock.close()
                publics = [first]
                self.reuseport = False
        if not self.reuseport:
            # Fd-inheritance fallback: every worker accepts on the
            # one shared listening socket (classic pre-fork).
            publics = [first] * workers
        self._public = publics
        self._controls = []
        self.control_ports = []
        for _ in range(workers):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET,
                            socket.SO_REUSEADDR, 1)
            sock.bind(("127.0.0.1", 0))
            self._controls.append(sock)
            self.control_ports.append(sock.getsockname()[1])

    def _spawn(self, index: int) -> None:
        context = multiprocessing.get_context("fork")
        process = context.Process(
            target=_worker_main,
            args=(self.factory, self.config, index,
                  self._public[index], self._controls[index],
                  list(self.control_ports),
                  self.respawns[index] == 0),
            name=f"gateway-worker-{index}")
        process.start()
        self._procs[index] = process

    def _await_ready(self, index: int) -> None:
        deadline = time.monotonic() + self.config.ready_timeout
        while time.monotonic() < deadline:
            process = self._procs.get(index)
            if process is not None and not process.is_alive():
                raise ValidationError(
                    f"gateway worker {index} exited with code "
                    f"{process.exitcode} during startup")
            try:
                status, document = _control_call(
                    self.control_ports[index], "/internal/ready")
            except (OSError, ValueError):
                time.sleep(0.02)
                continue
            if status == 200 and document.get("ready"):
                return
            time.sleep(0.02)
        raise ValidationError(
            f"gateway worker {index} did not become ready within "
            f"{self.config.ready_timeout:g}s")

    def _monitor_loop(self) -> None:
        while not self._stop_event.wait(self.config.monitor_interval):
            for index in sorted(self._procs):
                if self._stop_event.is_set():
                    return
                process = self._procs[index]
                if process.is_alive():
                    continue
                process.join()
                if not self.config.respawn:
                    continue
                self.respawns[index] += 1
                self._spawn(index)
                with contextlib.suppress(ValidationError):
                    self._await_ready(index)

    def kill_worker(self, index: int,
                    sig: int = signal.SIGKILL) -> int:
        """Fault injection hook: deliver *sig* to worker *index*;
        returns the pid it was sent to."""
        process = self._procs[index]
        os.kill(process.pid, sig)
        return process.pid

    def worker_pid(self, index: int) -> int:
        return self._procs[index].pid

    def stop(self) -> None:
        """Rolling graceful drain: forwarders first (each hands its
        unsettled buffer to the coordinator), the coordinator last
        (one final settle), then the sockets close."""
        if not self._started:
            return
        self._stop_event.set()
        if self._monitor is not None:
            self._monitor.join(timeout=self.config.term_timeout)
            self._monitor = None
        for index in range(self.config.workers - 1, -1, -1):
            process = self._procs.get(index)
            if process is None:
                continue
            if process.is_alive():
                with contextlib.suppress(ProcessLookupError):
                    os.kill(process.pid, signal.SIGTERM)
                process.join(timeout=self.config.term_timeout)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=2.0)
        self._procs.clear()
        seen = set()
        for sock in self._public + self._controls:
            if id(sock) in seen:
                continue
            seen.add(id(sock))
            sock.close()
        self._public = []
        self._controls = []
        self._started = False

    def __enter__(self) -> "GatewaySupervisor":
        return self.start()

    def __exit__(self, *_exc: object) -> None:
        self.stop()
