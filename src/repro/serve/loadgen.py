"""A seeded load generator for the admission gateway.

Replays any arrival spec the simulator understands —
``"poisson:rate=5,seed=7"``, ``"burst:size=20,every=10"``,
``"trace:path=run.trace.json"`` — over *real sockets* against a
running :class:`~repro.serve.gateway.AdmissionGateway`.  The arrival
sequence is materialized up front from the seeded process, so two runs
with the same spec submit exactly the same queries in the same order
(with ``concurrency=1``, the same order *on the wire* too).

Backpressure is honoured, not fought: a ``429`` sleeps for the
server's ``Retry-After`` and retries; a ``503`` backs off briefly.
Retries and final statuses are tallied in the returned
:class:`LoadgenResult`, whose latency percentiles come from the same
:func:`~repro.sim.metrics.percentile_dict` helper the gateway's
``/metrics`` uses.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import time
from collections import Counter
from dataclasses import dataclass, field

from repro.cluster.affinity import affinity_key
from repro.io import ServeRequest, serve_request_to_dict
from repro.serve import http
from repro.serve.http import HttpError
from repro.sim.arrivals import Arrival, resolve_arrivals
from repro.utils.validation import ValidationError, require


class GatewayClient:
    """One keep-alive HTTP connection to the gateway.

    Reconnects and resends once if an *established* keep-alive
    connection (one that has completed a round trip) proves stale.  A
    connection that dies on its very first exchange gets no resend —
    the server may have executed the request before the connection
    failed, and resending would duplicate a non-idempotent mutation
    (a tick would settle twice).  Protocol-level failures raise
    :class:`~repro.serve.http.HttpError`.
    """

    def __init__(self, host: str, port: int,
                 client_id: str = "client") -> None:
        self.host = host
        self.port = int(port)
        self.client_id = client_id
        self._reader: "asyncio.StreamReader | None" = None
        self._writer: "asyncio.StreamWriter | None" = None
        #: True once this connection has completed a round trip.
        self._seasoned = False
        #: Headers of the most recent response (e.g. ``retry-after``).
        self.last_headers: dict[str, str] = {}

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)
        self._seasoned = False

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "GatewayClient":
        await self.connect()
        return self

    async def __aexit__(self, *_exc: object) -> None:
        await self.close()

    async def request(
        self, method: str, target: str,
        document: "object | None" = None,
        headers: "dict[str, str] | None" = None,
    ) -> tuple[int, dict]:
        """One request/response round trip; returns (status, body)."""
        body = b"" if document is None else http.json_body(document)
        merged = {"x-client-id": self.client_id, **(headers or {})}
        payload = http.render_request(
            method, target, body,
            host=f"{self.host}:{self.port}",
            headers=merged)
        for attempt in (1, 2):
            if self._writer is None:
                await self.connect()
            try:
                self._writer.write(payload)
                await self._writer.drain()
                response = await http.read_response(self._reader)
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.IncompleteReadError):
                response = None
            if response is not None:
                self.last_headers = response.headers
                self._seasoned = True
                return response.status, response.json()
            # Resend only over a connection that had already proven
            # itself: an established keep-alive the server closed
            # while idle.  A first-exchange failure may mean the
            # request executed before the server died — resending
            # would duplicate it.
            seasoned = getattr(self, "_seasoned", False)
            await self.close()
            if attempt == 2 or not seasoned:
                raise HttpError(
                    503, f"gateway at {self.host}:{self.port} closed "
                         f"the connection")

    # -- typed helpers -------------------------------------------------

    async def submit(self, query,
                     category: "str | None" = None) -> tuple[int, dict]:
        op = "subscribe" if category is not None else "submit"
        document = serve_request_to_dict(ServeRequest(
            op=op, query=query, category=category))
        # The affinity hint lets a multi-process front-end route this
        # request to its owning worker without decoding the body; a
        # single-process gateway simply ignores the header.
        return await self.request(
            "POST", f"/v1/{op}", document,
            headers={"x-affinity-key": affinity_key(query)})

    async def withdraw(self, query_id: str) -> tuple[int, dict]:
        document = serve_request_to_dict(ServeRequest(
            op="withdraw", query_id=query_id))
        return await self.request("POST", "/v1/withdraw", document)

    async def tick(self) -> tuple[int, dict]:
        return await self.request("POST", "/v1/tick")

    async def report(self) -> tuple[int, dict]:
        return await self.request("GET", "/v1/report")

    async def health(self) -> tuple[int, dict]:
        return await self.request("GET", "/healthz")

    async def metrics(self) -> tuple[int, dict]:
        return await self.request("GET", "/metrics")


@dataclass
class LoadgenResult:
    """What a load run measured."""

    arrivals: str
    requests: int
    completed: int
    errors: int
    retries: int
    ticks: int
    elapsed_s: float
    requests_per_s: float
    latency_ms: dict[str, float]
    #: final HTTP status → count.
    statuses: dict[str, int] = field(default_factory=dict)
    #: query ids in completion order (submission order at
    #: ``concurrency=1``).
    query_ids: list[str] = field(default_factory=list)
    #: raw per-request latency samples in seconds — what
    #: ``latency_ms`` summarizes, kept so a multi-process fan-out can
    #: merge percentiles over every worker's samples at once.
    latency_s: list[float] = field(default_factory=list, repr=False)

    def to_dict(self) -> dict:
        return {
            "arrivals": self.arrivals,
            "requests": self.requests,
            "completed": self.completed,
            "errors": self.errors,
            "retries": self.retries,
            "ticks": self.ticks,
            "elapsed_s": round(self.elapsed_s, 6),
            "requests_per_s": round(self.requests_per_s, 3),
            "latency_ms": self.latency_ms,
            "statuses": dict(self.statuses),
        }


def materialize(arrivals: object, requests: int) -> list[Arrival]:
    """The first *requests* arrivals of a (seeded) process, up front."""
    process = resolve_arrivals(arrivals)
    out: list[Arrival] = []
    while len(out) < int(requests):
        arrival = process.next_arrival()
        if arrival is None:
            break
        out.append(arrival)
    if not out:
        raise ValidationError(
            f"arrival process {arrivals!r} produced no arrivals")
    return out


async def run_load(
    host: str,
    port: int,
    *,
    arrivals: object = "poisson:rate=5",
    requests: int = 100,
    concurrency: int = 4,
    tick_every: "int | None" = None,
    max_attempts: int = 5,
    client_prefix: str = "client",
    processes: int = 1,
) -> LoadgenResult:
    """Drive *requests* seeded submissions at the gateway.

    ``concurrency`` workers share one pre-materialized arrival list;
    each worker owns a keep-alive connection and a distinct
    ``x-client-id`` (so per-client rate limits behave as in
    production).  ``tick_every`` runs a period settle after every that
    many completed submissions — the open-loop analogue of the
    simulator's period boundary.

    ``processes`` forks that many generator processes, each driving a
    contiguous slice of the same pre-materialized arrival list with
    its own client-id namespace (``p0-…``, ``p1-…``) — one Python
    process cannot saturate a multi-worker front-end through one GIL.
    The merged result recomputes the latency percentiles over *every*
    process's raw samples and measures throughput against the slowest
    process's wall clock.
    """
    require(int(requests) >= 1, "requests must be >= 1")
    require(int(concurrency) >= 1, "concurrency must be >= 1")
    require(int(max_attempts) >= 1, "max_attempts must be >= 1")
    require(int(processes) >= 1, "processes must be >= 1")
    spec_label = str(arrivals)
    work = materialize(arrivals, requests)
    if int(processes) > 1:
        return await _run_load_fanout(
            host, port, spec_label, work,
            processes=int(processes), concurrency=concurrency,
            tick_every=tick_every, max_attempts=max_attempts,
            client_prefix=client_prefix)
    return await _drive_load(
        host, port, spec_label, work, concurrency=concurrency,
        tick_every=tick_every, max_attempts=max_attempts,
        client_prefix=client_prefix)


async def _drive_load(
    host: str,
    port: int,
    spec_label: str,
    work: "list[Arrival]",
    *,
    concurrency: int,
    tick_every: "int | None",
    max_attempts: int,
    client_prefix: str,
) -> LoadgenResult:
    queue: asyncio.Queue = asyncio.Queue()
    for arrival in work:
        queue.put_nowait(arrival)

    statuses: Counter = Counter()
    latencies: list[float] = []
    query_ids: list[str] = []
    counts = {"retries": 0, "ticks": 0, "done": 0}

    async def drive(arrival: Arrival, client: GatewayClient) -> None:
        started = time.monotonic()
        status, _document = await client.submit(
            arrival.query, category=arrival.category)
        attempts = 1
        while status in (429, 503) and attempts < int(max_attempts):
            # Honour the server's Retry-After (with a small growing
            # backoff as the floor when the header is absent).
            counts["retries"] += 1
            backoff = 0.01 * attempts
            advised = client.last_headers.get("retry-after")
            if advised is not None:
                try:
                    backoff = max(backoff, float(advised))
                except ValueError:
                    pass
            await asyncio.sleep(backoff)
            status, _document = await client.submit(
                arrival.query, category=arrival.category)
            attempts += 1
        latencies.append(time.monotonic() - started)
        statuses[str(status)] += 1
        counts["done"] += 1
        if status == 200:
            query_ids.append(arrival.query.query_id)
        if tick_every and counts["done"] % int(tick_every) == 0:
            counts["ticks"] += 1
            await client.tick()

    async def worker(index: int) -> None:
        client = GatewayClient(
            host, port, client_id=f"{client_prefix}{index}")
        try:
            while True:
                try:
                    arrival = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                try:
                    await drive(arrival, client)
                except HttpError as exc:
                    statuses[f"conn:{exc.status}"] += 1
        finally:
            await client.close()

    started = time.monotonic()
    await asyncio.gather(*(worker(index)
                           for index in range(int(concurrency))))
    elapsed = max(time.monotonic() - started, 1e-9)

    from repro.sim.metrics import percentile_dict

    completed = sum(count for status, count in statuses.items()
                    if status == "200")
    errors = sum(statuses.values()) - completed
    return LoadgenResult(
        arrivals=spec_label,
        requests=len(work),
        completed=completed,
        errors=errors,
        retries=counts["retries"],
        ticks=counts["ticks"],
        elapsed_s=elapsed,
        requests_per_s=len(work) / elapsed,
        latency_ms=percentile_dict(
            [seconds * 1000.0 for seconds in latencies]),
        statuses=dict(statuses),
        query_ids=query_ids,
        latency_s=latencies,
    )


def _loadgen_child(conn, host, port, spec_label, work, concurrency,
                   tick_every, max_attempts, client_prefix) -> None:
    """Forked generator process: drive one slice, pipe the raw
    numbers back (a fresh event loop — the parent's is not ours)."""
    try:
        result = asyncio.run(_drive_load(
            host, port, spec_label, work, concurrency=concurrency,
            tick_every=tick_every, max_attempts=max_attempts,
            client_prefix=client_prefix))
        conn.send({
            "ok": True,
            "statuses": result.statuses,
            "latency_s": result.latency_s,
            "retries": result.retries,
            "ticks": result.ticks,
            "elapsed_s": result.elapsed_s,
            "query_ids": result.query_ids,
        })
    except Exception as exc:  # noqa: BLE001 - reported to the parent
        conn.send({"ok": False,
                   "error": f"{type(exc).__name__}: {exc}"})
    finally:
        conn.close()


async def _run_load_fanout(
    host: str,
    port: int,
    spec_label: str,
    work: "list[Arrival]",
    *,
    processes: int,
    concurrency: int,
    tick_every: "int | None",
    max_attempts: int,
    client_prefix: str,
) -> LoadgenResult:
    context = multiprocessing.get_context("fork")
    children = []
    base, extra = divmod(len(work), processes)
    offset = 0
    for index in range(processes):
        count = base + (1 if index < extra else 0)
        if count == 0:
            continue
        parent_conn, child_conn = context.Pipe(duplex=False)
        process = context.Process(
            target=_loadgen_child,
            args=(child_conn, host, port, spec_label,
                  work[offset:offset + count], concurrency,
                  tick_every, max_attempts,
                  f"p{index}-{client_prefix}"),
            name=f"loadgen-{index}")
        process.start()
        child_conn.close()
        children.append((process, parent_conn))
        offset += count

    loop = asyncio.get_running_loop()

    def collect() -> list[dict]:
        payloads = []
        for process, conn in children:
            try:
                payloads.append(conn.recv())
            except EOFError:
                payloads.append({
                    "ok": False,
                    "error": f"loadgen process {process.name} died "
                             f"(exit {process.exitcode})"})
            finally:
                conn.close()
            process.join()
        return payloads

    payloads = await loop.run_in_executor(None, collect)
    failures = [p["error"] for p in payloads if not p.get("ok")]
    if failures:
        raise ValidationError(
            "loadgen fan-out failed: " + "; ".join(failures))

    from repro.sim.metrics import percentile_dict

    statuses: Counter = Counter()
    latencies: list[float] = []
    query_ids: list[str] = []
    retries = ticks = 0
    elapsed = 1e-9
    for payload in payloads:
        statuses.update(payload["statuses"])
        latencies.extend(payload["latency_s"])
        query_ids.extend(payload["query_ids"])
        retries += payload["retries"]
        ticks += payload["ticks"]
        elapsed = max(elapsed, payload["elapsed_s"])
    completed = statuses.get("200", 0)
    return LoadgenResult(
        arrivals=spec_label,
        requests=len(work),
        completed=completed,
        errors=sum(statuses.values()) - completed,
        retries=retries,
        ticks=ticks,
        elapsed_s=elapsed,
        requests_per_s=len(work) / elapsed,
        latency_ms=percentile_dict(
            [seconds * 1000.0 for seconds in latencies]),
        statuses=dict(statuses),
        query_ids=query_ids,
        latency_s=latencies,
    )
