"""repro.serve — the HTTP/JSON serving layer.

Puts an admission host on the network: a pure-asyncio gateway
(:class:`AdmissionGateway`) with per-client rate limiting, tiered
timeouts, a server-side retry budget, graceful draining shutdown, and
structured redacting logs — plus the pre-fork multi-process front-end
(:class:`GatewaySupervisor`: shard-affinity routing, striped WAL
group commit, worker respawn) and the seeded socket-level load
generator (:mod:`repro.serve.loadgen`) that exercises both.
"""

from repro.serve.backpressure import RetryBudget, TokenBucket
from repro.serve.frontend import (
    COORDINATOR,
    FrontendConfig,
    GatewaySupervisor,
    WorkerGateway,
    stripe_directory,
)
from repro.serve.gateway import (
    AdmissionGateway,
    DriverBackend,
    GatewayConfig,
    HostBackend,
    make_backend,
    report_document,
    serve_forever,
)
from repro.serve.http import HttpError, HttpRequest, HttpResponse
from repro.serve.loadgen import (
    GatewayClient,
    LoadgenResult,
    materialize,
    run_load,
)
from repro.serve.logs import REDACTED, StructuredLog, redact

__all__ = [
    "AdmissionGateway",
    "COORDINATOR",
    "DriverBackend",
    "FrontendConfig",
    "GatewayClient",
    "GatewayConfig",
    "GatewaySupervisor",
    "HostBackend",
    "WorkerGateway",
    "stripe_directory",
    "HttpError",
    "HttpRequest",
    "HttpResponse",
    "LoadgenResult",
    "REDACTED",
    "RetryBudget",
    "StructuredLog",
    "TokenBucket",
    "make_backend",
    "materialize",
    "redact",
    "report_document",
    "run_load",
    "serve_forever",
]
