"""Shard-affinity maps: client key → shard → front-end worker.

The multi-process gateway front-end (:mod:`repro.serve.frontend`)
routes every mutating request to the worker that *owns* the client's
shard, so per-shard submission order is decided by exactly one process
and no cross-process lock guards the hot path.  That only works if the
front-end can predict, without touching the federation, which shard
:class:`~repro.cluster.placement.ConsistentHashPlacement` will choose —
so :class:`ShardAffinityMap` reproduces the placement's ring walk
bit-for-bit from the same ``(seed, replicas, shard count)`` triple and
then partitions the shards contiguously across workers.

Determinism matters twice over: every worker computes the same map
independently (they only share fork-time configuration), and a
respawned worker must agree with the survivors about who owns what.
"""

from __future__ import annotations

import bisect

from repro.cluster.placement import ConsistentHashPlacement, _hash64
from repro.utils.validation import ValidationError, require


def affinity_key(query) -> str:
    """The routing key for *query*: its owner, or the query id.

    Mirrors :meth:`ConsistentHashPlacement.client_key` — the two must
    never diverge, or a front-end worker would buffer a submission the
    federation's placement routes to a shard someone else owns.
    """
    owner = getattr(query, "owner", None)
    return owner if owner is not None else query.query_id


class ShardAffinityMap:
    """A deterministic ``client key → shard → worker`` router.

    ``num_shards`` shards are split into ``num_workers`` contiguous
    groups (earlier groups take the remainder), and a client key walks
    the same seeded 64-bit hash ring
    :class:`~repro.cluster.placement.ConsistentHashPlacement` uses —
    :meth:`shard_of` is pinned equal to ``placement.choose`` by
    ``tests/serve/test_frontend.py``.
    """

    def __init__(self, num_shards: int, num_workers: int,
                 *, seed: int = 0, replicas: int = 64) -> None:
        require(int(num_shards) >= 1, "num_shards must be >= 1")
        require(int(num_workers) >= 1, "num_workers must be >= 1")
        self.num_shards = int(num_shards)
        self.num_workers = int(num_workers)
        self.seed = int(seed)
        self.replicas = int(replicas)
        placement = ConsistentHashPlacement(
            seed=self.seed, replicas=self.replicas)
        self._points, self._owners = placement._ring(self.num_shards)
        # Contiguous shard → worker partition: worker w owns
        # [starts[w], starts[w+1]).  Workers beyond the shard count own
        # nothing and act as pure forwarders.
        base, extra = divmod(self.num_shards, self.num_workers)
        starts = [0]
        for worker in range(self.num_workers):
            starts.append(starts[-1] + base + (1 if worker < extra else 0))
        self._starts = starts
        self._shard_worker = [
            bisect.bisect_right(starts, shard) - 1
            for shard in range(self.num_shards)]

    @classmethod
    def for_cluster(cls, cluster, num_workers: int) -> "ShardAffinityMap":
        """The map for a live federation (validates its placement)."""
        placement = cluster.placement
        if not isinstance(placement, ConsistentHashPlacement):
            raise ValidationError(
                f"shard-affinity routing needs consistent-hash "
                f"placement; this federation uses "
                f"{placement.name!r}")
        return cls(cluster.num_shards, num_workers,
                   seed=placement.seed, replicas=placement.replicas)

    def shard_of(self, key: str) -> int:
        """The shard the federation's placement will choose for *key*."""
        point = _hash64(f"client:{key}", self.seed)
        position = bisect.bisect_right(self._points, point) \
            % len(self._points)
        return self._owners[position]

    def worker_of_shard(self, shard: int) -> int:
        """The front-end worker owning *shard*."""
        if not 0 <= int(shard) < self.num_shards:
            raise ValidationError(
                f"shard {shard} out of range 0..{self.num_shards - 1}")
        return self._shard_worker[int(shard)]

    def worker_of(self, key: str) -> int:
        """The front-end worker owning *key*'s shard."""
        return self._shard_worker[self.shard_of(key)]

    def shards_of_worker(self, worker: int) -> range:
        """The contiguous shard range worker *worker* owns."""
        if not 0 <= int(worker) < self.num_workers:
            raise ValidationError(
                f"worker {worker} out of range "
                f"0..{self.num_workers - 1}")
        worker = int(worker)
        return range(self._starts[worker], self._starts[worker + 1])

    def worker_groups(self) -> "list[range]":
        """Every worker's shard range, in worker order."""
        return [self.shards_of_worker(worker)
                for worker in range(self.num_workers)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        groups = ",".join(
            f"{group.start}..{group.stop - 1}" if len(group) else "-"
            for group in self.worker_groups())
        return (f"<ShardAffinityMap shards={self.num_shards} "
                f"workers={self.num_workers} seed={self.seed} "
                f"groups=[{groups}]>")
