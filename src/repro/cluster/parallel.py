"""A persistent process pool for the batch auction path.

The federation's ``run_period_all`` historically dispatched shard
auctions across a :class:`~concurrent.futures.ThreadPoolExecutor` —
correct, but GIL-bound: the auction kernels are pure Python + numpy,
so threads serialize on the interpreter lock and the "parallel" path
buys little on CPU-heavy periods.  :class:`AuctionProcessPool` runs
the same mechanism groups on a *persistent* pool of worker processes
instead.

The contract that keeps ``process ≡ thread ≡ sequential`` byte-exact:

* **jobs are self-contained** — each job ships ``(mechanism,
  instances)`` to a worker, which runs
  :meth:`~repro.core.Mechanism.run_many` and returns the outcomes
  *plus the mechanism's evolved state*.  Workers keep nothing between
  jobs; the parent's mechanism objects remain the single source of
  truth.
* **state round-trips** — the parent re-applies the returned state to
  its own mechanism object (identity preserved, so shards sharing one
  mechanism keep sharing it), which advances per-mechanism RNG streams
  exactly as an in-process run would.  The next period continues the
  stream byte-identically.
* **numpy columns survive the hop** — an
  :class:`~repro.core.model.AuctionInstance` drops its cached
  ``_select_columns`` on pickling (caches are derived state); the pool
  ships those bid/load columns alongside and re-attaches them in the
  worker, so the columnar select fast path stays warm across the
  process boundary instead of being re-extracted per query.

Failure semantics match the thread path: the first group exception
(in deterministic group order) propagates to the caller's rollback;
groups that already completed have consumed their randomness, so a
retried period with randomized mechanisms is valid but not bit-equal
(documented on ``_run_cluster_period``; restore a checkpoint for
that).
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from collections.abc import Sequence

from repro.core.mechanism import Mechanism
from repro.core.model import AuctionInstance
from repro.core.result import AuctionOutcome
from repro.utils.validation import require


def _pack_instance(instance: AuctionInstance):
    """An instance plus its derived numpy columns, ready to ship.

    Pickling drops ``_select_columns`` (cache policy on the model);
    shipping the arrays explicitly keeps the worker on the columnar
    fast path.  numpy arrays pickle as raw binary buffers, so the
    transfer is one memcpy per column, not a per-query re-extraction.
    """
    return instance, getattr(instance, "_select_columns", None)


def _unpack_instance(packed) -> AuctionInstance:
    instance, columns = packed
    if columns is not None:
        object.__setattr__(instance, "_select_columns", columns)
    return instance


def _run_mechanism_group(mechanism: Mechanism, packed_instances):
    """Worker-side job: run one mechanism group, return evolved state.

    Runs in a pool worker.  The returned ``mechanism.__dict__`` carries
    everything the run mutated (RNG bit-generator state, counters);
    the parent splices it back into its own object.
    """
    instances = [_unpack_instance(packed) for packed in packed_instances]
    outcomes = mechanism.run_many(instances)
    return outcomes, mechanism.__dict__


class AuctionProcessPool:
    """A persistent, lazily started pool of auction worker processes.

    Created once per federation and reused every period, so the
    fork/spawn cost is paid once, not per boundary.  ``fork`` is
    preferred where available (workers inherit the imported modules);
    elsewhere the platform default start method is used and jobs are
    fully pickled either way.
    """

    def __init__(self, workers: int) -> None:
        require(int(workers) >= 1, "pool workers must be >= 1")
        self.workers = int(workers)
        self._executor: "ProcessPoolExecutor | None" = None

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            methods = multiprocessing.get_all_start_methods()
            context = (multiprocessing.get_context("fork")
                       if "fork" in methods else None)
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=context)
        return self._executor

    def run_groups(
        self,
        jobs: "Sequence[tuple[Mechanism, Sequence[AuctionInstance]]]",
    ) -> "list[list[AuctionOutcome]]":
        """Run every ``(mechanism, instances)`` group; outcomes in order.

        Groups execute concurrently across the workers; results (and
        the first exception, if any) surface in deterministic group
        order.  Each group's mechanism state is spliced back into the
        caller's object before its outcomes are returned, so the
        parent-side RNG streams advance exactly as a sequential run's
        would.
        """
        executor = self._ensure_executor()
        futures = [
            executor.submit(
                _run_mechanism_group, mechanism,
                [_pack_instance(instance) for instance in instances])
            for mechanism, instances in jobs
        ]
        grouped: "list[list[AuctionOutcome]]" = []
        for (mechanism, _instances), future in zip(jobs, futures):
            outcomes, evolved = future.result()
            mechanism.__dict__.clear()
            mechanism.__dict__.update(evolved)
            grouped.append(outcomes)
        return grouped

    def close(self) -> None:
        """Shut the worker processes down (the pool restarts on use)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __getstate__(self) -> dict:
        # Live worker processes are runtime machinery, never state: a
        # pickled/copied pool comes back cold and restarts on use.
        state = dict(self.__dict__)
        state["_executor"] = None
        return state

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = "live" if self._executor is not None else "cold"
        return (f"<AuctionProcessPool workers={self.workers} "
                f"{status}>")


def default_auction_workers() -> int:
    """The default pool width: one worker per CPU, capped at 32."""
    return min(32, os.cpu_count() or 1)
