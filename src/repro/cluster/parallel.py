"""A persistent process pool for the batch auction path.

The federation's ``run_period_all`` historically dispatched shard
auctions across a :class:`~concurrent.futures.ThreadPoolExecutor` —
correct, but GIL-bound: the auction kernels are pure Python + numpy,
so threads serialize on the interpreter lock and the "parallel" path
buys little on CPU-heavy periods.  :class:`AuctionProcessPool` runs
the same mechanism groups on a *persistent* pool of worker processes
instead.

The contract that keeps ``process ≡ thread ≡ sequential`` byte-exact:

* **jobs are self-contained** — each job ships ``(mechanism,
  instances)`` to a worker, which runs
  :meth:`~repro.core.Mechanism.run_many` and returns the outcomes
  *plus the mechanism's evolved state*.  Workers keep nothing between
  jobs; the parent's mechanism objects remain the single source of
  truth.
* **state round-trips** — the parent re-applies the returned state to
  its own mechanism object (identity preserved, so shards sharing one
  mechanism keep sharing it), which advances per-mechanism RNG streams
  exactly as an in-process run would.  The next period continues the
  stream byte-identically.
* **numpy columns survive the hop** — an
  :class:`~repro.core.model.AuctionInstance` drops its cached
  ``_select_columns`` on pickling (caches are derived state); the pool
  ships those bid/load columns alongside and re-attaches them in the
  worker, so the columnar select fast path stays warm across the
  process boundary instead of being re-extracted per query.

Failure semantics match the thread path: the first group exception
(in deterministic group order) propagates to the caller's rollback;
groups that already completed have consumed their randomness, so a
retried period with randomized mechanisms is valid but not bit-equal
(documented on ``_run_cluster_period``; restore a checkpoint for
that).
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from collections.abc import Sequence

import numpy as np

from repro.core.mechanism import Mechanism
from repro.core.model import AuctionInstance
from repro.core.result import AuctionOutcome
from repro.utils.validation import ValidationError, require

try:
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - always present on CPython 3.8+
    _shared_memory = None


def _pack_instance(instance: AuctionInstance):
    """An instance plus its derived numpy columns, ready to ship.

    Pickling drops ``_select_columns`` (cache policy on the model);
    shipping the arrays explicitly keeps the worker on the columnar
    fast path.  numpy arrays pickle as raw binary buffers, so the
    transfer is one memcpy per column, not a per-query re-extraction.
    """
    return instance, getattr(instance, "_select_columns", None)


def _unpack_instance(packed) -> AuctionInstance:
    instance, columns = packed
    if columns is not None:
        object.__setattr__(instance, "_select_columns", columns)
    return instance


def _run_mechanism_group(mechanism: Mechanism, packed_instances):
    """Worker-side job: run one mechanism group, return evolved state.

    Runs in a pool worker.  The returned ``mechanism.__dict__`` carries
    everything the run mutated (RNG bit-generator state, counters);
    the parent splices it back into its own object.
    """
    instances = [_unpack_instance(packed) for packed in packed_instances]
    outcomes = mechanism.run_many(instances)
    return outcomes, mechanism.__dict__


def _extract_select_columns(instance: AuctionInstance):
    """Single-select columns of *instance*, extracted once and cached.

    The shared-memory transport needs flat numeric columns to pack;
    instances built by the service coordinator don't carry them yet.
    This mirrors the columnar fast path's extraction exactly — same
    values, same dtypes — so a worker handed these columns computes
    bitwise what it would have extracted itself.  Returns ``None``
    for shapes the columnar select can't use anyway (shared or
    multi-operator queries); those instances ship pickled as-is.
    """
    columns = getattr(instance, "_select_columns", None)
    if columns is not None:
        return columns
    if instance.max_sharing_degree() > 1:
        return None
    queries = instance.queries
    operators = instance.operators
    n = len(queries)
    if n == 0:
        return None
    ids = []
    bids = np.empty(n, dtype=np.float64)
    loads = np.empty(n, dtype=np.float64)
    for i, query in enumerate(queries):
        op_ids = query.operator_ids
        if len(op_ids) != 1:
            return None
        ids.append(query.query_id)
        bids[i] = query.bid
        loads[i] = operators[op_ids[0]].load
    columns = (ids, bids, loads)
    object.__setattr__(instance, "_select_columns", columns)
    return columns


def _attach_segment(name: str):
    """Attach a shared-memory segment without registering ownership.

    Before Python 3.13 (``track=False``), merely *attaching* registers
    the segment with the worker's resource tracker, which then tries
    to unlink it again at process exit — after the parent already has
    — and spams stderr.  Unregistering right after the attach keeps
    the parent the sole owner.
    """
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        # No ``track`` parameter before 3.13.  Silencing ``register``
        # for the duration of the attach (rather than unregistering
        # afterwards) matters when several workers share one tracker
        # process (fork): registers dedupe in the tracker's cache, so
        # a second worker's unregister would miss and spam stderr.
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return _shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _run_mechanism_group_shm(mechanism: Mechanism, instances, layout,
                             segment_name: str):
    """Worker-side job for the shared-memory column transport.

    *layout* holds, per instance, either ``None`` (no columns shipped)
    or ``(ids, offset, count)``: the query ids plus where in the
    segment that instance's bid and load float64 blocks start.  The
    worker copies the blocks out (so the parent may unlink the segment
    the moment every job is done) and re-attaches them as the
    instance's ``_select_columns``, identical to the pickled transport.
    """
    segment = _attach_segment(segment_name)
    try:
        for instance, packed in zip(instances, layout):
            if packed is None:
                continue
            ids, offset, count = packed
            bids = np.frombuffer(segment.buf, dtype=np.float64,
                                 count=count, offset=offset).copy()
            loads = np.frombuffer(
                segment.buf, dtype=np.float64, count=count,
                offset=offset + bids.nbytes).copy()
            object.__setattr__(instance, "_select_columns",
                               (ids, bids, loads))
    finally:
        segment.close()
    outcomes = mechanism.run_many(instances)
    return outcomes, mechanism.__dict__


class AuctionProcessPool:
    """A persistent, lazily started pool of auction worker processes.

    Created once per federation and reused every period, so the
    fork/spawn cost is paid once, not per boundary.  ``fork`` is
    preferred where available (workers inherit the imported modules);
    elsewhere the platform default start method is used and jobs are
    fully pickled either way.
    """

    def __init__(self, workers: int, columns: str = "pickle") -> None:
        require(int(workers) >= 1, "pool workers must be >= 1")
        if columns not in ("pickle", "shm"):
            raise ValidationError(
                f"pool column transport must be 'pickle' or 'shm', "
                f"got {columns!r}")
        self.workers = int(workers)
        #: How each job's numeric select columns travel to the worker:
        #: ``"pickle"`` serializes them through the executor pipe with
        #: the rest of the job, ``"shm"`` packs every instance's bid
        #: and load arrays into one shared-memory segment per
        #: ``run_groups`` call (one memcpy in, one out) and pickles
        #: only the ids.  Results are identical; jobs with no columns
        #: to ship fall back to the pickled transport per call.
        self.columns = columns
        #: Transport counters: shared-memory segments created, bytes
        #: packed into them, and calls that went out pickled.
        self.stats = {"shm_segments": 0, "shm_bytes": 0,
                      "pickled_calls": 0}
        self._executor: "ProcessPoolExecutor | None" = None

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            methods = multiprocessing.get_all_start_methods()
            context = (multiprocessing.get_context("fork")
                       if "fork" in methods else None)
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=context)
        return self._executor

    def run_groups(
        self,
        jobs: "Sequence[tuple[Mechanism, Sequence[AuctionInstance]]]",
    ) -> "list[list[AuctionOutcome]]":
        """Run every ``(mechanism, instances)`` group; outcomes in order.

        Groups execute concurrently across the workers; results (and
        the first exception, if any) surface in deterministic group
        order.  Each group's mechanism state is spliced back into the
        caller's object before its outcomes are returned, so the
        parent-side RNG streams advance exactly as a sequential run's
        would.
        """
        executor = self._ensure_executor()
        futures = segment = None
        if self.columns == "shm" and _shared_memory is not None:
            packed = self._pack_shm(jobs)
            if packed is not None:
                segment, layouts = packed
                futures = [
                    executor.submit(
                        _run_mechanism_group_shm, mechanism,
                        list(instances), layout, segment.name)
                    for (mechanism, instances), layout
                    in zip(jobs, layouts)
                ]
        if futures is None:
            self.stats["pickled_calls"] += 1
            futures = [
                executor.submit(
                    _run_mechanism_group, mechanism,
                    [_pack_instance(instance) for instance in instances])
                for mechanism, instances in jobs
            ]
        try:
            grouped: "list[list[AuctionOutcome]]" = []
            for (mechanism, _instances), future in zip(jobs, futures):
                outcomes, evolved = future.result()
                mechanism.__dict__.clear()
                mechanism.__dict__.update(evolved)
                grouped.append(outcomes)
        finally:
            if segment is not None:
                # Every worker copied its blocks out before its future
                # resolved, so the segment can go the moment all jobs
                # are settled (or the first one failed).
                segment.close()
                segment.unlink()
        return grouped

    def _pack_shm(self, jobs):
        """Pack every job's numeric columns into one shm segment.

        Returns ``(segment, layouts)`` — ``layouts[j][i]`` is ``None``
        or ``(ids, offset, count)`` for job *j*'s instance *i* — or
        ``None`` when there is nothing worth a segment (no instance
        carries columns) or the segment cannot be created, in which
        case the caller falls back to the pickled transport.
        """
        layouts = []
        blocks: "list[np.ndarray]" = []
        offsets: "list[int]" = []
        total = 0
        for _mechanism, instances in jobs:
            layout = []
            for instance in instances:
                columns = _extract_select_columns(instance)
                if columns is None:
                    layout.append(None)
                    continue
                ids, bids, loads = columns
                bids = np.ascontiguousarray(bids, dtype=np.float64)
                loads = np.ascontiguousarray(loads, dtype=np.float64)
                layout.append((list(ids), total, len(bids)))
                blocks.extend((bids, loads))
                offsets.extend((total, total + bids.nbytes))
                total += bids.nbytes + loads.nbytes
            layouts.append(layout)
        if total == 0:
            return None
        try:
            segment = _shared_memory.SharedMemory(create=True,
                                                  size=total)
        except (OSError, ValueError):  # pragma: no cover - shm full
            return None
        for block, offset in zip(blocks, offsets):
            target = np.frombuffer(segment.buf, dtype=np.float64,
                                   count=len(block), offset=offset)
            target[:] = block
        del target
        self.stats["shm_segments"] += 1
        self.stats["shm_bytes"] += total
        return segment, layouts

    def close(self) -> None:
        """Shut the worker processes down (the pool restarts on use)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __getstate__(self) -> dict:
        # Live worker processes are runtime machinery, never state: a
        # pickled/copied pool comes back cold and restarts on use.
        state = dict(self.__dict__)
        state["_executor"] = None
        return state

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = "live" if self._executor is not None else "cold"
        return (f"<AuctionProcessPool workers={self.workers} "
                f"{status}>")


def default_auction_workers() -> int:
    """The default pool width: one worker per CPU, capped at 32."""
    return min(32, os.cpu_count() or 1)
