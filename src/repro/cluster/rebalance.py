"""Cross-shard rebalancing: second-chance placement of rejected load.

After all shard auctions of a period settle, some shards rejected
queries for lack of capacity while others have headroom to spare.  The
:class:`Rebalancer` migrates rejected queries onto shards whose
admitted set leaves spare capacity, using each target shard's existing
:class:`~repro.service.TransitionManager` so the move goes through the
paper's transition phase (tuples held, subnetworks drained) — not a
side door into the engine.

Migration economics: a migrated query pays **nothing** for the
remainder of the period.  The spare capacity would otherwise idle, and
charging a rejected query its bid would break strategyproofness (bids
would buy migration priority).  From the next period on the query is a
running candidate on its new shard and competes in that shard's
auction like everyone else.  The invariant suite pins this down: a
migrated query is never billed twice — in fact never billed at all —
in the period it migrates.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.cluster.reports import Migration
from repro.dsms.plan import ContinuousQuery
from repro.service.service import AdmissionService, PeriodSettlement
from repro.utils.validation import require

#: Numeric slack when comparing loads against spare capacity.
_EPSILON = 1e-9


def _required_streams(query: ContinuousQuery) -> set[str]:
    """The source-stream names a query's operator graph reads."""
    op_ids = {op.op_id for op in query.operators}
    return {name for op in query.operators
            for name in op.inputs if name not in op_ids}


class Rebalancer:
    """Migrates auction-rejected queries to shards with spare capacity.

    Deterministic by construction: rejected queries are considered in
    (origin shard, query id) order, and each goes to the eligible
    shard with the most spare capacity (ties toward the lowest index).
    A query's load is its *standalone* demand — the union load of its
    operators in the origin auction — which over-counts sharing on the
    target and therefore never over-commits it.

    ``max_migrations`` caps moves per period (None = unbounded).
    """

    def __init__(self, max_migrations: "int | None" = None) -> None:
        if max_migrations is not None:
            require(int(max_migrations) >= 0,
                    "max_migrations must be >= 0")
            max_migrations = int(max_migrations)
        self.max_migrations = max_migrations

    def rebalance(
        self,
        shards: Sequence[AdmissionService],
        settlements: Mapping[int, PeriodSettlement],
    ) -> tuple[Migration, ...]:
        """Apply post-auction migrations; returns what moved where.

        *settlements* maps shard index → that shard's settled period
        (idle shards absent).  Target engines are transitioned
        immediately, so callers must rebalance *before* executing the
        period (:meth:`AdmissionService.execute_period`).
        """
        spare = {
            index: shard.capacity - (
                settlements[index].outcome.used_capacity
                if index in settlements else 0.0)
            for index, shard in enumerate(shards)
        }
        streams = {
            index: {source.name for source in shard.sources}
            for index, shard in enumerate(shards)
        }
        migrations: list[Migration] = []
        for origin in sorted(settlements):
            settlement = settlements[origin]
            instance = settlement.outcome.instance
            for query_id in settlement.rejected:
                if (self.max_migrations is not None
                        and len(migrations) >= self.max_migrations):
                    return tuple(migrations)
                query = settlement.candidates[query_id]
                load = instance.union_load([query_id])
                target = self._pick_target(
                    query, query_id, origin, shards, spare, streams, load)
                if target is None:
                    continue
                self._migrate(shards[target], query)
                spare[target] -= load
                migrations.append(Migration(
                    query_id=query_id, origin=origin, target=target,
                    load=load))
        return tuple(migrations)

    def _pick_target(
        self,
        query: ContinuousQuery,
        query_id: str,
        origin: int,
        shards: Sequence[AdmissionService],
        spare: Mapping[int, float],
        streams: Mapping[int, set],
        load: float,
    ) -> "int | None":
        """The eligible shard with the most spare capacity, if any."""
        needed = _required_streams(query)
        best, best_spare = None, None
        for index, shard in enumerate(shards):
            if index == origin:
                continue  # the origin's auction already refused it
            if spare[index] + _EPSILON < load:
                continue
            if not needed <= streams[index]:
                continue  # the target cannot feed the query's plan
            if (query_id in shard.engine.admitted_ids
                    or query_id in shard.pending_ids):
                continue
            if best is None or spare[index] > best_spare:
                best, best_spare = index, spare[index]
        return best

    @staticmethod
    def _migrate(target: AdmissionService, query: ContinuousQuery) -> None:
        """Admit *query* on *target* through its transition manager."""
        admitted = sorted(target.engine.admitted_ids | {query.query_id})
        target.transitions.apply(
            target.engine, admitted, {query.query_id: query})
