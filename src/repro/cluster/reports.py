"""Cluster-level business reports.

:class:`ClusterReport` is the federation counterpart of
:class:`~repro.service.PeriodReport`: one record per cluster period,
aggregating every shard's period report plus the cross-shard
migrations the rebalancer performed.  Like the shard report it has a
versioned JSON schema in :mod:`repro.io`
(:func:`repro.io.cluster_report_to_dict` /
:func:`repro.io.cluster_report_from_dict`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.service.reports import PeriodReport


@dataclass(frozen=True)
class Migration:
    """One rejected query re-placed onto a shard with spare capacity."""

    query_id: str
    origin: int
    target: int
    load: float


@dataclass(frozen=True)
class ClusterReport:
    """One cluster period's aggregated business summary.

    ``shard_reports`` holds exactly one :class:`PeriodReport` per shard
    (idle shards report under the mechanism name ``"idle"`` with an
    empty auction).  ``shard_capacities`` are the shards' *service*
    capacities — recorded separately because a ``pre_auction`` hook may
    auction under a different capacity than the engine executes with.
    ``rejected_load`` is the summed standalone demand of the queries
    that stayed rejected after rebalancing — the load the cluster
    turned away this period.
    """

    period: int
    shard_reports: tuple[PeriodReport, ...]
    shard_capacities: tuple[float, ...]
    migrations: tuple[Migration, ...]
    rejected_load: float

    def __post_init__(self) -> None:
        if len(self.shard_capacities) != len(self.shard_reports):
            raise ValueError(
                f"{len(self.shard_reports)} shard reports but "
                f"{len(self.shard_capacities)} shard capacities")

    @property
    def num_shards(self) -> int:
        """Number of shards that reported this period."""
        return len(self.shard_reports)

    @property
    def total_revenue(self) -> float:
        """Cluster profit: the sum of every shard's billed revenue."""
        return sum(report.revenue for report in self.shard_reports)

    @property
    def admitted(self) -> tuple[str, ...]:
        """All query ids admitted by any shard's auction, sorted."""
        return tuple(sorted(
            qid for report in self.shard_reports for qid in report.admitted))

    @property
    def migrated(self) -> tuple[str, ...]:
        """Query ids the rebalancer re-placed this period, sorted."""
        return tuple(sorted(m.query_id for m in self.migrations))

    @property
    def rejected(self) -> tuple[str, ...]:
        """Query ids that stayed rejected after rebalancing, sorted."""
        placed = set(self.migrated)
        return tuple(sorted(
            qid for report in self.shard_reports for qid in report.rejected
            if qid not in placed))

    @property
    def utilization(self) -> "float | None":
        """Capacity-weighted mean engine utilization across shards.

        Each shard's ``engine_utilization`` is normalized by its
        service capacity, so weighting by :attr:`shard_capacities`
        makes this exactly (total measured work) / (total cluster
        capacity) over the shards that executed.
        """
        weighted, capacity = 0.0, 0.0
        for report, shard_capacity in zip(self.shard_reports,
                                          self.shard_capacities):
            if report.engine_utilization is None:
                continue
            weighted += report.engine_utilization * shard_capacity
            capacity += shard_capacity
        return (weighted / capacity) if capacity else None
