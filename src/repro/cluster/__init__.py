"""Sharded multi-center federation over the admission service.

The scale-out layer: N independent
:class:`~repro.service.AdmissionService` shards behind one facade,
with pluggable submission routing, lockstep cluster periods (including
a batch auction path), cross-shard rebalancing of rejected load, and
whole-cluster checkpointing.

* :class:`FederatedAdmissionService` — the facade;
* :class:`PlacementPolicy` and its implementations
  (:class:`ConsistentHashPlacement`, :class:`LeastLoadedPlacement`,
  :class:`RoundRobinPlacement`) — submission routing, spec-string
  addressable via :func:`resolve_placement`;
* :class:`Rebalancer` — post-auction migration of rejected queries to
  shards with spare capacity;
* :class:`ClusterReport` / :class:`Migration` — the per-period
  aggregate record (versioned JSON schema in :mod:`repro.io`);
* :class:`ClusterSnapshot` — full checkpoint/restore of a federation;
* :class:`AuctionProcessPool` — the persistent multiprocessing pool
  behind ``auction_mode="process"`` (GIL-free batch auctions,
  byte-identical to the thread and sequential paths).

Quickstart::

    from repro.cluster import FederatedAdmissionService
    from repro.dsms import SyntheticStream

    cluster = FederatedAdmissionService.build(
        num_shards=4,
        sources=[SyntheticStream("s", rate=5, poisson=False)],
        capacity=30.0,
        mechanism="CAT",
        ticks_per_period=10,
        placement="consistent-hash:seed=7",
    )
    cluster.submit(my_query)              # routed by client id
    report = cluster.run_period_all()     # all shard auctions, batched
    print(report.total_revenue, report.migrated)
"""

from repro.cluster.affinity import ShardAffinityMap, affinity_key
from repro.cluster.federation import (
    CLUSTER_STATE_VERSION,
    ClusterSnapshot,
    FederatedAdmissionService,
)
from repro.cluster.parallel import AuctionProcessPool
from repro.cluster.placement import (
    ConsistentHashPlacement,
    LeastLoadedPlacement,
    PlacementPolicy,
    RoundRobinPlacement,
    ShardStatus,
    register_placement,
    registered_placements,
    resolve_placement,
)
from repro.cluster.rebalance import Rebalancer
from repro.cluster.reports import ClusterReport, Migration

__all__ = [
    "AuctionProcessPool",
    "CLUSTER_STATE_VERSION",
    "ClusterReport",
    "ClusterSnapshot",
    "ConsistentHashPlacement",
    "FederatedAdmissionService",
    "LeastLoadedPlacement",
    "Migration",
    "PlacementPolicy",
    "Rebalancer",
    "RoundRobinPlacement",
    "ShardAffinityMap",
    "ShardStatus",
    "affinity_key",
    "register_placement",
    "registered_placements",
    "resolve_placement",
]
