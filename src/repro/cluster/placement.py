"""Placement policies: routing submissions to federation shards.

A :class:`~repro.cluster.FederatedAdmissionService` asks its
:class:`PlacementPolicy` which shard should receive each submitted
query.  Policies see a lightweight :class:`ShardStatus` per shard (the
queue depth and admitted count, never engine internals) and return a
shard index.  Three implementations ship:

* :class:`ConsistentHashPlacement` — a seeded hash ring keyed on the
  *client* (query owner), so one client's queries co-locate and a
  shard-count change moves only ``1/N`` of the keyspace;
* :class:`LeastLoadedPlacement` — the shard with the fewest queries
  (pending + admitted), a classic join-shortest-queue router;
* :class:`RoundRobinPlacement` — a rotating cursor, the baseline.

Policies are addressable by *spec string* exactly like mechanisms
(``"consistent-hash:seed=7"``), via :func:`resolve_placement`, and
carry only plain picklable state so they ride inside cluster
checkpoints.
"""

from __future__ import annotations

import abc
import bisect
import hashlib
import inspect
from dataclasses import dataclass
from collections.abc import Callable, Mapping, Sequence

from repro.core.mechanism import MechanismSpec
from repro.dsms.plan import ContinuousQuery
from repro.utils.validation import ValidationError, require


@dataclass(frozen=True)
class ShardStatus:
    """What a placement policy may know about one shard."""

    index: int
    capacity: float
    pending_count: int
    admitted_count: int

    @property
    def query_count(self) -> int:
        """Queries the shard is responsible for right now."""
        return self.pending_count + self.admitted_count


class PlacementPolicy(abc.ABC):
    """Chooses the shard that receives a submitted query.

    Implementations must be deterministic functions of their own state
    and the arguments — the cluster invariant suite checks that two
    identically-seeded clusters place identical workloads identically.
    Any evolving state (e.g. a round-robin cursor) must live in plain
    picklable attributes so cluster checkpoints capture it.
    """

    #: Registry/spec name of the policy.
    name: str = "placement"

    @abc.abstractmethod
    def choose(
        self, query: ContinuousQuery, shards: Sequence[ShardStatus]
    ) -> int:
        """Return the index of the shard that should take *query*."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class RoundRobinPlacement(PlacementPolicy):
    """Rotate through the shards in index order.

    The baseline policy: ignores load and client identity, spreads
    submission *counts* perfectly evenly.  The cursor is part of the
    cluster checkpoint, so a resumed cluster keeps rotating from where
    it stopped.
    """

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def choose(
        self, query: ContinuousQuery, shards: Sequence[ShardStatus]
    ) -> int:
        index = self._cursor % len(shards)
        self._cursor += 1
        return shards[index].index


class LeastLoadedPlacement(PlacementPolicy):
    """Send the query to the shard holding the fewest queries.

    Load is proxied by queue depth — pending submissions plus admitted
    queries — which the router can observe without touching engine
    internals.  Ties break toward the lowest shard index, keeping the
    choice deterministic.
    """

    name = "least-loaded"

    def choose(
        self, query: ContinuousQuery, shards: Sequence[ShardStatus]
    ) -> int:
        best = min(shards, key=lambda s: (s.query_count, s.index))
        return best.index


def _hash64(text: str, seed: int) -> int:
    """Stable 64-bit hash (independent of ``PYTHONHASHSEED``)."""
    digest = hashlib.blake2b(
        f"{seed}:{text}".encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ConsistentHashPlacement(PlacementPolicy):
    """A seeded hash ring keyed on the client id.

    Each shard owns ``replicas`` pseudo-random points on a 64-bit ring;
    a query lands on the shard owning the first point clockwise of its
    client's hash (the query ``owner``, falling back to the query id).
    Consequences:

    * all of one client's queries land on the same shard (their plans
      can share operators there);
    * placement is a pure function of ``(seed, client, shard count)`` —
      no mutable state, identical across runs and after restore;
    * growing the cluster from N to N+1 shards remaps only ``1/(N+1)``
      of the clients.
    """

    name = "consistent-hash"

    def __init__(self, seed: int = 0, replicas: int = 64) -> None:
        require(int(replicas) > 0, "replicas must be positive")
        self.seed = int(seed)
        self.replicas = int(replicas)
        self._rings: dict[int, tuple[list[int], list[int]]] = {}

    def _ring(self, num_shards: int) -> tuple[list[int], list[int]]:
        ring = self._rings.get(num_shards)
        if ring is None:
            points = sorted(
                (_hash64(f"shard:{shard}:{replica}", self.seed), shard)
                for shard in range(num_shards)
                for replica in range(self.replicas)
            )
            ring = ([point for point, _ in points],
                    [shard for _, shard in points])
            self._rings[num_shards] = ring
        return ring

    def client_key(self, query: ContinuousQuery) -> str:
        """The routing key: the owning client, or the query itself."""
        return query.owner if query.owner is not None else query.query_id

    def choose(
        self, query: ContinuousQuery, shards: Sequence[ShardStatus]
    ) -> int:
        points, owners = self._ring(len(shards))
        key = _hash64(f"client:{self.client_key(query)}", self.seed)
        position = bisect.bisect_right(points, key) % len(points)
        return shards[owners[position]].index


_PLACEMENTS: dict[str, Callable[..., PlacementPolicy]] = {}


def register_placement(
    name: str, factory: Callable[..., PlacementPolicy]
) -> None:
    """Register a placement *factory* under *name* (case-insensitive)."""
    _PLACEMENTS[name.lower()] = factory


def registered_placements() -> Mapping[str, Callable[..., PlacementPolicy]]:
    """Read-only view of the placement registry (name → factory)."""
    return dict(_PLACEMENTS)


register_placement("round-robin", RoundRobinPlacement)
register_placement("least-loaded", LeastLoadedPlacement)
register_placement("consistent-hash", ConsistentHashPlacement)


def _validate_params(
    name: str, factory: Callable[..., PlacementPolicy],
    params: Mapping[str, object],
) -> None:
    """Reject parameters the policy factory does not accept."""
    if not params:
        return
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):  # pragma: no cover - exotic factory
        return
    accepted = [p.name for p in signature.parameters.values()
                if p.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD,
                              inspect.Parameter.KEYWORD_ONLY)]
    if any(p.kind is inspect.Parameter.VAR_KEYWORD
           for p in signature.parameters.values()):
        return
    unknown = sorted(set(params) - set(accepted))
    if unknown:
        menu = ", ".join(accepted) if accepted else "none"
        raise ValidationError(
            f"placement {name!r} does not accept parameter(s) "
            f"{unknown}; accepted parameters: {menu}")


def resolve_placement(
    placement: "PlacementPolicy | str",
) -> PlacementPolicy:
    """Coerce *placement* to a live policy.

    Accepts a :class:`PlacementPolicy` instance or a spec string in the
    same grammar as mechanism specs: ``"round-robin"``,
    ``"consistent-hash:seed=7,replicas=32"``.
    """
    if isinstance(placement, PlacementPolicy):
        return placement
    if isinstance(placement, str):
        spec = MechanismSpec.parse(placement)
        try:
            factory = _PLACEMENTS[spec.name.lower()]
        except KeyError:
            known = ", ".join(sorted(_PLACEMENTS))
            raise ValidationError(
                f"unknown placement policy {spec.name!r}; "
                f"known: {known}") from None
        _validate_params(spec.name, factory, spec.params)
        return factory(**spec.params)
    raise ValidationError(
        f"cannot resolve a placement policy from {placement!r}; pass a "
        f"PlacementPolicy or a spec string like 'round-robin' or "
        f"'consistent-hash:seed=7'")
