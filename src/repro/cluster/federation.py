"""The federated admission service: N shards behind one facade.

The paper runs one DSMS center per subscription period; the north-star
deployment runs many.  :class:`FederatedAdmissionService` owns N
independent :class:`~repro.service.AdmissionService` shards and gives
them one front door:

* **routing** — :meth:`submit` sends each query to a shard chosen by a
  pluggable :class:`~repro.cluster.placement.PlacementPolicy`
  (consistent-hash on client id, least-loaded, round-robin), with
  cluster-wide query-id uniqueness enforced before the shard sees it;
* **the cluster period** — :meth:`run_period` drives every shard
  through the prepare → auction → settle → rebalance → execute cycle
  in lockstep; :meth:`run_period_all` is the batch path that runs all
  shard auctions together — on a thread pool
  (``auction_mode="thread"``, the default) or a persistent
  multiprocessing pool (``auction_mode="process"``, see
  :mod:`repro.cluster.parallel`) that sidesteps the GIL for CPU-heavy
  auction kernels.  Auctions are side-effect-free until settlement;
  shards sharing a mechanism object stay sequential so per-shard RNG
  streams are consumed in shard order, and the process path
  round-trips each mechanism's evolved state back into the parent —
  all three paths produce byte-identical results;
* **rebalancing** — an optional
  :class:`~repro.cluster.rebalance.Rebalancer` migrates rejected
  queries onto shards with spare capacity between settle and execute;
* **aggregation** — each period yields a
  :class:`~repro.cluster.ClusterReport` (total profit, capacity-
  weighted utilization, rejected load, migrations);
* **checkpointing** — :meth:`snapshot` / :meth:`restore` and
  :meth:`save_checkpoint` / :meth:`load_checkpoint` compose every
  shard's snapshot envelope into one versioned cluster snapshot with
  the same guarantee as a single service: the resumed run is
  byte-identical to the uninterrupted one.
"""

from __future__ import annotations

import copy
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.cluster.placement import (
    PlacementPolicy,
    ShardStatus,
    resolve_placement,
)
from repro.cluster.rebalance import Rebalancer
from repro.cluster.reports import ClusterReport, Migration
from repro.dsms.backend import BackendSpec
from repro.dsms.plan import ContinuousQuery
from repro.service.builder import ServiceBuilder
from repro.service.service import AdmissionService, ServiceSnapshot
from repro.utils.validation import ValidationError, require

#: Version of the in-memory cluster snapshot layout.
CLUSTER_STATE_VERSION = 1


@dataclass(frozen=True)
class ClusterSnapshot:
    """A deep, self-contained copy of a federation's evolving state.

    Composes one :class:`~repro.service.ServiceSnapshot` per shard with
    the cluster-level state: the placement policy (including any
    cursor/ring state), the rebalancer, the period counter, and the
    report history.  Obtained from
    :meth:`FederatedAdmissionService.snapshot`; restored any number of
    times.  Shard hooks are code, not state — re-attach them per shard
    after restore.
    """

    version: int
    placement: PlacementPolicy
    rebalancer: "Rebalancer | None"
    period: int
    reports: tuple[ClusterReport, ...]
    shards: tuple[ServiceSnapshot, ...]

    def __post_init__(self) -> None:
        if not self.shards:
            raise ValidationError("cluster snapshot has no shards")


class FederatedAdmissionService:
    """A sharded, checkpointable federation of admission services.

    Build one from existing shards, or with :meth:`build` for the
    homogeneous case.  Shards stay fully independent services — each
    with its own engine, ledger, mechanism and hooks — so everything
    that works on one :class:`AdmissionService` (hooks, introspection,
    per-shard checkpoints) still works on ``cluster.shards[i]``.
    """

    def __init__(
        self,
        *,
        shards: Sequence[AdmissionService],
        placement: "PlacementPolicy | str" = "consistent-hash",
        rebalancer: "Rebalancer | None" = None,
        auction_workers: "int | None" = None,
        auction_mode: str = "thread",
        auction_columns: str = "pickle",
    ) -> None:
        shards = tuple(shards)
        require(len(shards) >= 1, "a federation needs at least one shard")
        if len({id(shard) for shard in shards}) != len(shards):
            raise ValidationError(
                "the same AdmissionService object appears twice in the "
                "shard list; every shard must be an independent service")
        if auction_workers is not None:
            require(int(auction_workers) >= 1,
                    "auction_workers must be >= 1")
            auction_workers = int(auction_workers)
        if auction_mode not in ("thread", "process"):
            raise ValidationError(
                f"auction_mode must be 'thread' or 'process', got "
                f"{auction_mode!r}")
        if auction_columns not in ("pickle", "shm"):
            raise ValidationError(
                f"auction_columns must be 'pickle' or 'shm', got "
                f"{auction_columns!r}")
        self.shards: tuple[AdmissionService, ...] = shards
        self.placement = resolve_placement(placement)
        self.rebalancer = rebalancer
        #: Pool width of the batch auction path (None = one worker per
        #: mechanism group, capped by the CPU count).  Runtime tuning,
        #: not evolving state: snapshots do not carry it, and restored
        #: federations start back on the default.
        self.auction_workers = auction_workers
        #: ``"thread"`` dispatches shard auctions on a thread pool;
        #: ``"process"`` on a persistent multiprocessing pool (see
        #: :mod:`repro.cluster.parallel`).  Runtime tuning like
        #: ``auction_workers``; byte-identical results either way.
        self.auction_mode = auction_mode
        #: How the process pool ships each instance's numeric select
        #: columns to its workers: ``"pickle"`` (with the job) or
        #: ``"shm"`` (one shared-memory segment per boundary, ids-only
        #: pickling).  Runtime tuning like ``auction_workers``;
        #: byte-identical results either way.
        self.auction_columns = auction_columns
        self._process_pool: "AuctionProcessPool | None" = None
        self._period = 0
        self.reports: list[ClusterReport] = []

    def __getstate__(self) -> dict:
        # Live worker processes never travel with a copied/pickled
        # federation; the copy lazily starts its own pool on use.
        state = dict(self.__dict__)
        state["_process_pool"] = None
        return state

    @classmethod
    def build(
        cls,
        *,
        num_shards: int,
        sources: Iterable,
        capacity: float,
        mechanism: object,
        ticks_per_period: int = 50,
        hold_ticks: int = 1,
        backend: "object | Sequence[object]" = "scalar",
        selection: "object | None" = None,
        placement: "PlacementPolicy | str" = "consistent-hash",
        rebalance: bool = True,
        auction_workers: "int | None" = None,
        auction_mode: str = "thread",
        auction_columns: str = "pickle",
    ) -> "FederatedAdmissionService":
        """Assemble a homogeneous cluster of *num_shards* shards.

        Each shard gets a deep copy of *sources* (independent stream
        RNGs) and, when *mechanism* is a spec string or
        :class:`MechanismSpec`, its own mechanism instance — so
        randomized mechanisms hold independent per-shard RNG streams.
        Passing a live :class:`Mechanism` object shares it across
        shards (its randomness is then consumed in shard-index order).
        *capacity* is per shard: the cluster offers ``num_shards ×
        capacity`` total work units per tick.

        *backend* selects each shard engine's execution backend: one
        spec (string or :class:`~repro.dsms.backend.BackendSpec`)
        applied to every shard, or a sequence of ``num_shards`` specs
        for a heterogeneous cluster (e.g. columnar on the hot shards,
        scalar elsewhere).

        *selection* pins every shard mechanism's winner-selection path
        (``"reference"``, ``"fast"``, or a
        :class:`~repro.core.selection.SelectionSpec`); ``None`` keeps
        the default.  *auction_workers* bounds the pool the batch path
        (:meth:`run_period_all`) auctions shards on; *auction_mode*
        picks that pool's flavor (``"thread"`` or ``"process"``).
        """
        require(int(num_shards) >= 1, "num_shards must be >= 1")
        if isinstance(backend, (str, BackendSpec)) or not isinstance(
                backend, Sequence):
            shard_backends = [backend] * int(num_shards)
        else:
            shard_backends = list(backend)
            if len(shard_backends) != int(num_shards):
                raise ValidationError(
                    f"got {len(shard_backends)} backend specs for "
                    f"{int(num_shards)} shards; pass one spec or "
                    f"exactly one per shard")
        builder = (ServiceBuilder()
                   .with_sources(*sources)
                   .with_capacity(capacity)
                   .with_mechanism(mechanism)
                   .with_ticks_per_period(ticks_per_period)
                   .with_hold_ticks(hold_ticks))
        if selection is not None:
            builder.with_selection(selection)
        shards = [builder.with_backend(shard_backend).build()
                  for shard_backend in shard_backends]
        return cls(
            shards=shards,
            placement=placement,
            rebalancer=Rebalancer() if rebalance else None,
            auction_workers=auction_workers,
            auction_mode=auction_mode,
            auction_columns=auction_columns,
        )

    # ------------------------------------------------------------------
    # Client-facing API
    # ------------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        """How many shards the federation owns."""
        return len(self.shards)

    @property
    def period(self) -> int:
        """Index of the last completed cluster period (0 = none)."""
        return self._period

    def shard_statuses(self) -> tuple[ShardStatus, ...]:
        """The per-shard view placement policies route on."""
        return tuple(
            ShardStatus(
                index=index,
                capacity=shard.capacity,
                pending_count=len(shard.pending_ids),
                admitted_count=len(shard.engine.admitted_ids),
            )
            for index, shard in enumerate(self.shards)
        )

    def locate(self, query_id: str) -> "int | None":
        """The shard currently holding *query_id* (pending or running)."""
        for index, shard in enumerate(self.shards):
            if (query_id in shard.pending_ids
                    or query_id in shard.engine.admitted_ids):
                return index
        return None

    def submit(self, query: ContinuousQuery) -> int:
        """Route *query* to a shard; returns the chosen shard index.

        Query ids are unique cluster-wide: a collision with any shard's
        pending queue or running set is rejected here, before the
        placement policy runs.
        """
        existing = self.locate(query.query_id)
        if existing is not None:
            raise ValidationError(
                f"query id {query.query_id!r} already submitted "
                f"(held by shard {existing})")
        statuses = self.shard_statuses()
        index = self.placement.choose(query, statuses)
        if not 0 <= index < len(self.shards):
            raise ValidationError(
                f"placement policy {self.placement.name!r} chose shard "
                f"{index}, but the cluster has shards 0.."
                f"{len(self.shards) - 1}")
        self.shards[index].submit(query)
        return index

    def withdraw(self, query_id: str) -> ContinuousQuery:
        """Withdraw a pending submission from whichever shard holds it."""
        for shard in self.shards:
            if query_id in shard.pending_ids:
                return shard.withdraw(query_id)
        known = sorted(self.pending_ids) or ["<none>"]
        raise ValidationError(
            f"cannot withdraw unknown query id {query_id!r}; pending "
            f"ids: {', '.join(known)}")

    @property
    def pending_ids(self) -> set[str]:
        """Union of every shard's pending queue."""
        ids: set[str] = set()
        for shard in self.shards:
            ids |= shard.pending_ids
        return ids

    # ------------------------------------------------------------------
    # The cluster period
    # ------------------------------------------------------------------

    def run_period(self) -> ClusterReport:
        """Run one cluster period, auctioning shard by shard."""
        return self._run_cluster_period(batch=False)

    def run_period_all(self) -> ClusterReport:
        """Run one cluster period through the batch auction path.

        All shard auctions are built first, then dispatched together
        across a pool (:meth:`run_period` auctions shard by shard
        instead), then settled, rebalanced and executed — settlement
        stays sequential and deterministic.  ``auction_mode`` picks the
        pool: ``"thread"`` (default) or ``"process"`` (a persistent
        multiprocessing pool; GIL-free, mechanism state round-tripped).
        Auctions are side-effect-free until settlement, so parallel
        dispatch is safe; shards sharing one mechanism *object* are
        grouped onto a single worker and run in shard order, so a
        randomized mechanism consumes its RNG stream exactly as the
        sequential path would.  Produces exactly the same reports as
        :meth:`run_period`.
        """
        return self._run_cluster_period(batch=True)

    def _auction_pool(self, workers: int):
        """The persistent process pool, (re)built at *workers* wide."""
        from repro.cluster.parallel import AuctionProcessPool

        pool = self._process_pool
        if (pool is None or pool.workers != workers
                or pool.columns != self.auction_columns):
            if pool is not None:
                pool.close()
            pool = self._process_pool = AuctionProcessPool(
                workers, columns=self.auction_columns)
        return pool

    def close_pool(self) -> None:
        """Shut down the process pool, if one was ever started.

        Safe to call any time; the next ``auction_mode="process"``
        period lazily starts a fresh pool.
        """
        if self._process_pool is not None:
            self._process_pool.close()
            self._process_pool = None

    def _run_auctions_batch(self, active, preparations):
        """All shard auctions of one period; outcomes in *active* order.

        Shard indices are grouped by mechanism object identity (the
        usual federation gives every shard its own mechanism, so each
        group is one shard); groups run concurrently on the pool, the
        shards *within* a group sequentially via
        :meth:`~repro.core.Mechanism.run_many`.  Exceptions surface in
        deterministic group order, and the caller's rollback handles
        them exactly as on the sequential path.
        """
        groups: dict[int, list[int]] = {}
        for index in active:
            key = id(self.shards[index].mechanism)
            groups.setdefault(key, []).append(index)
        grouped_indices = list(groups.values())

        def run_group(indices: list[int]):
            mechanism = self.shards[indices[0]].mechanism
            return mechanism.run_many(
                preparations[index].instance for index in indices)

        workers = self.auction_workers
        if workers is None:
            workers = min(32, os.cpu_count() or 1)
        workers = min(workers, len(grouped_indices))
        if workers <= 1:
            grouped_outcomes = [run_group(indices)
                                for indices in grouped_indices]
        elif self.auction_mode == "process":
            jobs = [
                (self.shards[indices[0]].mechanism,
                 [preparations[index].instance for index in indices])
                for indices in grouped_indices
            ]
            grouped_outcomes = self._auction_pool(workers).run_groups(jobs)
        else:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                futures = [pool.submit(run_group, indices)
                           for indices in grouped_indices]
                grouped_outcomes = [future.result() for future in futures]
        by_shard = {
            index: outcome
            for indices, outcomes in zip(grouped_indices, grouped_outcomes)
            for index, outcome in zip(indices, outcomes)
        }
        return [by_shard[index] for index in active]

    def _run_cluster_period(self, batch: bool) -> ClusterReport:
        # Phase A/B — prepare and auction.  Nothing is billed or
        # transitioned yet, so a failure here (a pre_auction hook, a
        # mechanism bug) rolls back cleanly: shard counters return to
        # where they were, pending queues are untouched, and the
        # period can simply be retried.  One caveat either way
        # (sequential or pooled): auctions that ran before the failure
        # surfaced have already consumed their mechanisms' randomness —
        # and the thread pool may have run *more* of them than the
        # sequential stop-at-first-error path would — so a retried
        # period with randomized mechanisms is valid but not bit-equal
        # to a never-failed run; restore from a checkpoint for that.
        active = [
            index for index, shard in enumerate(self.shards)
            if shard.pending_ids or shard.engine.admitted_ids
        ]
        preparations = {}
        try:
            for index in active:
                preparations[index] = self.shards[index].prepare_period()
            if batch:
                outcomes = self._run_auctions_batch(active, preparations)
            else:
                outcomes = [
                    self.shards[index].mechanism.run(
                        preparations[index].instance)
                    for index in active
                ]
        except Exception:
            for index in preparations:
                self.shards[index]._period -= 1
            raise

        # Phase C/D/E — settle, rebalance, execute.  From the first
        # settlement on, shards bill and transition, which cannot be
        # undone; the period is therefore *committed* here.  On a
        # failure the exception propagates with every shard's counter
        # aligned to the committed period (unsettled shards keep their
        # pending queues and re-auction them next period); no report
        # is recorded, and invoices already written stand — restore
        # from the last checkpoint for all-or-nothing recovery.
        self._period += 1
        try:
            settlements = {
                index: self.shards[index].settle_period(
                    preparations[index], outcome)
                for index, outcome in zip(active, outcomes)
            }
            migrations: tuple[Migration, ...] = ()
            if self.rebalancer is not None:
                migrations = self.rebalancer.rebalance(
                    self.shards, settlements)
            shard_reports = tuple(
                (shard.execute_period(settlements[index])
                 if index in settlements else shard.run_idle_period())
                for index, shard in enumerate(self.shards)
            )
        except Exception:
            for shard in self.shards:
                if shard._period < self._period:
                    shard._period = self._period
            raise
        placed = {migration.query_id for migration in migrations}
        rejected_load = float(sum(
            settlement.outcome.instance.union_load([query_id])
            for settlement in settlements.values()
            for query_id in settlement.rejected
            if query_id not in placed
        ))
        report = ClusterReport(
            period=self._period,
            shard_reports=shard_reports,
            shard_capacities=tuple(
                shard.capacity for shard in self.shards),
            migrations=migrations,
            rejected_load=rejected_load,
        )
        self.reports.append(report)
        return report

    def run_periods(
        self,
        submissions_per_period: Iterable[Sequence[ContinuousQuery]],
        batch: bool = False,
    ) -> list[ClusterReport]:
        """Run several periods, routing each batch before its auction.

        Like :meth:`AdmissionService.run_periods`, this is now the
        degenerate schedule of the open-system runtime: one
        :class:`~repro.sim.SimulationDriver` boundary per batch, with
        identical routing/auction interleaving and byte-identical
        reports.
        """
        from repro.sim.driver import SimulationDriver

        return SimulationDriver.lockstep(self, batch=batch).run_lockstep(
            submissions_per_period)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def total_revenue(self) -> float:
        """Cluster revenue over all billed periods and shards."""
        return sum(shard.total_revenue() for shard in self.shards)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def snapshot(self) -> ClusterSnapshot:
        """Capture the whole federation as a restorable snapshot."""
        return ClusterSnapshot(
            version=CLUSTER_STATE_VERSION,
            placement=copy.deepcopy(self.placement),
            rebalancer=copy.deepcopy(self.rebalancer),
            period=self._period,
            reports=copy.deepcopy(tuple(self.reports)),
            shards=tuple(shard.snapshot() for shard in self.shards),
        )

    @classmethod
    def restore(cls, snapshot: ClusterSnapshot) -> "FederatedAdmissionService":
        """Rebuild a live federation from *snapshot*.

        The snapshot is copied, so it can be restored again later.
        Shard hooks are not serialized state; re-attach them on
        ``cluster.shards[i].hooks`` after restore.
        """
        if snapshot.version != CLUSTER_STATE_VERSION:
            raise ValidationError(
                f"cannot restore cluster snapshot version "
                f"{snapshot.version}; this build supports version "
                f"{CLUSTER_STATE_VERSION}")
        cluster = object.__new__(cls)
        cluster.shards = tuple(
            AdmissionService.restore(shard) for shard in snapshot.shards)
        cluster.placement = copy.deepcopy(snapshot.placement)
        cluster.rebalancer = copy.deepcopy(snapshot.rebalancer)
        cluster.auction_workers = None  # runtime tuning, not state
        cluster.auction_mode = "thread"
        cluster.auction_columns = "pickle"
        cluster._process_pool = None
        cluster._period = snapshot.period
        cluster.reports = list(copy.deepcopy(snapshot.reports))
        return cluster

    def save_checkpoint(self, path: object) -> None:
        """Write a restorable cluster checkpoint (see :mod:`repro.io`).

        The file is one versioned envelope composing every shard's
        snapshot envelope; the same picklability rules as per-service
        checkpoints apply (module-level functions, no lambdas).  Only
        load checkpoints you trust.
        """
        from repro.io import save_cluster_snapshot

        save_cluster_snapshot(self.snapshot(), path)

    @classmethod
    def load_checkpoint(cls, path: object) -> "FederatedAdmissionService":
        """Resume a federation from a :meth:`save_checkpoint` file."""
        from repro.io import load_cluster_snapshot

        return cls.restore(load_cluster_snapshot(path))
