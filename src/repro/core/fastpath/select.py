"""Fast winner/payment selection for the paper's mechanisms.

:func:`fast_select` is the single entry point the ``"fast"`` selection
path (:mod:`repro.core.selection`) dispatches through: given a live
mechanism and a (sealed) instance it runs the array-kernel twin of the
mechanism's ``_select`` and returns the same ``(payments, details)``
pair — bitwise identical floats, identical dict/list ordering — or
``None`` when the mechanism has no fast kernel (custom subclasses,
exotic load measures, the exact/benchmark mechanisms), in which case
the caller falls back to the reference implementation.

A kernel only engages when the mechanism's ``_select`` is the stock
one: a subclass that overrides ``_select`` (or plugs in a custom load
measure) keeps its own semantics and silently takes the reference
path.
"""

from __future__ import annotations

import numpy as np

from repro.core.car import CAR
from repro.core.density import DensityMechanism, SkipOverDensityMechanism
from repro.core.fastpath.index import InstanceIndex
from repro.core.fastpath.kernels import (
    EPSILON,
    bid_order_indices,
    density_order,
    greedy_walk,
    movement_window_lasts,
    optimal_single_price_array,
    select_screen,
)
from repro.core.greedy import priority_of
from repro.core.gv import GreedyByValuation
from repro.core.loads import static_fair_share_load, total_load
from repro.core.model import AuctionInstance
from repro.core.two_price import TwoPrice, largest_fitting_subset

SelectResult = "tuple[dict[str, float], dict[str, object]] | None"


def fast_select(mechanism, instance: AuctionInstance) -> SelectResult:
    """Run *mechanism*'s fast kernel on *instance*, if it has one."""
    cls = type(mechanism)
    if (isinstance(mechanism, DensityMechanism)
            and cls._select is DensityMechanism._select):
        loads = _measure_arrays(mechanism, instance)
        if loads is None:
            return None
        return _density_stop_at_first(InstanceIndex.of(instance), *loads)
    if (isinstance(mechanism, SkipOverDensityMechanism)
            and cls._select is SkipOverDensityMechanism._select):
        loads = _measure_arrays(mechanism, instance)
        if loads is None:
            return None
        return _density_skip_over(InstanceIndex.of(instance), *loads)
    if isinstance(mechanism, CAR) and cls._select is CAR._select:
        return _car(InstanceIndex.of(instance))
    if (isinstance(mechanism, GreedyByValuation)
            and cls._select is GreedyByValuation._select):
        result = _gv_columnar(instance)
        if result is not None:
            return result
        return _greedy_by_valuation(InstanceIndex.of(instance))
    if isinstance(mechanism, TwoPrice) and cls._select is TwoPrice._select:
        return _two_price(mechanism, instance,
                          InstanceIndex.of(instance))
    return None


def _measure_arrays(mechanism, instance: AuctionInstance):
    """The precomputed per-query loads for the mechanism's measure.

    Returns ``(np_loads, list_loads)`` or ``None`` for a custom load
    measure the index does not precompute.
    """
    index = InstanceIndex.of(instance)
    measure = mechanism.load_measure
    if measure is total_load:
        return index.total_loads, index.total_loads_list
    if measure is static_fair_share_load:
        return index.fair_share_loads, index.fair_share_loads_list
    return None


# ----------------------------------------------------------------------
# CAF / CAT (stop-at-first) and CAF+ / CAT+ (skip-over)
# ----------------------------------------------------------------------


def _density_stop_at_first(index: InstanceIndex, loads: np.ndarray,
                           loads_list: list[float]):
    order = density_order(index, loads)
    winners, lost, _ = greedy_walk(index, order, skip_over=False)
    ids = index.query_ids
    details: dict[str, object] = {
        "priority_order": [ids[qi] for qi in order],
        "first_loser": None if lost is None else ids[lost],
    }
    if lost is None:
        return {ids[qi]: 0.0 for qi in winners}, details
    price_per_unit = priority_of(index.bids_list[lost], loads_list[lost])
    details["price_per_unit_load"] = price_per_unit
    payments = {ids[qi]: loads_list[qi] * price_per_unit for qi in winners}
    return payments, details


def _density_skip_over(index: InstanceIndex, loads: np.ndarray,
                       loads_list: list[float]):
    order = density_order(index, loads)
    winners, first_loser, _ = greedy_walk(index, order, skip_over=True)
    lasts = movement_window_lasts(index, order, winners)
    ids = index.query_ids
    payments: dict[str, float] = {}
    last_map: dict[str, "str | None"] = {}
    for qi in winners:
        last = lasts[qi]
        if last is None:
            payments[ids[qi]] = 0.0
            last_map[ids[qi]] = None
            continue
        winner_load = loads_list[qi]
        if winner_load == 0.0:
            payments[ids[qi]] = 0.0
        else:
            payments[ids[qi]] = winner_load * priority_of(
                index.bids_list[last], loads_list[last])
        last_map[ids[qi]] = ids[last]
    details = {
        "priority_order": [ids[qi] for qi in order],
        "first_loser": (None if first_loser is None
                        else ids[first_loser]),
        "last": last_map,
    }
    return payments, details


# ----------------------------------------------------------------------
# CAR (iterative remaining-load ranking)
# ----------------------------------------------------------------------


def _car(index: InstanceIndex):
    """CAR's n admission rounds, each a vectorized argmax.

    Remaining loads live in one float64 array, updated per newly
    running operator with a single fancy-indexed subtraction over the
    queries containing it — the incremental bitmask accounting the
    reference maintains query by query.  (The subtraction also touches
    already-admitted queries, whose remaining loads the reference
    freezes; those slots are never read again, and pending queries see
    the identical subtraction sequence, so every value that matters is
    bitwise equal.)
    """
    n = index.num_queries
    ids = index.query_ids
    capacity = index.capacity
    bids = index.bids
    id_rank = index.id_rank
    loads = index.op_loads_list
    cr = np.array(index.total_loads_list, dtype=np.float64)
    pending = np.ones(n, dtype=bool)
    running = bytearray(index.num_operators)
    used = 0.0
    admission_order: list[str] = []
    admission_loads: dict[str, float] = {}
    lost: "int | None" = None

    remaining = n
    while remaining:
        with np.errstate(over="ignore", divide="ignore",
                         invalid="ignore"):
            priorities = np.divide(bids, cr)
        priorities[cr == 0.0] = np.inf
        masked = np.where(pending, priorities, -np.inf)
        best_value = masked.max()
        # A pending priority can itself be -inf (huge bid over a tiny
        # *negative* remaining-load residue overflows), colliding with
        # the non-pending sentinel — so restrict ties to pending.
        candidates = np.nonzero(pending & (masked == best_value))[0]
        best = int(candidates[np.argmin(id_rank[candidates])])
        margin = float(cr[best])
        if used + margin > capacity + EPSILON:
            lost = best
            break
        pending[best] = False
        remaining -= 1
        used += margin
        admission_order.append(ids[best])
        admission_loads[ids[best]] = margin
        for o in index.query_ops[best]:
            if not running[o]:
                running[o] = 1
                cr[index.op_queries[o]] -= loads[o]

    details: dict[str, object] = {
        "admission_order": admission_order,
        "first_loser": None if lost is None else ids[lost],
        "admission_remaining_loads": dict(admission_loads),
    }
    if lost is None:
        return {qid: 0.0 for qid in admission_order}, details
    price_per_unit = priority_of(index.bids_list[lost], float(cr[lost]))
    details["price_per_unit_load"] = price_per_unit
    payments = {
        qid: admission_loads[qid] * price_per_unit
        for qid in admission_order
    }
    return payments, details


# ----------------------------------------------------------------------
# GV and Two-price (bid-ordered)
# ----------------------------------------------------------------------


def _gv_columnar(instance: AuctionInstance) -> SelectResult:
    """GV without an index: the single-operator, unshared case.

    When every query owns exactly one private operator, GV's greedy
    walk degenerates: each query's marginal load is its operator's
    full load regardless of what was admitted before, so the walk is a
    running sum over the bid order and the whole auction collapses to
    one ``lexsort`` + ``cumsum``.  This is the open-system admission
    workload — hundreds of auctions over thousands of arrivals per
    run — where index construction would dominate the kernel.

    Bitwise equal to the reference: ``cumsum`` accumulates float64
    partial sums in the same left-to-right order as the tracker's
    ``used += margin`` (and ``0.0 + load == load`` exactly), the sort
    key matches ``(-bid, query_id)``, and the capacity test uses the
    same ``EPSILON`` slack.  Returns ``None`` (caller falls back to
    the indexed kernel) on any sharing or multi-operator query.
    """
    if instance.max_sharing_degree() > 1:
        return None
    n = instance.num_queries
    if n == 0:
        return {}, {"bid_order": [], "first_loser": None, "price": 0.0}
    # Columns first, .queries only as a fallback: for the pump's lazy
    # columnar instances touching .queries would materialize a
    # SelectPlan per loser — the exact cost this kernel exists to skip.
    columns = getattr(instance, "_select_columns", None)
    if columns is not None and len(columns[0]) == n:
        # The instance builder already mirrored ids/bids/loads into
        # flat columns (repro.sim.subscriptions / repro.sim.columnar) —
        # same values the extraction below would read back one query
        # at a time.
        ids, bids, loads = columns
    else:
        queries = instance.queries
        operators = instance.operators
        ids = []
        bids = np.empty(n, dtype=np.float64)
        loads = np.empty(n, dtype=np.float64)
        for i, query in enumerate(queries):
            op_ids = query.operator_ids
            if len(op_ids) != 1:
                return None
            ids.append(query.query_id)
            bids[i] = query.bid
            loads[i] = operators[op_ids[0]].load
    order, winner_count, lost = select_screen(
        ids, bids, loads, instance.capacity)
    order_list = order.tolist()
    details: dict[str, object] = {
        "bid_order": [ids[qi] for qi in order_list],
        "first_loser": None if lost is None else ids[lost],
    }
    # float(): payments travel into ledgers and JSON reports, which
    # expect plain floats, not numpy scalars.
    price = 0.0 if lost is None else float(bids[lost])
    details["price"] = price
    payments = {ids[qi]: price for qi in order_list[:winner_count]}
    return payments, details


def _greedy_by_valuation(index: InstanceIndex):
    order = bid_order_indices(index)
    winners, lost, _ = greedy_walk(index, order, skip_over=False)
    ids = index.query_ids
    details: dict[str, object] = {
        "bid_order": [ids[qi] for qi in order],
        "first_loser": None if lost is None else ids[lost],
    }
    price = 0.0 if lost is None else index.bids_list[lost]
    details["price"] = price
    payments = {ids[qi]: price for qi in winners}
    return payments, details


def _two_price(mechanism: TwoPrice, instance: AuctionInstance,
               index: InstanceIndex):
    """Two-price Steps 1–2 and 4–6 on arrays; Step 3 shared.

    The boundary-tie adjustment stays on the reference
    :func:`largest_fitting_subset` (exponential by design, cold in
    practice, and its set-iteration float sums would be painful to
    reproduce bitwise); the sort, the greedy walk and the RSOP pricing
    — the O(n log n) bulk — run on the kernels.  Randomness is drawn
    through the mechanism's own generator with the reference's exact
    call sequence, so fast and reference runs of equal seeds stay
    interchangeable mid-stream.
    """
    order = bid_order_indices(index)
    winners, lost, _ = greedy_walk(index, order, skip_over=False)
    queries = instance.queries
    h_set = [queries[qi] for qi in winners]
    details: dict[str, object] = {
        "H": [q.query_id for q in h_set],
        "adjusted": False,
    }

    if (mechanism._adjust_ties and lost is not None and h_set
            and h_set[-1].bid == queries[lost].bid):
        v_boundary = queries[lost].bid
        tied = [q for q in queries if q.bid == v_boundary]
        keep = [q for q in h_set if q.bid != v_boundary]
        keep_ids = {q.query_id for q in keep}
        chosen = largest_fitting_subset(
            instance, keep_ids, tied, mechanism._exhaustive_limit)
        h_set = keep + chosen
        details["adjusted"] = True
        details["tied_block_size"] = len(tied)
        details["H"] = [q.query_id for q in h_set]

    payments = _random_sampling_prices(mechanism, h_set, details)
    return payments, details


def _random_sampling_prices(mechanism: TwoPrice, h_set, details):
    """Steps 4–6 with array pricing — the twin of
    :meth:`TwoPrice._random_sampling_prices`.

    The partition draw itself is shared code
    (:meth:`TwoPrice._partition`), so both paths consume the
    mechanism's randomness identically; only the pricing differs.
    """
    if not h_set:
        return {}
    side_a, side_b = mechanism._partition(h_set)
    price_a, _ = optimal_single_price_array(
        np.asarray([q.bid for q in side_a], dtype=np.float64))
    price_b, _ = optimal_single_price_array(
        np.asarray([q.bid for q in side_b], dtype=np.float64))
    details["A"] = [q.query_id for q in side_a]
    details["B"] = [q.query_id for q in side_b]
    details["price_A"] = price_a
    details["price_B"] = price_b
    payments: dict[str, float] = {}
    for query in side_b:
        if query.bid > price_a:
            payments[query.query_id] = price_a
    for query in side_a:
        if query.bid > price_b:
            payments[query.query_id] = price_b
    return payments
