"""A compiled, array-backed index over an :class:`AuctionInstance`.

The reference mechanisms walk the instance through Python dictionaries:
every load measure is a generator sum of ``instance.operator(op_id).load``
lookups, every capacity test a set union.  :class:`InstanceIndex`
compiles the instance once into flat arrays —

* a CSR query → operator membership matrix (``indptr`` / ``indices``,
  operator indices stored in each query's declared operator order);
* contiguous numpy arrays for operator loads, sharing degrees and bids
  (plus plain-``float`` list mirrors for the scalar hot loops, where
  boxed ``np.float64`` item access would dominate);
* the precomputed per-query load measures ``C^T`` and ``C^SF``; and
* a lexicographic rank per query id, so vectorized sorts can reproduce
  the reference tie-breaking exactly.

Exactness contract: every derived float is accumulated in *the same
order* as the reference code (left-to-right over each query's declared
operators), so fast-path selections are bitwise identical to the pure
Python ones — the property the differential suite pins.

Instances are immutable, so the index is built once and cached on the
instance itself (never invalidated).  The cache is deliberately
excluded from pickling and deep copies (see
``AuctionInstance.__getstate__``): checkpoints stay lean and a restored
instance simply rebuilds its index on first fast-path use.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import AuctionInstance

#: Attribute name under which the index is cached on the instance.
_CACHE_ATTR = "_fastpath_cache"


class InstanceIndex:
    """Flat-array view of one :class:`AuctionInstance` (immutable)."""

    __slots__ = (
        "capacity",
        "num_queries",
        "num_operators",
        "query_ids",
        "op_ids",
        "op_loads",
        "op_loads_list",
        "sharing",
        "indptr",
        "indices",
        "query_ops",
        "op_queries",
        "bids",
        "bids_list",
        "simple_queries",
        "total_loads",
        "total_loads_list",
        "fair_share_loads",
        "fair_share_loads_list",
        "id_rank",
    )

    def __init__(self, instance: AuctionInstance) -> None:
        queries = instance.queries
        n = len(queries)
        self.capacity = float(instance.capacity)
        self.num_queries = n
        self.query_ids = [q.query_id for q in queries]

        # Operator catalogue in the instance's (dict) order.
        self.op_ids = list(instance.operators)
        op_index = {op_id: i for i, op_id in enumerate(self.op_ids)}
        self.num_operators = len(self.op_ids)
        self.op_loads_list = [
            instance.operators[op_id].load for op_id in self.op_ids]
        self.op_loads = np.asarray(self.op_loads_list, dtype=np.float64)
        sharing_list = [instance.sharing_degree(op_id)
                        for op_id in self.op_ids]
        self.sharing = np.asarray(sharing_list, dtype=np.int64)

        # CSR membership, operator indices in declared query order, and
        # the sequentially-accumulated load measures (the accumulation
        # order matters: it reproduces the reference sums bitwise).
        ops_per_query = [query.operator_ids for query in queries]
        if all(len(op_ids) == 1 for op_ids in ops_per_query):
            # Single-operator queries — the open-system admission
            # workload, where thousands of these are built per run.
            # Every sequential accumulation collapses to one term
            # (0.0 + x == x exactly; x/k matches the scalar division
            # bitwise), so the measures vectorize without breaking the
            # exactness contract.
            ops = [op_index[op_ids[0]] for op_ids in ops_per_query]
            indices = np.asarray(ops, dtype=np.int64)
            self.indptr = np.arange(n + 1, dtype=np.int64)
            self.indices = indices
            self.query_ops = [[o] for o in ops]
            total_arr = self.op_loads[indices]
            fair_arr = total_arr / self.sharing[indices]
            self.total_loads = total_arr
            self.fair_share_loads = fair_arr
            self.total_loads_list = total_arr.tolist()
            self.fair_share_loads_list = fair_arr.tolist()
            self.simple_queries = (self.sharing[indices] == 1).tolist()
        else:
            indptr = np.zeros(n + 1, dtype=np.int64)
            flat: list[int] = []
            query_ops: list[list[int]] = []
            total_loads: list[float] = []
            fair_share_loads: list[float] = []
            loads = self.op_loads_list
            for qi, op_ids in enumerate(ops_per_query):
                ops = [op_index[op_id] for op_id in op_ids]
                query_ops.append(ops)
                flat.extend(ops)
                indptr[qi + 1] = len(flat)
                total = 0.0
                fair = 0.0
                for o in ops:
                    load = loads[o]
                    total += load
                    fair += load / sharing_list[o]
                total_loads.append(total)
                fair_share_loads.append(fair)
            self.indptr = indptr
            self.indices = np.asarray(flat, dtype=np.int64)
            self.query_ops = query_ops
            self.total_loads_list = total_loads
            self.fair_share_loads_list = fair_share_loads
            self.total_loads = np.asarray(total_loads, dtype=np.float64)
            self.fair_share_loads = np.asarray(
                fair_share_loads, dtype=np.float64)
            # Queries whose operators are all unshared (degree 1):
            # their marginal load is always their full total load, and
            # admitting them can never change any other query's
            # marginal — the skip-over movement-window kernel exploits
            # both.
            self.simple_queries = [
                all(sharing_list[o] == 1 for o in ops)
                for ops in query_ops]

        self.bids_list = [q.bid for q in queries]
        self.bids = np.asarray(self.bids_list, dtype=np.float64)

        # Transpose: operator → queries containing it, in instance query
        # order (CAR's incremental remaining-load updates walk these).
        op_members: list[list[int]] = [[] for _ in range(self.num_operators)]
        for qi, ops in enumerate(self.query_ops):
            for o in ops:
                op_members[o].append(qi)
        self.op_queries = [
            np.asarray(members, dtype=np.int64) for members in op_members]

        # Rank of each query id in lexicographic order: the vectorized
        # tie-break key standing in for the reference's string compare.
        # Ids are unique, so the unstable argsort is deterministic; the
        # numpy comparison agrees with Python's for these plain strings.
        order = np.argsort(np.asarray(self.query_ids))
        id_rank = np.empty(n, dtype=np.int64)
        id_rank[order] = np.arange(n, dtype=np.int64)
        self.id_rank = id_rank

    @classmethod
    def from_select_columns(cls, ids, op_ids, bids, loads,
                            capacity: float) -> "InstanceIndex":
        """Build an index straight from single-select columns.

        The columnar pump's instances know their shape up front: one
        private operator per query (sharing degree 1 throughout), ids
        and operators in row order.  That pins every derived value —
        the CSR matrix is the identity layout, fair-share equals total
        load, and all the ``__init__`` accumulations collapse to array
        copies — so the index can skip materializing the query objects
        entirely.  Values are bitwise what ``__init__`` would produce
        for the eager twin instance.
        """
        index = object.__new__(cls)
        n = len(ids)
        index.capacity = float(capacity)
        index.num_queries = n
        index.num_operators = n
        index.query_ids = list(ids)
        index.op_ids = list(op_ids)
        loads_arr = np.asarray(loads, dtype=np.float64)
        index.op_loads = loads_arr
        index.op_loads_list = loads_arr.tolist()
        index.sharing = np.ones(n, dtype=np.int64)
        arange = np.arange(n, dtype=np.int64)
        index.indptr = np.arange(n + 1, dtype=np.int64)
        index.indices = arange
        index.query_ops = [[o] for o in range(n)]
        index.op_queries = [arange[o:o + 1] for o in range(n)]
        index.total_loads = loads_arr
        index.total_loads_list = index.op_loads_list
        index.fair_share_loads = loads_arr / index.sharing
        index.fair_share_loads_list = index.fair_share_loads.tolist()
        index.simple_queries = [True] * n
        bids_arr = np.asarray(bids, dtype=np.float64)
        index.bids = bids_arr
        index.bids_list = bids_arr.tolist()
        order = np.argsort(np.asarray(index.query_ids))
        id_rank = np.empty(n, dtype=np.int64)
        id_rank[order] = arange
        index.id_rank = id_rank
        return index

    @classmethod
    def of(cls, instance: AuctionInstance) -> "InstanceIndex":
        """The index of *instance*, built once and cached on it."""
        cached = getattr(instance, _CACHE_ATTR, None)
        if cached is not None:
            return cached
        # Lazy columnar instances (repro.sim.columnar) expose their
        # rows through a duck-typed hook so the index builds without
        # materializing their query objects.
        hook = getattr(instance, "_index_columns", None)
        if hook is not None:
            index = cls.from_select_columns(*hook(),
                                            capacity=instance.capacity)
        else:
            index = cls(instance)
        object.__setattr__(instance, _CACHE_ATTR, index)
        return index

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<InstanceIndex {self.num_queries} queries / "
                f"{self.num_operators} operators>")
