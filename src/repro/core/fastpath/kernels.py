"""Array-based auction kernels over an :class:`InstanceIndex`.

Each kernel is the exact computational twin of a pure-Python reference
routine — same float accumulation order, same tie-breaking, same
tolerance constants — just stripped of the dictionary lookups and set
unions that dominate the reference hot loops:

* :class:`FastTracker` ↔ :class:`repro.core.loads.LoadTracker`
  (admitted-operator bitmask instead of per-query set rebuilds);
* :func:`greedy_walk` ↔ :func:`repro.core.greedy.greedy_admit`;
* :func:`density_order` / :func:`bid_order_indices` ↔
  :func:`repro.core.greedy.priority_order` / :func:`repro.core.gv.bid_order`;
* :func:`find_last` ↔ :func:`repro.core.movement_window.find_last`;
* :func:`optimal_single_price_array` ↔
  :func:`repro.core.two_price.optimal_single_price`.

The differential suite (``tests/core/test_fastpath_differential.py``)
pins the equivalence on random shared-DAG instances.
"""

from __future__ import annotations

import numpy as np

from repro.core.fastpath.index import InstanceIndex

#: Capacity-test slack, identical to the reference mechanisms'.
EPSILON = 1e-9


class FastTracker:
    """Incremental union-load accounting over operator *indices*.

    The fast twin of :class:`repro.core.loads.LoadTracker`: the running
    operator set is a ``bytearray`` bitmask over the index's operator
    slots, and marginal loads accumulate plain Python floats in each
    query's declared operator order — bitwise identical to the
    reference's set-based accounting (a Hypothesis property in
    ``tests/core/test_fastpath_index.py`` pins this under adversarial
    sharing).
    """

    __slots__ = ("_index", "_running", "used")

    def __init__(self, index: InstanceIndex) -> None:
        self._index = index
        self._running = bytearray(index.num_operators)
        self.used = 0.0

    def marginal(self, qi: int) -> float:
        """Remaining (marginal) load of admitting query *qi* now."""
        loads = self._index.op_loads_list
        running = self._running
        margin = 0.0
        for o in self._index.query_ops[qi]:
            if not running[o]:
                margin += loads[o]
        return margin

    def fits(self, qi: int) -> bool:
        """True if query *qi* fits in the remaining capacity."""
        return self.used + self.marginal(qi) <= self._index.capacity + EPSILON

    def admit(self, qi: int) -> float:
        """Admit query *qi*; returns the marginal load it added."""
        margin = self.marginal(qi)
        running = self._running
        for o in self._index.query_ops[qi]:
            running[o] = 1
        self.used += margin
        return margin

    def try_admit(self, qi: int) -> bool:
        """Admit query *qi* if it fits; one marginal-load computation."""
        margin = self.marginal(qi)
        if self.used + margin > self._index.capacity + EPSILON:
            return False
        running = self._running
        for o in self._index.query_ops[qi]:
            running[o] = 1
        self.used += margin
        return True

    def running_operator_ids(self) -> frozenset[str]:
        """The admitted operators as ids (diagnostics / tests)."""
        op_ids = self._index.op_ids
        return frozenset(
            op_ids[o] for o, bit in enumerate(self._running) if bit)


def density_priorities(index: InstanceIndex,
                       loads: np.ndarray) -> np.ndarray:
    """``b_i / C_i`` per query; ``inf`` where the load is zero.

    Vectorized :func:`repro.core.greedy.priority_of`: IEEE-754 division
    matches the scalar reference bit for bit, and the explicit
    zero-load mask reproduces its ``inf`` convention (even for a zero
    bid, where plain division would yield NaN).
    """
    zero = loads == 0.0
    # bid/load can overflow to inf (huge bid over denormal load) —
    # exactly what the scalar reference returns, minus the warning.
    with np.errstate(over="ignore", divide="ignore", invalid="ignore"):
        priorities = np.divide(index.bids, np.where(zero, 1.0, loads))
    priorities[zero] = np.inf
    return priorities


def density_order(index: InstanceIndex, loads: np.ndarray) -> list[int]:
    """Query indices by non-increasing density, ties by query id."""
    priorities = density_priorities(index, loads)
    return np.lexsort((index.id_rank, -priorities)).tolist()


def bid_order_indices(index: InstanceIndex) -> list[int]:
    """Query indices by non-increasing bid, ties by query id."""
    return np.lexsort((index.id_rank, -index.bids)).tolist()


def select_screen(
    ids: "list[str] | np.ndarray",
    bids: np.ndarray,
    loads: np.ndarray,
    capacity: float,
) -> "tuple[np.ndarray, int, int | None]":
    """Bulk bid/load/capacity screen for single-select admission rows.

    The columnar pump's pre-screen: given one block of admission
    candidates — each a single private operator, so marginal load is
    just ``loads[i]`` — rank them by ``(-bid, query_id)`` and find how
    many fit.  Returns ``(order, winner_count, first_loser)`` where
    ``order`` is the full ranking, ``order[:winner_count]`` are the
    rows that survive to materialization, and ``first_loser`` is the
    row index that sets the critical price (``None`` when everything
    fits).

    Exactness: ``lexsort`` reproduces the reference ``(-bid, id)`` sort
    (numpy string compare agrees with Python's for these plain ids),
    ``cumsum`` accumulates float64 partial sums in the reference's
    left-to-right order, and the capacity test uses the same
    ``EPSILON`` slack — so winners and the critical price are bitwise
    identical to a per-object greedy walk over the same rows.
    """
    order = np.lexsort((np.asarray(ids), -bids))
    used = np.cumsum(loads[order])
    fits = used <= capacity + EPSILON
    if fits.all():
        return order, int(order.size), None
    winner_count = int(np.argmin(fits))
    return order, winner_count, int(order[winner_count])


def greedy_walk(
    index: InstanceIndex,
    order: list[int],
    skip_over: bool,
) -> tuple[list[int], "int | None", FastTracker]:
    """Admit queries from *order* until the server is full.

    The fast twin of :func:`repro.core.greedy.greedy_admit`: returns
    ``(winners, first_loser, tracker)`` with winners in admission order
    and ``first_loser`` the query index that ended (stop-at-first) or
    first interrupted (skip-over) the walk, or ``None``.
    """
    tracker = FastTracker(index)
    winners: list[int] = []
    first_loser: "int | None" = None
    for qi in order:
        if tracker.try_admit(qi):
            winners.append(qi)
            continue
        if first_loser is None:
            first_loser = qi
        if not skip_over:
            break
    return winners, first_loser, tracker


def find_last(
    index: InstanceIndex,
    order: list[int],
    position: int,
) -> "int | None":
    """``last(winner)`` for a skip-over pass — the fast twin of
    :func:`repro.core.movement_window.find_last`.

    *position* locates the winner inside *order*.  One replay of the
    pass with the winner removed, her marginal load maintained
    incrementally, yields the admission test for every candidate
    position; the first failing one is the movement-window boundary.
    """
    capacity = index.capacity
    loads = index.op_loads_list
    query_ops = index.query_ops
    num_ops = index.num_operators

    winner_ops = bytearray(num_ops)
    winner_margin = 0.0
    for o in query_ops[order[position]]:
        winner_margin += loads[o]
        winner_ops[o] = 1

    running = bytearray(num_ops)
    used = 0.0

    def admit_if_fits(qi: int) -> None:
        nonlocal used, winner_margin
        margin = 0.0
        ops = query_ops[qi]
        for o in ops:
            if not running[o]:
                margin += loads[o]
        if used + margin > capacity + EPSILON:
            return
        used += margin
        for o in ops:
            if not running[o]:
                running[o] = 1
                if winner_ops[o]:
                    winner_margin -= loads[o]

    for qi in order[:position]:
        admit_if_fits(qi)
    for qi in order[position + 1:]:
        admit_if_fits(qi)
        if used + winner_margin > capacity + EPSILON:
            return qi
    return None


def movement_window_lasts(
    index: InstanceIndex,
    order: list[int],
    winners: list[int],
) -> dict[int, "int | None"]:
    """``last(w)`` for *every* winner of one skip-over pass.

    Calling :func:`find_last` per winner replays the order's prefix
    from scratch each time.  This kernel exploits that the replay
    without winner ``w`` is *identical* to the main walk up to ``w``'s
    position (``w`` contributes nothing before it is reached): one
    shared walk snapshots the admission state — running-operator mask,
    used capacity, and the operator activation count — at each
    winner's position, and only the per-winner suffix is replayed.

    Two further exactness-preserving shortcuts:

    * queries whose operators are all unshared
      (``index.simple_queries``) admit at exactly their precomputed
      total load and cannot alter anyone else's marginal, so their
      mask updates are skipped;
    * the winner test ``used + winner_margin`` only moves when an
      admission happens, so it is evaluated on admissions only (plus
      once up front), matching the reference's first-failing position.

    The winner's incrementally-shrinking marginal is reconstructed by
    subtracting already-running winner operators in *activation
    order* — the exact float-accumulation sequence of the reference —
    so results stay bitwise identical to
    :func:`repro.core.movement_window.find_last`.
    """
    n = len(order)
    num_ops = index.num_operators
    loads = index.op_loads_list
    query_ops = index.query_ops
    totals = index.total_loads_list
    simple = index.simple_queries
    cap_eps = index.capacity + EPSILON
    winner_set = set(winners)

    never = num_ops + 1  # activation index of never-activated operators
    act_index = [never] * num_ops
    act_count = 0
    snapshots: dict[int, tuple[int, bytes, float, int]] = {}
    running = bytearray(num_ops)
    used = 0.0
    for pos, qi in enumerate(order):
        if qi in winner_set:
            snapshots[qi] = (pos, bytes(running), used, act_count)
        if simple[qi]:
            margin = totals[qi]
            if used + margin <= cap_eps:
                used += margin
            continue
        ops = query_ops[qi]
        margin = 0.0
        for o in ops:
            if not running[o]:
                margin += loads[o]
        if used + margin > cap_eps:
            continue
        used += margin
        for o in ops:
            if not running[o]:
                running[o] = 1
                act_index[o] = act_count
                act_count += 1

    # Per-position triples save two list indexings per replay step.
    items = [(qi, simple[qi], totals[qi]) for qi in order]

    lasts: dict[int, "int | None"] = {}
    for w in winners:
        pos, running_bytes, used, act_before = snapshots[w]
        w_ops = query_ops[w]
        winner_margin = 0.0
        for o in w_ops:
            winner_margin += loads[o]
        already = sorted(
            (act_index[o], o) for o in w_ops if act_index[o] < act_before)
        for _, o in already:
            winner_margin -= loads[o]

        if used + winner_margin > cap_eps:
            lasts[w] = order[pos + 1] if pos + 1 < n else None
            continue
        # Admissions keep `used <= cap_eps`, so once the winner's
        # marginal is non-positive the test can never fire again.
        if winner_margin <= 0.0:
            lasts[w] = None
            continue
        winner_in = bytearray(num_ops)
        for o in w_ops:
            winner_in[o] = 1
        running = bytearray(running_bytes)
        last: "int | None" = None
        for qi, is_simple, total in items[pos + 1:]:
            if is_simple:
                margin = total
                if used + margin > cap_eps:
                    continue
                used += margin
            else:
                ops = query_ops[qi]
                margin = 0.0
                for o in ops:
                    if not running[o]:
                        margin += loads[o]
                if used + margin > cap_eps:
                    continue
                used += margin
                for o in ops:
                    if not running[o]:
                        running[o] = 1
                        if winner_in[o]:
                            winner_margin -= loads[o]
                if winner_margin <= 0.0:
                    break
            if used + winner_margin > cap_eps:
                last = qi
                break
        lasts[w] = last
    return lasts


def optimal_single_price_array(values: np.ndarray) -> tuple[float, float]:
    """Best uniform price on a bid array — O(n log n), exact.

    The vectorized twin of
    :func:`repro.core.two_price.optimal_single_price`: sort descending
    once, form ``rank × value`` in one multiply, take the *first*
    argmax (the reference's strict-improvement scan keeps the earliest
    maximum).  Products are ``int × float64`` either way, so prices and
    revenues are bitwise identical.
    """
    n = int(values.size)
    if n == 0:
        return float("inf"), 0.0
    ordered = np.sort(values)[::-1]
    revenues = np.arange(1, n + 1, dtype=np.int64) * ordered
    best = int(np.argmax(revenues))
    if not revenues[best] > 0.0:
        return float("inf"), 0.0
    return float(ordered[best]), float(revenues[best])
