"""Vectorized auction kernels — the ``"fast"`` selection path.

The package compiles an immutable :class:`AuctionInstance` into flat
arrays once (:class:`InstanceIndex`, cached on the instance) and runs
the paper's mechanisms on them: CSR row-sum load measures, a bitmask
greedy walk, an incremental remaining-load CAR, an O(n log n) uniform
price.  Every kernel is the bitwise twin of its pure-Python reference
(:mod:`repro.core.loads` / :mod:`repro.core.greedy` /
:mod:`repro.core.movement_window` / :mod:`repro.core.two_price`);
``tests/core/test_fastpath_differential.py`` pins the equivalence.

Selected through the :mod:`repro.core.selection` registry: spec string
``"fast"`` (or ``"fast:strict=true"`` to forbid silent fallback).
"""

from repro.core.fastpath.index import InstanceIndex
from repro.core.fastpath.kernels import (
    FastTracker,
    bid_order_indices,
    density_order,
    density_priorities,
    find_last,
    greedy_walk,
    movement_window_lasts,
    optimal_single_price_array,
)
from repro.core.fastpath.select import fast_select

__all__ = [
    "FastTracker",
    "InstanceIndex",
    "bid_order_indices",
    "density_order",
    "density_priorities",
    "fast_select",
    "find_last",
    "greedy_walk",
    "movement_window_lasts",
    "optimal_single_price_array",
]
