"""The randomized Two-price mechanism (Algorithm 3, Section IV-D).

Two-price is the paper's mechanism with a provable profit guarantee: it
is bid-strategyproof (Theorem 10) and its expected profit is at least
``OPT_C − 2h`` (Theorem 11), where ``OPT_C`` is the optimal *constant
pricing* profit and ``h`` the largest valuation.  The construction:

1–2. Sort by valuation and take ``H``, the maximal prefix that fits
     within capacity; ``v_L`` is the valuation of the first loser.
3.   If valuations tie across the ``H``/``L`` boundary, replace the tied
     block by the **largest subset of tied users that fits** alongside
     the strictly-higher ones — an exhaustive search, exponential in the
     number ``d`` of tied users.  Omitting this step gives the
     polynomial-time variant with the weaker ``OPT_C − d·h`` guarantee
     (Theorem 12).
4–6. Randomly halve ``H`` into ``A`` and ``B``; compute each half's
     optimal constant price; sell to each half at the *other* half's
     price (the Random Sampling Optimal Price auction of Goldberg et
     al.).

Because winners and payments never look at query loads, the mechanism
is strategyproof outright — but it is *not* sybil-immune (Theorem 20).
"""

from __future__ import annotations

import hashlib
from itertools import combinations

import numpy as np

from repro.core.greedy import greedy_admit
from repro.core.gv import bid_order
from repro.core.mechanism import Mechanism
from repro.core.model import AuctionInstance, Query
from repro.utils.rng import spawn_rng


def optimal_single_price(
    values: list[float], presorted: bool = False
) -> tuple[float, float]:
    """Best uniform price for a bid multiset: ``max_i i * v_(i)``.

    *values* need not be sorted.  Returns ``(price, revenue)`` where
    selling to every bidder with value >= price yields *revenue*.  For
    an empty list the price is ``inf`` (sell to nobody) and revenue 0.

    Callers evaluating many candidate multisets (profit sweeps, the
    guarantee experiments) can sort once and pass
    ``presorted=True`` — *values* must then already be in
    non-increasing order, and the O(n log n) re-sort per call is
    skipped.  :func:`repro.core.fastpath.optimal_single_price_array`
    is the vectorized twin.
    """
    if not values:
        return float("inf"), 0.0
    ordered = values if presorted else sorted(values, reverse=True)
    best_revenue = 0.0
    best_price = float("inf")
    for rank, value in enumerate(ordered, start=1):
        revenue = rank * value
        if revenue > best_revenue:
            best_revenue = revenue
            best_price = value
    return best_price, best_revenue


def largest_fitting_subset(
    instance: AuctionInstance,
    base_ids: set[str],
    candidates: list[Query],
    exhaustive_limit: int,
) -> list[Query]:
    """Largest subset of *candidates* fitting together with *base_ids*.

    Step 3 of Algorithm 3.  Exhaustive when ``len(candidates)`` is at
    most *exhaustive_limit* (the exponential search the paper allows);
    otherwise a marginal-load greedy approximation (the polynomial
    fallback noted in DESIGN.md).
    """
    capacity = instance.capacity
    base_ops: set[str] = set()
    for qid in base_ids:
        base_ops.update(instance.query(qid).operator_ids)
    base_used = sum(instance.operator(op).load for op in base_ops)

    def margin_of(query: Query, running: set[str]) -> float:
        return sum(
            instance.operator(op_id).load
            for op_id in query.operator_ids
            if op_id not in running
        )

    if len(candidates) <= exhaustive_limit:
        for size in range(len(candidates), 0, -1):
            for subset in combinations(candidates, size):
                running = set(base_ops)
                used = base_used
                for query in subset:
                    used += margin_of(query, running)
                    running.update(query.operator_ids)
                if used <= capacity + 1e-9:
                    return list(subset)
        return []
    # Greedy fallback: cheapest marginal load first, single pass.
    ordered = sorted(
        candidates, key=lambda q: (margin_of(q, base_ops), q.query_id))
    chosen: list[Query] = []
    running = set(base_ops)
    used = base_used
    for query in ordered:
        margin = margin_of(query, running)
        if used + margin <= capacity + 1e-9:
            used += margin
            running.update(query.operator_ids)
            chosen.append(query)
    return chosen


class TwoPrice(Mechanism):
    """The randomized Two-price mechanism.

    Parameters
    ----------
    seed:
        Seed (or Generator) for the random halving in Step 4.  Fixing it
        makes experiment runs reproducible.
    adjust_ties:
        Run Step 3 (the boundary-tie adjustment).  ``False`` gives the
        polynomial-time variant of Theorem 12.
    exhaustive_limit:
        Largest tied-block size for which Step 3 searches exhaustively;
        larger blocks fall back to a marginal-load greedy.
    partition_mode:
        ``"even"`` (default) halves ``H`` exactly, as Algorithm 3's
        Step 4 prescribes.  ``"coin"`` assigns each query to A or B by
        an independent fair coin — the variant Section V-C analyzes
        when showing the mechanism stays sybil-vulnerable.  ``"hash"``
        assigns each query by a salted hash of its id: still a fair
        independent coin over the salt, but *fixed per query* within
        one mechanism instance, independent of bids.  Conditioning on
        the partition this way makes each realization individually
        bid-strategyproof (the standard RSOP argument), which the
        strategyproofness tests exploit to compare payoffs exactly
        instead of estimating noisy expectations.
    """

    name = "Two-price"
    bid_strategyproof = True
    sybil_immune = False
    profit_guarantee = True

    def __init__(
        self,
        seed: "int | np.random.Generator | None" = None,
        adjust_ties: bool = True,
        exhaustive_limit: int = 16,
        partition_mode: str = "even",
    ) -> None:
        if partition_mode not in ("even", "coin", "hash"):
            raise ValueError(
                f"partition_mode must be 'even', 'coin' or 'hash', "
                f"got {partition_mode!r}")
        self._salt = seed if isinstance(seed, int) else 0
        self._rng = spawn_rng(seed)
        self._adjust_ties = adjust_ties
        self._exhaustive_limit = exhaustive_limit
        self._partition_mode = partition_mode

    def _select(self, instance: AuctionInstance):
        order = bid_order(instance)
        selection = greedy_admit(instance, order, skip_over=False)
        h_set = list(selection.winners)
        details: dict[str, object] = {
            "H": [q.query_id for q in h_set],
            "adjusted": False,
        }

        lost = selection.first_loser
        if (self._adjust_ties and lost is not None and h_set
                and h_set[-1].bid == lost.bid):
            v_boundary = lost.bid
            tied = [q for q in instance.queries if q.bid == v_boundary]
            keep = [q for q in h_set if q.bid != v_boundary]
            keep_ids = {q.query_id for q in keep}
            chosen = largest_fitting_subset(
                instance, keep_ids, tied, self._exhaustive_limit)
            h_set = keep + chosen
            details["adjusted"] = True
            details["tied_block_size"] = len(tied)
            details["H"] = [q.query_id for q in h_set]

        payments = self._random_sampling_prices(h_set, details)
        return payments, details

    def _partition(
        self, h_set: list[Query]
    ) -> tuple[list[Query], list[Query]]:
        """Steps 4–5: split ``H`` into the two price-sample halves.

        The single source of the partition draw — the fast selection
        kernel calls this too, so both paths consume the mechanism's
        randomness identically and a future partition-mode change
        cannot diverge them.
        """
        if self._partition_mode == "even":
            permutation = list(self._rng.permutation(len(h_set)))
            half = len(h_set) // 2
            side_a = [h_set[i] for i in permutation[:half]]
            side_b = [h_set[i] for i in permutation[half:]]
        elif self._partition_mode == "coin":
            flips = self._rng.random(len(h_set)) < 0.5
            side_a = [q for q, in_a in zip(h_set, flips) if in_a]
            side_b = [q for q, in_a in zip(h_set, flips) if not in_a]
        else:  # hash: per-query fair coin, fixed by (salt, query id)
            side_a, side_b = [], []
            for query in h_set:
                digest = hashlib.sha256(
                    f"{self._salt}:{query.query_id}".encode()).digest()
                (side_a if digest[0] % 2 == 0 else side_b).append(query)
        return side_a, side_b

    def _random_sampling_prices(
        self,
        h_set: list[Query],
        details: dict[str, object],
    ) -> dict[str, float]:
        """Steps 4–6: halve H, cross-apply each half's optimal price."""
        if not h_set:
            return {}
        side_a, side_b = self._partition(h_set)
        bids_a = sorted((q.bid for q in side_a), reverse=True)
        bids_b = sorted((q.bid for q in side_b), reverse=True)
        price_a, _ = optimal_single_price(bids_a, presorted=True)
        price_b, _ = optimal_single_price(bids_b, presorted=True)
        details["A"] = [q.query_id for q in side_a]
        details["B"] = [q.query_id for q in side_b]
        details["price_A"] = price_a
        details["price_B"] = price_b
        payments: dict[str, float] = {}
        for query in side_b:
            if query.bid > price_a:
                payments[query.query_id] = price_a
        for query in side_a:
            if query.bid > price_b:
                payments[query.query_id] = price_b
        return payments
