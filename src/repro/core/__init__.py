"""Core auction model and the paper's admission-control mechanisms.

Public surface:

* data model — :class:`Operator`, :class:`Query`,
  :class:`AuctionInstance`, :class:`AuctionOutcome`;
* load measures — :func:`total_load`, :func:`static_fair_share_load`,
  :func:`remaining_load`;
* mechanisms — :class:`CAR`, :class:`CAF`, :class:`CAFPlus`,
  :class:`CAT`, :class:`CATPlus`, :class:`GreedyByValuation`,
  :class:`TwoPrice`, :class:`RandomAdmission`,
  :class:`OptimalConstantPrice`, plus the name-based registry
  (:func:`make_mechanism`).
"""

from repro.core.caf import CAF, CAFPlus
from repro.core.car import CAR
from repro.core.cat import CAT, CATPlus
from repro.core.gv import GreedyByValuation
from repro.core.loads import (
    LoadTracker,
    remaining_load,
    static_fair_share_load,
    total_load,
)
from repro.core.mechanism import (
    Mechanism,
    MechanismSpec,
    make_mechanism,
    mechanism_params,
    register_mechanism,
    registered_mechanisms,
    resolve_mechanism,
    run_batch,
)
from repro.core.model import AuctionInstance, Operator, Query
from repro.core.selection import (
    FastSelection,
    ReferenceSelection,
    SelectionPath,
    SelectionSpec,
    make_selection,
    register_selection,
    registered_selections,
    resolve_selection,
)
from repro.core.optc import (
    ConstantPricing,
    OptimalConstantPrice,
    optimal_constant_pricing,
)
from repro.core.exact import (
    ExactSolution,
    greedy_value_gap,
    optimal_winner_set,
)
from repro.core.random_admission import RandomAdmission
from repro.core.result import AuctionOutcome
from repro.core.special_cases import KnapsackAuction, KUnitAuction
from repro.core.two_price import TwoPrice, optimal_single_price

register_mechanism("CAR", CAR)
register_mechanism("CAF", CAF)
register_mechanism("CAF+", CAFPlus)
register_mechanism("CAT", CAT)
register_mechanism("CAT+", CATPlus)
register_mechanism("GV", GreedyByValuation)
register_mechanism("Two-price", TwoPrice)
register_mechanism("Random", RandomAdmission)
register_mechanism("OPT_C", OptimalConstantPrice)
register_mechanism("k-unit", KUnitAuction)
register_mechanism("knapsack", KnapsackAuction)

#: The mechanism line-up of the paper's evaluation (Section VI).
PAPER_MECHANISMS = ("CAF", "CAF+", "CAT", "CAT+", "Two-price")

__all__ = [
    "AuctionInstance",
    "AuctionOutcome",
    "CAF",
    "CAFPlus",
    "CAR",
    "CAT",
    "CATPlus",
    "ConstantPricing",
    "ExactSolution",
    "FastSelection",
    "GreedyByValuation",
    "KUnitAuction",
    "KnapsackAuction",
    "LoadTracker",
    "Mechanism",
    "MechanismSpec",
    "Operator",
    "OptimalConstantPrice",
    "PAPER_MECHANISMS",
    "Query",
    "RandomAdmission",
    "ReferenceSelection",
    "SelectionPath",
    "SelectionSpec",
    "TwoPrice",
    "greedy_value_gap",
    "make_mechanism",
    "make_selection",
    "mechanism_params",
    "optimal_constant_pricing",
    "optimal_single_price",
    "optimal_winner_set",
    "register_mechanism",
    "register_selection",
    "resolve_mechanism",
    "resolve_selection",
    "registered_mechanisms",
    "registered_selections",
    "run_batch",
    "remaining_load",
    "static_fair_share_load",
    "total_load",
]
