"""Random admission baseline (Section VI, Table IV).

"A randomly admitting algorithm, which picks queries at random and
stops at the first query that does not fit in the remaining capacity."
The paper uses it purely as a runtime baseline; it charges nothing
(it has no pricing rule), so its profit is zero and every admitted
user's payoff equals her valuation.
"""

from __future__ import annotations

import numpy as np

from repro.core.greedy import greedy_admit
from repro.core.mechanism import Mechanism
from repro.core.model import AuctionInstance
from repro.utils.rng import spawn_rng


class RandomAdmission(Mechanism):
    """Admit a uniformly random prefix of queries; charge nothing."""

    name = "Random"
    bid_strategyproof = True  # Bids are ignored entirely.
    sybil_immune = False
    profit_guarantee = False

    def __init__(
        self, seed: "int | np.random.Generator | None" = None
    ) -> None:
        self._rng = spawn_rng(seed)

    def _select(self, instance: AuctionInstance):
        order = [instance.queries[i]
                 for i in self._rng.permutation(instance.num_queries)]
        selection = greedy_admit(instance, order, skip_over=False)
        payments = {q.query_id: 0.0 for q in selection.winners}
        details = {
            "first_loser": (None if selection.first_loser is None
                            else selection.first_loser.query_id),
        }
        return payments, details
