"""CAF and CAF+ — admission by static fair-share load (Section IV-B).

The fair-share mechanisms rank queries by bid per unit of *static
fair-share load* ``C^SF_i`` (Definition 3): each operator's load is
split evenly over all submitted queries that contain it.  Intuitively
CAF "operates as though there will be maximal operator sharing among
the accepted queries".

Both are strategyproof (Theorems 4 and 7) but **universally vulnerable
to sybil attack** (Theorem 15): faking low-value queries that share
your operators deflates your fair-share load, improves your rank and
lowers your payment — see :func:`repro.gametheory.attacks.fair_share_attack`.
"""

from __future__ import annotations

from repro.core.density import DensityMechanism, SkipOverDensityMechanism
from repro.core.loads import static_fair_share_load


class CAF(DensityMechanism):
    """CQ Admission based on Fair-share load (Algorithm 1).

    Stop-at-first greedy over ``b_i / C^SF_i`` priorities; every winner
    pays the first loser's fair-share density times her own fair-share
    load.
    """

    name = "CAF"
    bid_strategyproof = True
    sybil_immune = False
    profit_guarantee = False
    load_measure = staticmethod(static_fair_share_load)


class CAFPlus(SkipOverDensityMechanism):
    """CAF+ — the aggressive fair-share mechanism (Algorithm 2).

    Skips over queries that do not fit and keeps admitting lighter ones;
    winners pay by the movement-window rule.  Admits the most queries of
    any mechanism in the paper's evaluation, at the price of the lowest
    per-query payments (Figure 4) and a quadratic payment computation
    (Table IV).
    """

    name = "CAF+"
    bid_strategyproof = True
    sybil_immune = False
    profit_guarantee = False
    load_measure = staticmethod(static_fair_share_load)
