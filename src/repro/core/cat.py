"""CAT and CAT+ — admission by total load (Section IV-C).

The total-load mechanisms rank queries by bid per unit of *total load*
``C^T_i`` (the plain sum of the query's operator loads), i.e. they
operate "as though there will be minimal or no operator sharing among
the accepted queries".  A query's total load cannot be manipulated by
other users' behaviour, which is what buys CAT its robustness:

* **CAT** is strategyproof (Theorem 8) *and* sybil-immune — in fact
  sybil-strategyproof (Theorem 19).  It is the paper's recommended
  mechanism: the only one with both game-theoretic properties, and the
  best profit trade-off in the evaluation.
* **CAT+** is strategyproof (Theorem 9) but **not** sybil-immune
  (Theorem 17): a fake high-density query can push a competitor out of
  capacity range while costing the attacker almost nothing — the
  worked attack of Table II, reproduced by
  :func:`repro.gametheory.attacks.cat_plus_table2_attack`.
"""

from __future__ import annotations

from repro.core.density import DensityMechanism, SkipOverDensityMechanism
from repro.core.loads import total_load


class CAT(DensityMechanism):
    """CQ Admission based on Total load (stop-at-first).

    Identical to CAF with every incidence of ``C^SF`` replaced by
    ``C^T`` (Section IV-C): stop-at-first greedy over ``b_i / C^T_i``,
    first-loser pricing.
    """

    name = "CAT"
    bid_strategyproof = True
    sybil_immune = True
    profit_guarantee = False
    load_measure = staticmethod(total_load)


class CATPlus(SkipOverDensityMechanism):
    """CAT+ — the aggressive total-load mechanism.

    Skip-over admission with movement-window payments, in total-load
    units.
    """

    name = "CAT+"
    bid_strategyproof = True
    sybil_immune = False
    profit_guarantee = False
    load_measure = staticmethod(total_load)
