"""OPT_C — the optimal constant pricing benchmark (Section IV-D).

A *constant pricing mechanism* charges one price ``p``: users bidding
strictly above ``p`` must win and pay ``p``, users bidding strictly
below must lose, and users bidding exactly ``p`` may be placed either
way.  A price is *valid* only if the winners fit within capacity.
``OPT_C`` is the maximum profit of any valid constant price —
the benchmark Two-price's guarantee is stated against (Theorem 11).

The optimum is attained at one of the submitted bid values: raising
``p`` toward the next higher bid keeps the winner set (and validity)
unchanged while increasing per-winner revenue.  We therefore scan the
distinct bids in decreasing order, growing the mandatory winner set
incrementally; the first price whose mandatory winners no longer fit
ends the scan.  Users tied at ``p`` are packed by exhaustive search
below a size threshold and by a marginal-load greedy above it (with
operator sharing, maximal tie-packing is NP-hard; see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.core.mechanism import Mechanism
from repro.core.model import AuctionInstance, Query


@dataclass(frozen=True)
class ConstantPricing:
    """A valid constant price with its winner set and profit."""

    price: float
    winner_ids: tuple[str, ...]
    profit: float


def _pack_tied(
    instance: AuctionInstance,
    running_ops: set[str],
    used: float,
    tied: list[Query],
    exhaustive_limit: int,
) -> list[Query]:
    """Largest (or greedily large) subset of *tied* fitting in the
    remaining capacity, given the operators already running."""
    capacity = instance.capacity

    def margin_of(query: Query, running: set[str]) -> float:
        return sum(
            instance.operator(op_id).load
            for op_id in query.operator_ids
            if op_id not in running
        )

    if len(tied) <= exhaustive_limit:
        for size in range(len(tied), 0, -1):
            for subset in combinations(tied, size):
                running = set(running_ops)
                total = used
                for query in subset:
                    total += margin_of(query, running)
                    running.update(query.operator_ids)
                if total <= capacity + 1e-9:
                    return list(subset)
        return []
    # Greedy: cheapest first by marginal load at the start, single pass.
    ordered = sorted(
        tied, key=lambda q: (margin_of(q, running_ops), q.query_id))
    chosen: list[Query] = []
    running = set(running_ops)
    total = used
    for query in ordered:
        margin = margin_of(query, running)
        if total + margin <= capacity + 1e-9:
            total += margin
            running.update(query.operator_ids)
            chosen.append(query)
    return chosen


def optimal_constant_pricing(
    instance: AuctionInstance,
    exhaustive_limit: int = 12,
) -> ConstantPricing:
    """Return the best valid constant pricing for *instance*.

    The degenerate "sell to nobody" pricing (profit 0, price above every
    bid) is always valid and is returned when nothing better exists.
    """
    groups: dict[float, list[Query]] = {}
    for query in instance.queries:
        groups.setdefault(query.bid, []).append(query)
    best = ConstantPricing(price=float("inf"), winner_ids=(), profit=0.0)

    running_ops: set[str] = set()
    used = 0.0
    above_ids: list[str] = []
    for price in sorted(groups, reverse=True):
        # `running_ops`/`used`/`above_ids` currently describe exactly
        # the users bidding strictly above `price`.
        if used > instance.capacity + 1e-9:
            break  # mandatory winners no longer fit; nor will they below
        tied = groups[price]
        packed = _pack_tied(
            instance, running_ops, used, tied, exhaustive_limit)
        winner_ids = tuple(sorted(
            above_ids + [q.query_id for q in packed]))
        profit = price * len(winner_ids)
        if profit > best.profit:
            best = ConstantPricing(price, winner_ids, profit)
        # Absorb this bid level into the mandatory set for lower prices.
        for query in tied:
            for op_id in query.operator_ids:
                if op_id not in running_ops:
                    running_ops.add(op_id)
                    used += instance.operator(op_id).load
            above_ids.append(query.query_id)
    return best


class OptimalConstantPrice(Mechanism):
    """OPT_C packaged as a mechanism for the experiment harness.

    This is a *benchmark*, not a strategyproof mechanism: it uses the
    submitted bids as if they were true valuations and extracts the
    maximum uniform-price revenue from them.
    """

    name = "OPT_C"
    bid_strategyproof = False
    sybil_immune = False
    profit_guarantee = True

    def __init__(self, exhaustive_limit: int = 12) -> None:
        self._exhaustive_limit = exhaustive_limit

    def _select(self, instance: AuctionInstance):
        pricing = optimal_constant_pricing(instance, self._exhaustive_limit)
        payments = {qid: pricing.price for qid in pricing.winner_ids}
        details = {
            "price": pricing.price,
            "profit": pricing.profit,
        }
        return payments, details
