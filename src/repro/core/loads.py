"""The three load measures the paper's mechanisms are built on.

* **Total load** ``C^T_i`` — the sum of the loads of a query's
  operators, ignoring sharing (Section IV-C).  Used by CAT / CAT+.
* **Static fair-share load** ``C^SF_i`` — each operator's load divided
  by the number of *submitted* queries sharing it, summed over the
  query's operators (Definition 3).  Static: computed once from the
  submitted pool, independent of who wins.  Used by CAF / CAF+.
* **Remaining load** ``C^R_i`` — the load of the query's operators
  excluding those already provided by previously-chosen winners
  (Definition 2).  Dynamic: depends on the winner set so far.  Used by
  CAR for ranking, and by *every* mechanism for the capacity check,
  since the true marginal cost of admitting a query is its remaining
  load.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.model import AuctionInstance, Query


def total_load(instance: AuctionInstance, query: Query) -> float:
    """``C^T_i``: sum of the query's operator loads (sharing ignored)."""
    return sum(instance.operator(op_id).load for op_id in query.operator_ids)


def static_fair_share_load(instance: AuctionInstance, query: Query) -> float:
    """``C^SF_i``: sum of per-operator loads split over sharers.

    An operator shared by ``l`` submitted queries contributes ``c_j / l``
    (Definition 3).  Sharing degrees come from the full submitted pool,
    so the measure is *static* over the course of winner selection.
    """
    return sum(
        instance.operator(op_id).load / instance.sharing_degree(op_id)
        for op_id in query.operator_ids
    )


def remaining_load(
    instance: AuctionInstance,
    query: Query,
    admitted_operator_ids: Iterable[str],
) -> float:
    """``C^R_i``: load of operators not already run for admitted winners.

    *admitted_operator_ids* is the set of operators belonging to queries
    already chosen; those are excluded because admitting *query* does not
    pay for them again (Definition 2).
    """
    admitted = set(admitted_operator_ids)
    return sum(
        instance.operator(op_id).load
        for op_id in query.operator_ids
        if op_id not in admitted
    )


class LoadTracker:
    """Incrementally tracks the union load of an admitted set.

    Greedy mechanisms admit queries one by one; the tracker maintains the
    set of already-running operators so each admission test is
    O(|operators of the query|) instead of recomputing the union.
    """

    def __init__(self, instance: AuctionInstance) -> None:
        self._instance = instance
        self._running_ops: set[str] = set()
        self._used = 0.0

    @property
    def used_capacity(self) -> float:
        """Union load of every query admitted so far."""
        return self._used

    @property
    def running_operator_ids(self) -> frozenset[str]:
        """Operators currently paid for by the admitted set."""
        return frozenset(self._running_ops)

    def marginal_load(self, query: Query) -> float:
        """Remaining (marginal) load of admitting *query* right now."""
        operators = self._instance.operators
        running = self._running_ops
        return sum(
            operators[op_id].load
            for op_id in query.operator_ids
            if op_id not in running
        )

    def fits(self, query: Query) -> bool:
        """True if *query* fits in the remaining capacity."""
        margin = self.marginal_load(query)
        return self._used + margin <= self._instance.capacity + 1e-9

    def admit(self, query: Query) -> float:
        """Admit *query*; returns the marginal load it added."""
        margin = self.marginal_load(query)
        self._running_ops.update(query.operator_ids)
        self._used += margin
        return margin

    def try_admit(self, query: Query) -> bool:
        """Admit *query* if it fits; single marginal-load computation."""
        margin = self.marginal_load(query)
        if self._used + margin > self._instance.capacity + 1e-9:
            return False
        self._running_ops.update(query.operator_ids)
        self._used += margin
        return True
