"""The special-case auctions of Section III ("Relevant Background").

The paper situates the CQ auction among classical problems:

* **no sharing, equal loads, room for k queries** → auctioning ``k``
  identical goods; charging the ``(k+1)``-st highest bid is the
  classic bid-strategyproof rule (Vickrey's second-price auction when
  ``k = 1``) — :class:`KUnitAuction`;
* **no sharing, unequal loads** → the Knapsack Auction of Aggarwal &
  Hartline — :class:`KnapsackAuction`, the greedy-by-density
  ``(k+1)``-price variant, which is exactly what CAT degenerates to
  when no operator is shared (verified in the tests).

These exist as first-class mechanisms so the reductions in Section III
are executable: the test-suite checks that CAT ≡ KnapsackAuction on
sharing-free instances and that KnapsackAuction ≡ KUnitAuction on
equal-load instances.
"""

from __future__ import annotations

from repro.core.greedy import greedy_admit, priority_of, priority_order
from repro.core.loads import total_load
from repro.core.mechanism import Mechanism
from repro.core.model import AuctionInstance


class KUnitAuction(Mechanism):
    """k identical goods, (k+1)-st price.

    Capacity and per-query loads define ``k`` implicitly: with every
    query costing the same load ``c``, the server holds
    ``k = floor(capacity / c)`` queries.  The k highest bidders win and
    pay the (k+1)-st bid (0 if fewer than k+1 bidders).  Requires an
    equal-load, sharing-free instance.
    """

    name = "k-unit"
    bid_strategyproof = True
    sybil_immune = False
    profit_guarantee = False

    def _select(self, instance: AuctionInstance):
        loads = {total_load(instance, q) for q in instance.queries}
        if len(loads) > 1:
            raise ValueError(
                "k-unit auction requires equal query loads; got "
                f"{sorted(loads)}")
        if instance.max_sharing_degree() > 1:
            raise ValueError("k-unit auction requires no sharing")
        load = loads.pop() if loads else 1.0
        k = (instance.num_queries if load == 0
             else int(instance.capacity / load + 1e-9))
        ordered = sorted(instance.queries,
                         key=lambda q: (-q.bid, q.query_id))
        winners = ordered[:k]
        price = ordered[k].bid if len(ordered) > k else 0.0
        payments = {q.query_id: price for q in winners}
        details = {"k": k, "price": price}
        return payments, details


class KnapsackAuction(Mechanism):
    """Greedy-by-density knapsack auction, (k+1)-price style.

    Sort by bid per unit load, admit the maximal fitting prefix, and
    charge every winner the first loser's density times the winner's
    load — the natural monotone greedy from Aggarwal & Hartline's
    knapsack-auction setting.  Identical to CAT except that it
    *requires* a sharing-free instance (with sharing, "the processing
    load required of each query is not clear cut" and this reduction
    no longer applies).
    """

    name = "knapsack"
    bid_strategyproof = True
    sybil_immune = False
    profit_guarantee = False

    def _select(self, instance: AuctionInstance):
        if instance.max_sharing_degree() > 1:
            raise ValueError(
                "knapsack auction requires no operator sharing")
        order = priority_order(instance, total_load)
        selection = greedy_admit(instance, order, skip_over=False)
        lost = selection.first_loser
        details: dict[str, object] = {
            "first_loser": None if lost is None else lost.query_id,
        }
        if lost is None:
            return {q.query_id: 0.0 for q in selection.winners}, details
        price_per_unit = priority_of(lost.bid, total_load(instance, lost))
        details["price_per_unit_load"] = price_per_unit
        payments = {
            q.query_id: total_load(instance, q) * price_per_unit
            for q in selection.winners
        }
        return payments, details
