"""Auction outcomes and the Section VI performance metrics.

An :class:`AuctionOutcome` records which queries won and what each pays,
and derives the paper's metrics:

* **profit** — the sum of the payments of the admitted queries;
* **admission rate** — the percentage of queries admitted;
* **total user payoff** — sum over winners of valuation minus payment
  ("an indication of total user satisfaction");
* **system utilization** — the used fraction of server capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping

from repro.core.model import AuctionInstance
from repro.utils.validation import ValidationError


@dataclass(frozen=True)
class AuctionOutcome:
    """Winners and payments for one auction run.

    ``payments`` has an entry for every *winning* query id; losers
    implicitly pay zero (the mechanisms never charge losers).
    ``mechanism`` names the mechanism that produced the outcome, and
    ``details`` carries mechanism-specific diagnostics (e.g. the losing
    query that set the price, or Two-price's sampled partition).
    """

    instance: AuctionInstance
    payments: Mapping[str, float]
    mechanism: str = ""
    details: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "payments", dict(self.payments))
        object.__setattr__(self, "details", dict(self.details))
        for qid, payment in self.payments.items():
            if not self.instance.has_query(qid):
                raise ValidationError(
                    f"outcome pays unknown query {qid!r}")
            if payment < -1e-9:
                raise ValidationError(
                    f"negative payment {payment!r} for query {qid!r}")

    # ------------------------------------------------------------------
    # Winner accounting
    # ------------------------------------------------------------------

    @property
    def winner_ids(self) -> frozenset[str]:
        """Ids of the admitted queries."""
        return frozenset(self.payments)

    def is_winner(self, query_id: str) -> bool:
        """True if *query_id* was admitted."""
        return query_id in self.payments

    def payment(self, query_id: str) -> float:
        """Payment charged to *query_id* (0 for losers)."""
        return self.payments.get(query_id, 0.0)

    def payoff(self, query_id: str) -> float:
        """User payoff ``v_i - p_i`` if admitted, else 0 (Section II)."""
        if not self.is_winner(query_id):
            return 0.0
        return self.instance.query(query_id).true_value - self.payment(query_id)

    def owner_payoff(self, owner_id: str) -> float:
        """Aggregate payoff of a user over all queries she submitted.

        Sybil attackers are responsible for their fake queries' payments
        (Section V), so fake queries contribute ``-p_i`` when their
        valuation to the attacker is zero.
        """
        total = 0.0
        for query in self.instance.queries:
            if query.owner_id == owner_id:
                total += self.payoff(query.query_id)
        return total

    # ------------------------------------------------------------------
    # Section VI metrics
    # ------------------------------------------------------------------

    @property
    def profit(self) -> float:
        """System profit: the sum of winners' payments."""
        return sum(self.payments.values())

    @property
    def admission_rate(self) -> float:
        """Fraction of submitted queries admitted (0..1)."""
        if self.instance.num_queries == 0:
            return 0.0
        return len(self.payments) / self.instance.num_queries

    @property
    def total_user_payoff(self) -> float:
        """Sum of winners' valuations minus their payments."""
        return sum(self.payoff(qid) for qid in self.payments)

    @property
    def used_capacity(self) -> float:
        """Union load of the admitted queries (shared operators once)."""
        return self.instance.union_load(self.payments)

    @property
    def utilization(self) -> float:
        """Used capacity as a fraction of server capacity (0..1)."""
        return self.used_capacity / self.instance.capacity

    def validate_capacity(self) -> None:
        """Raise if the admitted set exceeds server capacity."""
        if self.used_capacity > self.instance.capacity + 1e-6:
            raise ValidationError(
                f"admitted set load {self.used_capacity} exceeds "
                f"capacity {self.instance.capacity}")

    def summary(self) -> dict[str, float]:
        """The Section VI metrics as a plain dictionary."""
        return {
            "profit": self.profit,
            "admission_rate": self.admission_rate,
            "total_user_payoff": self.total_user_payoff,
            "utilization": self.utilization,
            "winners": float(len(self.payments)),
        }
