"""Shared implementation of the density-based mechanisms.

CAF, CAF+, CAT and CAT+ are one algorithm family (Section IV):
priorities are bids per unit load, with the family members differing in

* the **load measure** — static fair-share load ``C^SF`` (CAF/CAF+,
  Definition 3) versus total load ``C^T`` (CAT/CAT+), and
* the **admission walk** — stop at the first query that does not fit
  (CAF/CAT) versus skip over it and keep scanning (CAF+/CAT+).

Payments follow the walk: the stop-at-first variants charge every
winner the first loser's density times the winner's load (Algorithm 1,
step 5); the skip-over variants use the movement-window rule
(Algorithm 2, Definitions 5–6).
"""

from __future__ import annotations

from repro.core.greedy import (
    LoadMeasure,
    greedy_admit,
    priority_of,
    priority_order,
)
from repro.core.mechanism import Mechanism
from repro.core.model import AuctionInstance
from repro.core.movement_window import movement_window_payment


class DensityMechanism(Mechanism):
    """Stop-at-first density mechanism (the CAF / CAT shape).

    Winners are the maximal fitting prefix of the density order; every
    winner *i* pays ``C_i · b_lost / C_lost`` where ``lost`` is the
    first query that did not fit.  If every query fits, the critical
    value of each winner is zero and nobody pays.
    """

    load_measure: LoadMeasure

    def _select(self, instance: AuctionInstance):
        order = priority_order(instance, self.load_measure)
        selection = greedy_admit(instance, order, skip_over=False)
        lost = selection.first_loser
        details: dict[str, object] = {
            "priority_order": [q.query_id for q in order],
            "first_loser": None if lost is None else lost.query_id,
        }
        if lost is None:
            payments = {q.query_id: 0.0 for q in selection.winners}
            return payments, details
        price_per_unit = priority_of(
            lost.bid, self.load_measure(instance, lost))
        details["price_per_unit_load"] = price_per_unit
        payments = {
            q.query_id: self.load_measure(instance, q) * price_per_unit
            for q in selection.winners
        }
        return payments, details


class SkipOverDensityMechanism(Mechanism):
    """Skip-over density mechanism (the CAF+ / CAT+ shape).

    The admission walk continues past queries that do not fit, "hoping
    to find later, lower load, queries that will fit"; each winner pays
    according to her movement window.
    """

    load_measure: LoadMeasure

    def _select(self, instance: AuctionInstance):
        order = priority_order(instance, self.load_measure)
        selection = greedy_admit(instance, order, skip_over=True)
        payments: dict[str, float] = {}
        last_map: dict[str, str | None] = {}
        for winner in selection.winners:
            payment, last = movement_window_payment(
                instance, order, winner, self.load_measure)
            payments[winner.query_id] = payment
            last_map[winner.query_id] = None if last is None else last.query_id
        details = {
            "priority_order": [q.query_id for q in order],
            "first_loser": (None if selection.first_loser is None
                            else selection.first_loser.query_id),
            "last": last_map,
        }
        return payments, details
