"""GV — Greedy-by-Valuation (Section IV-D).

The simplest strategyproof mechanism in the paper: ignore loads
entirely, sort queries by bid, admit the maximal fitting prefix, and
charge every winner the bid of the first losing query (a ``(k+1)``-st
price rule).  GV is the deterministic skeleton the randomized Two-price
mechanism is built on; on its own it "does not admit a profit
guarantee", and in the paper's experiments it "echoes the behavior of
Two-price" (Section VI-A), which our benches confirm.
"""

from __future__ import annotations

from repro.core.greedy import greedy_admit
from repro.core.mechanism import Mechanism
from repro.core.model import AuctionInstance, Query


def bid_order(instance: AuctionInstance) -> list[Query]:
    """Queries sorted by non-increasing bid, ties broken by id."""
    return sorted(instance.queries, key=lambda q: (-q.bid, q.query_id))


class GreedyByValuation(Mechanism):
    """Sort by bid, admit the fitting prefix, charge the first loser's bid.

    Strategyproof: allocation is monotone in the bid, and the first
    loser's bid is exactly each winner's critical value (with loads
    playing no role in payments, there is nothing to manipulate by
    misreporting operators either).
    """

    name = "GV"
    bid_strategyproof = True
    sybil_immune = False
    profit_guarantee = False

    def _select(self, instance: AuctionInstance):
        order = bid_order(instance)
        selection = greedy_admit(instance, order, skip_over=False)
        lost = selection.first_loser
        details: dict[str, object] = {
            "bid_order": [q.query_id for q in order],
            "first_loser": None if lost is None else lost.query_id,
        }
        price = 0.0 if lost is None else lost.bid
        details["price"] = price
        payments = {q.query_id: price for q in selection.winners}
        return payments, details
