"""Pluggable winner-selection paths for the auction mechanisms.

The mechanisms own their *semantics*; a :class:`SelectionPath` chooses
the *implementation* that computes them:

* :class:`ReferenceSelection` — each mechanism's pure-Python
  ``_select``, the executable form of the paper's algorithms;
* :class:`FastSelection` — the :mod:`repro.core.fastpath` array
  kernels, bitwise identical to the reference (pinned by the
  differential suite), falling back to ``_select`` for mechanisms
  without a fast kernel (or raising, with ``strict=true``).

Selection paths are *spec-string addressable* through a registry
mirroring :class:`repro.core.mechanism.MechanismSpec` and
:class:`repro.dsms.backend.BackendSpec`: ``"reference"``, ``"fast"``,
``"fast:strict=true"`` — the currency of
:class:`~repro.service.builder.ServiceConfig`, the cluster federation
and the CLI's ``--selection`` flag.  A path is stateless, so one
instance may serve any number of mechanisms concurrently.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from collections.abc import Callable, Mapping

from repro.utils.registry import SpecRegistry
from repro.utils.specparse import parse_spec_text
from repro.utils.validation import ValidationError


class SelectionPath(abc.ABC):
    """Computes a mechanism's ``(payments, details)`` for an instance.

    Implementations must reproduce the mechanism's reference semantics
    *exactly* — same winners, same payments, same details ordering; a
    selection path trades representation, never outcomes.
    """

    #: Registry name of the selection path.
    name: str = "selection"

    @abc.abstractmethod
    def select(
        self, mechanism, instance
    ) -> tuple[dict[str, float], dict[str, object]]:
        """Run *mechanism* on the (sealed) *instance*."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class ReferenceSelection(SelectionPath):
    """The mechanisms' own pure-Python ``_select`` implementations."""

    name = "reference"

    def select(self, mechanism, instance):
        return mechanism._select(instance)


class FastSelection(SelectionPath):
    """The :mod:`repro.core.fastpath` array kernels.

    Mechanisms without a fast kernel (custom subclasses, the exact and
    benchmark mechanisms) fall back to their reference ``_select``;
    with ``strict=True`` the fallback raises instead — the mode the
    differential tests run in, so a silently missing kernel cannot
    masquerade as a passing equivalence.
    """

    name = "fast"

    def __init__(self, strict: bool = False) -> None:
        self._strict = bool(strict)

    def select(self, mechanism, instance):
        from repro.core.fastpath import fast_select

        result = fast_select(mechanism, instance)
        if result is not None:
            return result
        if self._strict:
            raise ValidationError(
                f"mechanism {mechanism.name!r} has no fast selection "
                f"kernel; run it with selection='reference' (or drop "
                f"strict=true to allow the fallback)")
        return mechanism._select(instance)


# ----------------------------------------------------------------------
# Registry and specs (mirrors repro.core.mechanism / repro.dsms.backend)
# ----------------------------------------------------------------------

#: The selection-path registry (shared machinery: utils.registry).
_REGISTRY = SpecRegistry("selection path", param_noun="selection path")


def register_selection(
    name: str, factory: Callable[..., SelectionPath]
) -> None:
    """Register a selection-path *factory* (case-insensitive name)."""
    _REGISTRY.register(name, factory)


def _lookup(name: str) -> Callable[..., SelectionPath]:
    return _REGISTRY.lookup(name)


def selection_params(name: str) -> "tuple[str, ...] | None":
    """Parameter names the factory of *name* accepts (None = open)."""
    return _REGISTRY.params(name)


def make_selection(name: str, **kwargs: object) -> SelectionPath:
    """Instantiate a registered selection path, validating kwargs."""
    return _REGISTRY.create(name, **kwargs)


def registered_selections() -> Mapping[str, Callable[..., SelectionPath]]:
    """Read-only view of the registry (name → factory)."""
    return _REGISTRY.as_mapping()


@dataclass(frozen=True)
class SelectionSpec:
    """A selection-path name plus declared, validated parameters.

    >>> SelectionSpec.parse("fast:strict=true")
    SelectionSpec(name='fast', params={'strict': True})
    """

    name: str
    params: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("selection spec needs a non-empty name")
        object.__setattr__(self, "params", dict(self.params))

    @classmethod
    def parse(cls, text: str) -> "SelectionSpec":
        """Parse ``"name"`` or ``"name:key=value,key=value"``."""
        name, params = parse_spec_text(text, what="selection spec")
        return cls(name, params)

    def validate(self) -> "SelectionSpec":
        """Check name and params against the registry; returns self."""
        _lookup(self.name)
        _REGISTRY.validate_params(self.name, self.params)
        return self

    def create(self) -> SelectionPath:
        """Instantiate the selection path this spec describes."""
        return make_selection(self.name, **self.params)

    def __str__(self) -> str:
        if not self.params:
            return self.name
        rendered = ",".join(
            f"{key}={value}"
            for key, value in sorted(self.params.items()))
        return f"{self.name}:{rendered}"


#: The default path every mechanism starts on.
_DEFAULT = ReferenceSelection()


def default_selection() -> SelectionPath:
    """The process-wide default selection path (``"reference"``)."""
    return _DEFAULT


def resolve_selection(
    selection: "SelectionPath | SelectionSpec | str",
) -> SelectionPath:
    """Coerce any accepted selection form to a live instance.

    Accepts a live :class:`SelectionPath`, a :class:`SelectionSpec`,
    or a spec string like ``"reference"`` / ``"fast:strict=true"``.
    """
    if isinstance(selection, SelectionPath):
        return selection
    if isinstance(selection, SelectionSpec):
        return selection.create()
    if isinstance(selection, str):
        return SelectionSpec.parse(selection).create()
    raise ValidationError(
        f"cannot resolve a selection path from {selection!r}; pass a "
        f"SelectionPath, a SelectionSpec, or a spec string like "
        f"'reference' or 'fast'")


register_selection("reference", ReferenceSelection)
register_selection("fast", FastSelection)
