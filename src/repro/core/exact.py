"""Exact optimal winner selection — the benchmark greedy cannot be.

Section III explains why optimal admission with shared operators is
hard: even a special case reduces to the densest-subgraph problem, so
no polynomial algorithm is known.  For *small* instances, though, the
optimum is computable by branch-and-bound, which gives the library two
things the paper's discussion implies but cannot plot:

* the **social-welfare optimum** ``max Σ bids`` over fitting sets —
  an upper bound on any mechanism's winner-set value; and
* the **price of greedy**: how far the CAF/CAT winner sets fall short
  of that optimum (see ``benchmarks/bench_exact_gap.py``).

The search branches on queries in decreasing bid order, bounding with
the remaining queries' total bid sum, and prunes by marginal load.
Exponential worst case — guarded by ``max_queries``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import AuctionInstance, Query
from repro.utils.validation import require


@dataclass(frozen=True)
class ExactSolution:
    """An optimal fitting winner set and its total bid value."""

    winner_ids: tuple[str, ...]
    total_value: float
    explored_nodes: int


def optimal_winner_set(
    instance: AuctionInstance,
    max_queries: int = 24,
) -> ExactSolution:
    """Maximum-total-bid fitting subset, by branch-and-bound.

    Raises :class:`ValidationError` when the instance exceeds
    *max_queries* (the search is exponential; the guard keeps callers
    honest about where "exact" is affordable).
    """
    require(instance.num_queries <= max_queries,
            f"exact search limited to {max_queries} queries "
            f"(instance has {instance.num_queries})")
    queries = sorted(instance.queries, key=lambda q: (-q.bid, q.query_id))
    suffix_value = [0.0] * (len(queries) + 1)
    for index in range(len(queries) - 1, -1, -1):
        suffix_value[index] = suffix_value[index + 1] + queries[index].bid

    best_value = 0.0
    best_set: tuple[str, ...] = ()
    explored = 0
    capacity = instance.capacity
    operators = instance.operators

    def marginal(query: Query, running: set[str]) -> float:
        return sum(operators[op_id].load
                   for op_id in query.operator_ids
                   if op_id not in running)

    def search(index: int, value: float, used: float,
               running: set[str], chosen: list[str]) -> None:
        nonlocal best_value, best_set, explored
        explored += 1
        if value > best_value:
            best_value = value
            best_set = tuple(sorted(chosen))
        if index == len(queries):
            return
        if value + suffix_value[index] <= best_value:
            return  # even taking everything left cannot improve
        query = queries[index]
        margin = marginal(query, running)
        if used + margin <= capacity + 1e-9:
            added = [op for op in query.operator_ids
                     if op not in running]
            running.update(added)
            chosen.append(query.query_id)
            search(index + 1, value + query.bid, used + margin,
                   running, chosen)
            chosen.pop()
            running.difference_update(added)
        search(index + 1, value, used, running, chosen)

    search(0, 0.0, 0.0, set(), [])
    return ExactSolution(
        winner_ids=best_set,
        total_value=best_value,
        explored_nodes=explored,
    )


def greedy_value_gap(
    instance: AuctionInstance,
    mechanism_winner_ids: "frozenset[str] | set[str]",
    max_queries: int = 24,
) -> tuple[float, float]:
    """(greedy value, optimal value) for a mechanism's winner set."""
    greedy_value = sum(
        instance.query(qid).bid for qid in mechanism_winner_ids)
    optimum = optimal_winner_set(instance, max_queries=max_queries)
    return greedy_value, optimum.total_value
