"""Mechanism base class, registry, and declarative mechanism specs.

Every admission-control mechanism maps an :class:`AuctionInstance` to an
:class:`AuctionOutcome` (winners + payments).  Mechanisms read only the
public part of a query — operators and bid — never the private
valuation; the base class enforces that by handing subclasses a
*sealed* view where ``valuation`` is replaced by the bid.

A module-level registry maps mechanism names (``"CAF"``, ``"CAT+"``,
``"Two-price"``, ...) to factories so experiments can be configured by
name.  :class:`MechanismSpec` layers a declarative, validated
configuration on top of the registry: a name plus typed parameters,
parseable from compact strings like ``"two-price:seed=7"`` — the
currency of CLIs, config files and the :mod:`repro.service` layer.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Mapping

from repro.core.model import AuctionInstance, Query
from repro.core.result import AuctionOutcome
from repro.core.selection import (
    SelectionPath,
    SelectionSpec,
    default_selection,
    resolve_selection,
)
from repro.utils.registry import SpecRegistry
from repro.utils.specparse import parse_param_value, parse_spec_text
from repro.utils.validation import ValidationError


class Mechanism(abc.ABC):
    """Base class for admission-control auction mechanisms.

    Subclasses implement :meth:`_select`, returning the winner→payment
    mapping plus a diagnostics dictionary.  :meth:`run` wraps it with
    capacity validation and outcome construction.
    """

    #: Human-readable mechanism name (matches the paper's).
    name: str = "mechanism"

    #: Whether the paper proves the mechanism bid-strategyproof.
    bid_strategyproof: bool = True

    #: Whether the paper proves the mechanism sybil-immune.
    sybil_immune: bool = False

    #: Whether the mechanism carries a provable profit guarantee.
    profit_guarantee: bool = False

    #: The selection path this mechanism runs on: ``None`` means the
    #: process default (``"reference"``).  Set per instance with
    #: :meth:`use_selection`; a ``run(..., selection=...)`` argument
    #: overrides it for one call.
    selection: "SelectionPath | SelectionSpec | str | None" = None

    def use_selection(
        self, selection: "SelectionPath | SelectionSpec | str"
    ) -> "Mechanism":
        """Pin this mechanism to a selection path; returns ``self``.

        Accepts any form :func:`repro.core.selection.resolve_selection`
        does — ``"reference"``, ``"fast"``, ``"fast:strict=true"``, a
        spec, or a live path.  The resolved path is stored, so specs
        fail here (with the registry's menu) rather than mid-auction.
        """
        self.selection = resolve_selection(selection)
        return self

    def _selection_path(
        self, override: "SelectionPath | SelectionSpec | str | None"
    ) -> SelectionPath:
        selection = override if override is not None else self.selection
        if selection is None:
            return default_selection()
        return resolve_selection(selection)

    def run(
        self,
        instance: AuctionInstance,
        *,
        selection: "SelectionPath | SelectionSpec | str | None" = None,
    ) -> AuctionOutcome:
        """Run the auction on *instance* and return the outcome.

        The outcome is validated against server capacity; a mechanism
        that over-admits is a bug, not a modelling choice.  *selection*
        overrides the mechanism's pinned selection path for this call;
        every path produces identical outcomes (the differential suite
        pins it), so the choice is purely a throughput knob.
        """
        path = self._selection_path(selection)
        payments, details = path.select(self, self._seal(instance))
        outcome = AuctionOutcome(
            instance=instance,
            payments=payments,
            mechanism=self.name,
            details=details,
        )
        outcome.validate_capacity()
        return outcome

    def run_many(
        self,
        instances: Iterable[AuctionInstance],
        *,
        selection: "SelectionPath | SelectionSpec | str | None" = None,
    ) -> list[AuctionOutcome]:
        """Run the auction on every instance, in order.

        The batch entry point for high-throughput sweeps: one mechanism
        object, many instances.  Stateful mechanisms (e.g. Two-price's
        random partition draws) consume their randomness sequentially,
        so a batch is reproducible given the seed and the input order.
        """
        return [self.run(instance, selection=selection)
                for instance in instances]

    @staticmethod
    def _seal(instance: AuctionInstance) -> AuctionInstance:
        """Hide private valuations from the mechanism.

        Returns a copy of *instance* where each query's valuation equals
        its bid.  Mechanisms therefore cannot accidentally peek at the
        truth, which keeps manipulation experiments honest: what a user
        *submits* is all the system ever sees.

        In the common truthful case — no query's valuation diverges
        from its bid — the instance already *is* its sealed view, and
        is returned unchanged: no per-query copies, no rebuilt index
        maps, and any cached fast-path index stays warm.

        Lazy columnar instances (repro.sim.columnar) assert the
        truthful case up front via ``_all_truthful`` so sealing does
        not force their query objects into existence.
        """
        if getattr(instance, "_all_truthful", False):
            return instance
        if all(q.valuation is None or q.valuation == q.bid
               for q in instance.queries):
            return instance
        queries = tuple(
            q if q.valuation is None or q.valuation == q.bid else Query(
                query_id=q.query_id,
                operator_ids=q.operator_ids,
                bid=q.bid,
                valuation=q.bid,
                owner=q.owner,
            )
            for q in instance.queries
        )
        return AuctionInstance._from_validated(instance, queries)

    @abc.abstractmethod
    def _select(
        self, instance: AuctionInstance
    ) -> tuple[dict[str, float], dict[str, object]]:
        """Choose winners and payments; return (payments, details)."""

    def properties(self) -> dict[str, bool]:
        """The Table I property row for this mechanism."""
        return {
            "strategyproof": self.bid_strategyproof,
            "sybil_immune": self.sybil_immune,
            "profit_guarantee": self.profit_guarantee,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


def run_batch(
    runs: "Iterable[tuple[Mechanism, AuctionInstance]]",
) -> list[AuctionOutcome]:
    """Run ``(mechanism, instance)`` pairs in order, batching.

    The cross-mechanism batch hook: consecutive runs sharing the *same*
    mechanism object are dispatched through one
    :meth:`Mechanism.run_many` call, so a caller auctioning many
    instances — the :mod:`repro.cluster` federation running all shard
    auctions of a period — goes through the batch path instead of N
    single dispatches.  Outcomes come back in input order, and results
    are identical to running each pair with :meth:`Mechanism.run`:
    stateful mechanisms consume their randomness sequentially either
    way.
    """
    outcomes: list[AuctionOutcome] = []
    group_mechanism: "Mechanism | None" = None
    group: list[AuctionInstance] = []
    for mechanism, instance in runs:
        if mechanism is not group_mechanism and group:
            outcomes.extend(group_mechanism.run_many(group))
            group = []
        group_mechanism = mechanism
        group.append(instance)
    if group:
        outcomes.extend(group_mechanism.run_many(group))
    return outcomes


#: The mechanism registry (shared machinery: utils.registry).
_REGISTRY = SpecRegistry("mechanism")


def register_mechanism(name: str, factory: Callable[[], Mechanism]) -> None:
    """Register a mechanism *factory* under *name* (case-insensitive)."""
    _REGISTRY.register(name, factory)


def _lookup(name: str) -> Callable[[], Mechanism]:
    return _REGISTRY.lookup(name)


def mechanism_params(name: str) -> "tuple[str, ...] | None":
    """Parameter names the factory of *name* accepts.

    Returns ``None`` when the factory's signature cannot be inspected
    or it takes ``**kwargs`` — meaning "anything goes".
    """
    return _REGISTRY.params(name)


def _validate_params(name: str, params: Mapping[str, object]) -> None:
    """Reject *params* the factory of *name* does not accept."""
    _REGISTRY.validate_params(name, params)


def make_mechanism(name: str, **kwargs: object) -> Mechanism:
    """Instantiate a registered mechanism by name.

    ``kwargs`` are forwarded to the factory, letting callers configure
    e.g. the Two-price seed: ``make_mechanism("two-price", seed=7)``.
    They are validated against the factory's signature first, so a typo
    fails with the accepted parameter names instead of an opaque
    ``TypeError`` from deep inside the constructor.
    """
    return _REGISTRY.create(name, **kwargs)


def registered_mechanisms() -> Mapping[str, Callable[[], Mechanism]]:
    """Read-only view of the registry (name → factory)."""
    return _REGISTRY.as_mapping()


#: Backwards-compatible alias (the parser now lives in utils.specparse
#: so every spec-addressable registry shares one grammar).
_parse_param_value = parse_param_value


@dataclass(frozen=True)
class MechanismSpec:
    """A mechanism name plus declared, validated parameters.

    The declarative counterpart of :func:`make_mechanism`: a spec can
    be built programmatically, parsed from a compact string, stored in
    a config, and turned into a live :class:`Mechanism` with
    :meth:`create`.  Parameters are validated against the registered
    factory's signature, so invalid configurations fail at *spec* time
    with the accepted parameter names.

    >>> MechanismSpec.parse("two-price:seed=7,partition_mode=hash")
    MechanismSpec(name='two-price', params={'seed': 7, 'partition_mode': 'hash'})
    """

    name: str
    params: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("mechanism spec needs a non-empty name")
        object.__setattr__(self, "params", dict(self.params))

    @classmethod
    def parse(cls, text: str) -> "MechanismSpec":
        """Parse ``"name"`` or ``"name:key=value,key=value"``.

        Values go through a literal parser (``seed=7`` is an int,
        ``adjust_ties=false`` a bool); anything unparseable stays a
        string (``partition_mode=hash``).
        """
        name, params = parse_spec_text(text, what="mechanism spec")
        return cls(name, params)

    def accepted_params(self) -> "tuple[str, ...] | None":
        """Parameters the underlying factory accepts (None = open)."""
        return mechanism_params(self.name)

    def accepts(self, param: str) -> bool:
        """Whether the underlying factory takes a *param* keyword."""
        accepted = self.accepted_params()
        return accepted is None or param in accepted

    def validate(self) -> "MechanismSpec":
        """Check name and params against the registry; returns self."""
        _lookup(self.name)  # raises KeyError if unknown
        _validate_params(self.name, self.params)
        return self

    def with_params(self, **params: object) -> "MechanismSpec":
        """A copy with *params* merged over the existing ones."""
        return MechanismSpec(self.name, {**self.params, **params})

    def create(self) -> Mechanism:
        """Instantiate the mechanism this spec describes."""
        return make_mechanism(self.name, **self.params)

    def __str__(self) -> str:
        if not self.params:
            return self.name
        rendered = ",".join(
            f"{key}={value}" for key, value in sorted(self.params.items()))
        return f"{self.name}:{rendered}"


def resolve_mechanism(
    mechanism: "Mechanism | MechanismSpec | str",
) -> Mechanism:
    """Coerce a mechanism given in any accepted form to an instance.

    Accepts a live :class:`Mechanism`, a :class:`MechanismSpec`, or a
    spec string like ``"CAT"`` / ``"two-price:seed=7"``.
    """
    if isinstance(mechanism, Mechanism):
        return mechanism
    if isinstance(mechanism, MechanismSpec):
        return mechanism.create()
    if isinstance(mechanism, str):
        return MechanismSpec.parse(mechanism).create()
    raise ValidationError(
        f"cannot resolve a mechanism from {mechanism!r}; pass a "
        f"Mechanism, a MechanismSpec, or a spec string like 'CAT' or "
        f"'two-price:seed=7'")
