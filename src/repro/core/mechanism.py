"""Mechanism base class and registry.

Every admission-control mechanism maps an :class:`AuctionInstance` to an
:class:`AuctionOutcome` (winners + payments).  Mechanisms read only the
public part of a query — operators and bid — never the private
valuation; the base class enforces that by handing subclasses a
*sealed* view where ``valuation`` is replaced by the bid.

A module-level registry maps mechanism names (``"CAF"``, ``"CAT+"``,
``"Two-price"``, ...) to factories so experiments can be configured by
name.
"""

from __future__ import annotations

import abc
from collections.abc import Callable, Mapping

from repro.core.model import AuctionInstance, Query
from repro.core.result import AuctionOutcome


class Mechanism(abc.ABC):
    """Base class for admission-control auction mechanisms.

    Subclasses implement :meth:`_select`, returning the winner→payment
    mapping plus a diagnostics dictionary.  :meth:`run` wraps it with
    capacity validation and outcome construction.
    """

    #: Human-readable mechanism name (matches the paper's).
    name: str = "mechanism"

    #: Whether the paper proves the mechanism bid-strategyproof.
    bid_strategyproof: bool = True

    #: Whether the paper proves the mechanism sybil-immune.
    sybil_immune: bool = False

    #: Whether the mechanism carries a provable profit guarantee.
    profit_guarantee: bool = False

    def run(self, instance: AuctionInstance) -> AuctionOutcome:
        """Run the auction on *instance* and return the outcome.

        The outcome is validated against server capacity; a mechanism
        that over-admits is a bug, not a modelling choice.
        """
        payments, details = self._select(self._seal(instance))
        outcome = AuctionOutcome(
            instance=instance,
            payments=payments,
            mechanism=self.name,
            details=details,
        )
        outcome.validate_capacity()
        return outcome

    @staticmethod
    def _seal(instance: AuctionInstance) -> AuctionInstance:
        """Hide private valuations from the mechanism.

        Returns a copy of *instance* where each query's valuation equals
        its bid.  Mechanisms therefore cannot accidentally peek at the
        truth, which keeps manipulation experiments honest: what a user
        *submits* is all the system ever sees.
        """
        queries = tuple(
            q if q.valuation is None or q.valuation == q.bid else Query(
                query_id=q.query_id,
                operator_ids=q.operator_ids,
                bid=q.bid,
                valuation=q.bid,
                owner=q.owner,
            )
            for q in instance.queries
        )
        return AuctionInstance._from_validated(instance, queries)

    @abc.abstractmethod
    def _select(
        self, instance: AuctionInstance
    ) -> tuple[dict[str, float], dict[str, object]]:
        """Choose winners and payments; return (payments, details)."""

    def properties(self) -> dict[str, bool]:
        """The Table I property row for this mechanism."""
        return {
            "strategyproof": self.bid_strategyproof,
            "sybil_immune": self.sybil_immune,
            "profit_guarantee": self.profit_guarantee,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


_REGISTRY: dict[str, Callable[[], Mechanism]] = {}


def register_mechanism(name: str, factory: Callable[[], Mechanism]) -> None:
    """Register a mechanism *factory* under *name* (case-insensitive)."""
    _REGISTRY[name.lower()] = factory


def make_mechanism(name: str, **kwargs: object) -> Mechanism:
    """Instantiate a registered mechanism by name.

    ``kwargs`` are forwarded to the factory, letting callers configure
    e.g. the Two-price seed: ``make_mechanism("two-price", seed=7)``.
    """
    try:
        factory = _REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown mechanism {name!r}; known: {known}") from None
    return factory(**kwargs)  # type: ignore[call-arg]


def registered_mechanisms() -> Mapping[str, Callable[[], Mechanism]]:
    """Read-only view of the registry (name → factory)."""
    return dict(_REGISTRY)
