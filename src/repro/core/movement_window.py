"""Movement-window payments for the skip-over mechanisms (CAF+/CAT+).

Definitions 5–6 of the paper: a winning user *i*'s *movement window* is
how far down the priority list her query could slide (by lowering her
bid) while still being admitted by the skip-over greedy pass.  The
window ends at the first user *j* such that, if *i*'s bid repositioned
her directly after *j*, the pass would no longer admit *i*; that *j* is
``last(i)`` and the payment is

    p_i = C_i · b_last(i) / C_last(i)

in the mechanism's load measure ``C``.  If *i* could slide to the very
bottom and still win, ``last(i)`` is null and the payment is zero.

Computing ``last(i)`` naively re-runs the greedy pass once per candidate
position (O(n) passes of O(n) work per winner).  We instead observe that
in a skip-over pass, whether *i* is admitted at a given position depends
only on the admission state built from the queries *before* that
position with *i* removed.  One incremental pass over the order with *i*
deleted therefore yields the admission test for every candidate
position, making each winner O(n · |ops|) and the whole payment step
O(n²) — matching the quadratic runtime blow-up the paper reports for
CAF+/CAT+ in Table IV.

Along the replay, the admission test ``used + marginal(winner)`` is
non-decreasing: admitting any query raises ``used`` by its marginal
load, which is at least the amount it shaves off the winner's marginal
(the operators they share).  The first failing position is therefore
the *unique* transition — exactly the window boundary Definition 5
describes — and the linear scan finds it without needing to probe
later positions (``tests/core/test_movement_window.py`` asserts this
monotonicity on random instances).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.greedy import LoadMeasure, priority_of
from repro.core.model import AuctionInstance, Query


def find_last(
    instance: AuctionInstance,
    order: Sequence[Query],
    winner: Query,
) -> Query | None:
    """Return ``last(winner)`` for a skip-over pass over *order*.

    *order* is the full priority list (winners and losers).  The result
    is the first query *j* after *winner* such that repositioning
    *winner* directly after *j* makes her lose, or ``None`` if she wins
    from every position (payment zero).
    """
    position = next(
        idx for idx, q in enumerate(order)
        if q.query_id == winner.query_id
    )
    # Replay the pass without the winner, maintaining her marginal load
    # incrementally: each admission that starts one of her operators
    # shrinks it, making every per-position admission test O(1).
    capacity = instance.capacity
    winner_ops = set(winner.operator_ids)
    winner_margin = sum(
        instance.operator(op_id).load for op_id in winner.operator_ids)
    running: set[str] = set()
    used = 0.0

    def admit_if_fits(query: Query) -> None:
        nonlocal used, winner_margin
        margin = sum(
            instance.operator(op_id).load
            for op_id in query.operator_ids
            if op_id not in running
        )
        if used + margin > capacity + 1e-9:
            return
        used += margin
        for op_id in query.operator_ids:
            if op_id not in running:
                running.add(op_id)
                if op_id in winner_ops:
                    winner_margin -= instance.operator(op_id).load

    for query in order[:position]:
        admit_if_fits(query)
    for query in order[position + 1:]:
        admit_if_fits(query)
        # Winner repositioned directly after `query`: admitted iff she
        # fits the state built from everything up to and including it.
        if used + winner_margin > capacity + 1e-9:
            return query
    return None


def movement_window_payment(
    instance: AuctionInstance,
    order: Sequence[Query],
    winner: Query,
    load_measure: LoadMeasure,
) -> tuple[float, Query | None]:
    """Payment of *winner* under the movement-window rule.

    Returns ``(payment, last)`` where ``last`` is the query defining the
    price (``None`` → payment 0).
    """
    last = find_last(instance, order, winner)
    if last is None:
        return 0.0, None
    winner_load = load_measure(instance, winner)
    last_load = load_measure(instance, last)
    price_per_unit = priority_of(last.bid, last_load)
    payment = winner_load * price_per_unit
    # A zero-load `last` has infinite density and would always have been
    # admitted before `winner`; it cannot end a movement window unless
    # the winner's own load is zero too, in which case she pays nothing.
    if winner_load == 0.0:
        return 0.0, last
    return payment, last
