"""The shared greedy selection scheme behind CAF/CAF+/CAT/CAT+/GV.

All of the paper's deterministic mechanisms follow one pattern
(Section IV):

1. sort queries in non-increasing *priority* (bid per unit of some load
   measure — or the raw bid, for GV), and then
2. admit queries until the server is full.

They differ in (a) the load measure defining priority, and (b) whether
the walk **stops at the first query that does not fit** (CAF, CAT, GV)
or **skips over** too-heavy queries and keeps scanning (CAF+, CAT+).
The capacity test always charges a query its *remaining* (marginal)
load given the winners admitted so far — shared operators already
running are free.

This module implements that scheme once, parameterized, and returns a
:class:`GreedySelection` describing the pass so payment rules can be
layered on top.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from collections.abc import Callable, Sequence

from repro.core.loads import LoadTracker
from repro.core.model import AuctionInstance, Query

#: Maps (instance, query) -> the load measure used for priorities.
LoadMeasure = Callable[[AuctionInstance, Query], float]


def priority_of(bid: float, load: float) -> float:
    """Profit density ``bid / load``; infinite when the load is zero.

    A zero-load query consumes nothing, so any positive bid makes it
    infinitely dense; it sorts first and is always admitted.
    """
    if load == 0:
        return math.inf
    return bid / load


def priority_order(
    instance: AuctionInstance,
    load_measure: LoadMeasure,
) -> list[Query]:
    """Queries sorted by non-increasing density under *load_measure*.

    Ties are broken by query id so runs are deterministic; the paper
    breaks ties arbitrarily.
    """
    def sort_key(query: Query) -> tuple[float, str]:
        load = load_measure(instance, query)
        return (-priority_of(query.bid, load), query.query_id)

    return sorted(instance.queries, key=sort_key)


@dataclass
class GreedySelection:
    """Record of one greedy admission pass.

    * ``order`` — the full priority list the pass walked.
    * ``winners`` — admitted queries, in admission order.
    * ``first_loser`` — for stop-at-first passes, the query that ended
      the walk (``None`` if everything fit).  For skip-over passes, the
      first query in priority order that was skipped.
    * ``tracker`` — final load state (used capacity, running operators).
    """

    order: list[Query]
    winners: list[Query] = field(default_factory=list)
    first_loser: Query | None = None
    tracker: LoadTracker | None = None

    @property
    def winner_ids(self) -> set[str]:
        """Ids of the admitted queries."""
        return {q.query_id for q in self.winners}

    def is_winner(self, query_id: str) -> bool:
        """True if *query_id* was admitted by this pass."""
        return query_id in self.winner_ids


def greedy_admit(
    instance: AuctionInstance,
    order: Sequence[Query],
    skip_over: bool,
) -> GreedySelection:
    """Admit queries from *order* until the server is full.

    With ``skip_over=False`` the pass stops at the first query whose
    marginal load does not fit (the CAF/CAT/GV rule: "the algorithm
    stops as soon as the next CQ does not fit within server capacity").
    With ``skip_over=True`` it records that query as the first loser but
    keeps scanning for lighter queries that still fit (CAF+/CAT+).
    """
    tracker = LoadTracker(instance)
    selection = GreedySelection(order=list(order), tracker=tracker)
    for query in order:
        if tracker.try_admit(query):
            selection.winners.append(query)
            continue
        if selection.first_loser is None:
            selection.first_loser = query
        if not skip_over:
            break
    return selection


def admits_query(
    instance: AuctionInstance,
    order: Sequence[Query],
    skip_over: bool,
    query_id: str,
) -> bool:
    """True if a greedy pass over *order* admits *query_id*.

    Convenience used by the movement-window payment rule, which re-runs
    the selection with one query artificially repositioned.
    """
    return greedy_admit(instance, order, skip_over).is_winner(query_id)
