"""Auction data model: operators, continuous queries, and instances.

The paper (Section II) abstracts a continuous query (CQ) to the set of
operators it contains, each operator having a *load* — the fraction of
server capacity it consumes.  Operators may be **shared** between
queries (executed once, feeding every query that contains them), which
is the combinatorial heart of the admission-control problem: the
marginal load of a query depends on which other queries are admitted.

:class:`AuctionInstance` is the immutable input to every mechanism: the
operator catalogue, the submitted queries with their bids, and the
server capacity.  It also carries each user's *private valuation*
(defaulting to the bid), which mechanisms never read — only the
game-theory analysis tools do, when computing payoffs or simulating
manipulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from collections.abc import Iterable, Mapping, Sequence

from repro.utils.validation import (
    ValidationError,
    require,
    require_non_negative,
    require_positive,
)


@dataclass(frozen=True)
class Operator:
    """A stream operator with an identifier and a server load.

    ``load`` is expressed in the paper's capacity units: the fraction of
    the system's per-time-unit work the operator consumes.  Loads are
    static per operator (the paper assumes the system can reasonably
    approximate them; our :mod:`repro.dsms` engine measures them).
    """

    op_id: str
    load: float

    def __post_init__(self) -> None:
        require(bool(self.op_id), "operator id must be a non-empty string")
        require_non_negative(self.load, f"load of operator {self.op_id!r}")

    @classmethod
    def _trusted(cls, op_id: str, load: float) -> "Operator":
        """Validation-free constructor for pre-validated inputs.

        The subscription boundary builds thousands of these per period
        from loads it just computed; the caller guarantees a non-empty
        id and a non-negative load.
        """
        operator = object.__new__(cls)
        object.__setattr__(operator, "op_id", op_id)
        object.__setattr__(operator, "load", load)
        return operator


@dataclass(frozen=True)
class Query:
    """A continuous query: a set of operators, a bid, and a valuation.

    * ``bid`` — the declared bound on what the user will pay (public).
    * ``valuation`` — the user's true private value for having the query
      run.  Mechanisms must not read it; analysis tools use it to compute
      payoffs.  ``None`` means "truthful", i.e. equal to the bid.
    * ``owner`` — identity of the submitting user.  Several queries may
      share an owner (sybil attacks create exactly this situation); the
      owner's payoff aggregates over all her queries.
    """

    query_id: str
    operator_ids: tuple[str, ...]
    bid: float
    valuation: float | None = None
    owner: str | None = None

    def __post_init__(self) -> None:
        require(bool(self.query_id), "query id must be a non-empty string")
        require(len(self.operator_ids) > 0,
                f"query {self.query_id!r} must contain at least one operator")
        require(len(set(self.operator_ids)) == len(self.operator_ids),
                f"query {self.query_id!r} lists a duplicate operator")
        require_non_negative(self.bid, f"bid of query {self.query_id!r}")
        if self.valuation is not None:
            require_non_negative(
                self.valuation, f"valuation of query {self.query_id!r}")
        # Normalize to tuple so callers may pass any sequence.
        object.__setattr__(self, "operator_ids", tuple(self.operator_ids))

    @classmethod
    def _trusted(
        cls,
        query_id: str,
        operator_ids: tuple[str, ...],
        bid: float,
        valuation: "float | None" = None,
        owner: "str | None" = None,
    ) -> "Query":
        """Validation-free constructor for pre-validated inputs.

        The caller guarantees what ``__post_init__`` would check: a
        non-empty id, a non-empty duplicate-free *tuple* of operator
        ids (no normalization happens here), and non-negative
        bid/valuation.  Used on the admission hot path, where every
        pending plan was validated when it entered the system.
        """
        query = object.__new__(cls)
        object.__setattr__(query, "query_id", query_id)
        object.__setattr__(query, "operator_ids", operator_ids)
        object.__setattr__(query, "bid", bid)
        object.__setattr__(query, "valuation", valuation)
        object.__setattr__(query, "owner", owner)
        return query

    @property
    def true_value(self) -> float:
        """The private valuation, defaulting to the submitted bid."""
        return self.bid if self.valuation is None else self.valuation

    @property
    def owner_id(self) -> str:
        """The owning user, defaulting to the query id itself."""
        return self.owner if self.owner is not None else self.query_id

    def with_bid(self, bid: float) -> "Query":
        """Return a copy of this query bidding *bid* (valuation kept)."""
        return replace(self, bid=bid,
                       valuation=self.true_value)


@dataclass(frozen=True)
class AuctionInstance:
    """One admission auction: operators, queries, and server capacity.

    The instance is immutable; the manipulation helpers (`with_bid`,
    `with_queries`, `without_queries`) return modified copies, which the
    game-theory tools use to probe monotonicity, critical values and
    sybil attacks without mutating shared state.
    """

    operators: Mapping[str, Operator]
    queries: tuple[Query, ...]
    capacity: float
    _queries_by_id: Mapping[str, Query] = field(
        init=False, repr=False, compare=False, default=None)
    _sharing: Mapping[str, int] = field(
        init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        require_positive(self.capacity, "capacity")
        object.__setattr__(self, "operators", dict(self.operators))
        object.__setattr__(self, "queries", tuple(self.queries))
        by_id: dict[str, Query] = {}
        sharing: dict[str, int] = {op_id: 0 for op_id in self.operators}
        for query in self.queries:
            if query.query_id in by_id:
                raise ValidationError(
                    f"duplicate query id {query.query_id!r}")
            by_id[query.query_id] = query
            for op_id in query.operator_ids:
                if op_id not in self.operators:
                    raise ValidationError(
                        f"query {query.query_id!r} references unknown "
                        f"operator {op_id!r}")
                sharing[op_id] += 1
        object.__setattr__(self, "_queries_by_id", by_id)
        object.__setattr__(self, "_sharing", sharing)

    def __getstate__(self) -> dict:
        """Pickle/deepcopy without the cached fast-path index.

        :class:`repro.core.fastpath.InstanceIndex` caches itself on the
        instance (immutable, so never invalidated); it is derived state,
        cheap to rebuild, and would bloat checkpoints — so copies start
        without it.
        """
        state = dict(self.__dict__)
        state.pop("_fastpath_cache", None)
        state.pop("_select_columns", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def _from_validated(
        cls,
        source: "AuctionInstance",
        queries: tuple["Query", ...],
    ) -> "AuctionInstance":
        """Fast private constructor for structure-preserving copies.

        *queries* must have the same ids and operator sets as
        ``source.queries`` (only bids/valuations/owners may differ), so
        the sharing index can be reused without re-validation.  Used on
        the mechanism hot path (:meth:`Mechanism._seal`).
        """
        instance = object.__new__(cls)
        object.__setattr__(instance, "operators", source.operators)
        object.__setattr__(instance, "queries", queries)
        object.__setattr__(instance, "capacity", source.capacity)
        object.__setattr__(
            instance, "_queries_by_id", {q.query_id: q for q in queries})
        object.__setattr__(instance, "_sharing", source._sharing)
        return instance

    @classmethod
    def _from_parts(
        cls,
        operators: dict[str, Operator],
        queries: tuple["Query", ...],
        capacity: float,
        queries_by_id: dict[str, "Query"],
        sharing: dict[str, int],
    ) -> "AuctionInstance":
        """Fast private constructor from pre-computed derived state.

        The caller owns every argument (nothing is copied) and
        guarantees the ``__post_init__`` invariants: positive
        capacity, unique query ids, every referenced operator present,
        and ``queries_by_id``/``sharing`` consistent with ``queries``.
        Used by the subscription boundary, which builds the operator
        table *from* the query set and so satisfies all of them by
        construction.
        """
        instance = object.__new__(cls)
        object.__setattr__(instance, "operators", operators)
        object.__setattr__(instance, "queries", queries)
        object.__setattr__(instance, "capacity", capacity)
        object.__setattr__(instance, "_queries_by_id", queries_by_id)
        object.__setattr__(instance, "_sharing", sharing)
        return instance

    @classmethod
    def build(
        cls,
        operator_loads: Mapping[str, float],
        query_specs: Mapping[str, Sequence[str]],
        bids: Mapping[str, float],
        capacity: float,
        valuations: Mapping[str, float] | None = None,
        owners: Mapping[str, str] | None = None,
    ) -> "AuctionInstance":
        """Build an instance from plain dictionaries.

        ``operator_loads`` maps operator id to load; ``query_specs`` maps
        query id to the operator ids it contains; ``bids`` maps query id
        to the submitted bid.  ``valuations`` and ``owners`` are optional
        per-query overrides.
        """
        operators = {op_id: Operator(op_id, load)
                     for op_id, load in operator_loads.items()}
        valuations = valuations or {}
        owners = owners or {}
        queries = tuple(
            Query(
                query_id=qid,
                operator_ids=tuple(op_ids),
                bid=bids[qid],
                valuation=valuations.get(qid),
                owner=owners.get(qid),
            )
            for qid, op_ids in query_specs.items()
        )
        return cls(operators=operators, queries=queries, capacity=capacity)

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def query(self, query_id: str) -> Query:
        """Return the query with id *query_id* (KeyError if absent)."""
        return self._queries_by_id[query_id]

    def has_query(self, query_id: str) -> bool:
        """True if a query with id *query_id* was submitted."""
        return query_id in self._queries_by_id

    def operator(self, op_id: str) -> Operator:
        """Return the operator with id *op_id* (KeyError if absent)."""
        return self.operators[op_id]

    def sharing_degree(self, op_id: str) -> int:
        """Number of submitted queries containing operator *op_id*."""
        return self._sharing[op_id]

    def max_sharing_degree(self) -> int:
        """Maximum sharing degree over all operators (0 if none used)."""
        return max(self._sharing.values(), default=0)

    @property
    def num_queries(self) -> int:
        """Number of submitted queries."""
        return len(self.queries)

    def owners(self) -> dict[str, list[Query]]:
        """Group the submitted queries by owning user."""
        grouped: dict[str, list[Query]] = {}
        for query in self.queries:
            grouped.setdefault(query.owner_id, []).append(query)
        return grouped

    # ------------------------------------------------------------------
    # Load accounting
    # ------------------------------------------------------------------

    def union_load(self, query_ids: Iterable[str]) -> float:
        """Actual server load of running the given queries together.

        Shared operators are counted **once** — this is the quantity the
        capacity constraint applies to.
        """
        seen: set[str] = set()
        for qid in query_ids:
            seen.update(self._queries_by_id[qid].operator_ids)
        return sum(self.operators[op_id].load for op_id in seen)

    def fits(self, query_ids: Iterable[str]) -> bool:
        """True if the given queries together fit within capacity."""
        return self.union_load(query_ids) <= self.capacity + 1e-9

    def total_demand(self) -> float:
        """Union load of *all* submitted queries (total query demand)."""
        return self.union_load(q.query_id for q in self.queries)

    # ------------------------------------------------------------------
    # Functional updates (used by the game-theory toolkit)
    # ------------------------------------------------------------------

    def with_bid(self, query_id: str, bid: float) -> "AuctionInstance":
        """Copy of the instance where *query_id* bids *bid* instead."""
        queries = tuple(
            q.with_bid(bid) if q.query_id == query_id else q
            for q in self.queries
        )
        if not any(q.query_id == query_id for q in self.queries):
            raise KeyError(query_id)
        return AuctionInstance(self.operators, queries, self.capacity)

    def with_queries(
        self,
        new_queries: Sequence[Query],
        new_operators: Sequence[Operator] = (),
    ) -> "AuctionInstance":
        """Copy of the instance with extra queries (and operators) added.

        This is the primitive behind sybil attacks: an attacker submits
        additional queries, possibly referencing her existing operators,
        possibly introducing fresh fake ones.
        """
        operators = dict(self.operators)
        for op in new_operators:
            if op.op_id in operators and operators[op.op_id] != op:
                raise ValidationError(
                    f"operator {op.op_id!r} redefined with different load")
            operators[op.op_id] = op
        return AuctionInstance(
            operators, self.queries + tuple(new_queries), self.capacity)

    def without_queries(self, query_ids: Iterable[str]) -> "AuctionInstance":
        """Copy of the instance with the given queries removed.

        Operators that become orphaned are kept in the catalogue (they
        simply have sharing degree zero), matching the view that the
        operator library outlives individual subscriptions.
        """
        drop = set(query_ids)
        queries = tuple(q for q in self.queries if q.query_id not in drop)
        return AuctionInstance(self.operators, queries, self.capacity)

    def with_capacity(self, capacity: float) -> "AuctionInstance":
        """Copy of the instance with a different server capacity."""
        return AuctionInstance(self.operators, self.queries, capacity)

    def truthful(self) -> "AuctionInstance":
        """Copy where every user bids her true valuation."""
        queries = tuple(q.with_bid(q.true_value) for q in self.queries)
        return AuctionInstance(self.operators, queries, self.capacity)

    def max_valuation(self) -> float:
        """``h`` in the paper: the largest valuation of any user."""
        return max((q.true_value for q in self.queries), default=0.0)
