"""CAR — the naive remaining-load mechanism (Section IV-A).

CAR (CQ Admission based on Remaining load) ranks queries by bid per
unit of *remaining* load ``C^R_i`` — the marginal load the query would
add given the winners chosen so far — recomputing priorities after
every admission.  This measures true marginal cost exactly, but makes
payments depend on the *order* of admission and hence on the users'
bids, which breaks bid-strategyproofness: a user sharing operators with
other winners gains by under-bidding so she is chosen *after* them,
shrinking her remaining load and her payment.  The paper uses CAR as
the cautionary baseline and evaluates it under lying workloads
(Figure 5); :mod:`repro.workload.lying` generates those workloads.

Implementation note: remaining loads are maintained *incrementally* —
admitting a query only touches the queries that share one of its
newly-running operators — so a full auction is
O(n² + Σ_op degree(op)·|ops per query|) instead of the naive
O(n² · |ops per query|).
"""

from __future__ import annotations

from repro.core.greedy import priority_of
from repro.core.mechanism import Mechanism
from repro.core.model import AuctionInstance, Query


class CAR(Mechanism):
    """CQ Admission based on Remaining load.

    Iteratively admits the unchosen query with the highest
    ``b_i / C^R_i`` priority; stops the first time the chosen query does
    not fit, that query becoming ``qlost``.  Each winner pays
    ``C^R_i(at admission) · b_lost / C^R_lost``.

    Not bid-strategyproof — kept for the manipulation experiments.
    """

    name = "CAR"
    bid_strategyproof = False
    sybil_immune = False
    profit_guarantee = False

    def _select(self, instance: AuctionInstance):
        # op -> queries containing it, for incremental CR updates.
        containing: dict[str, list[Query]] = {
            op_id: [] for op_id in instance.operators}
        cr: dict[str, float] = {}
        for query in instance.queries:
            cr[query.query_id] = 0.0
            for op_id in query.operator_ids:
                containing[op_id].append(query)
                cr[query.query_id] += instance.operator(op_id).load

        pending: dict[str, Query] = {q.query_id: q for q in instance.queries}
        running_ops: set[str] = set()
        used = 0.0
        admission_order: list[str] = []
        admission_loads: dict[str, float] = {}
        lost: Query | None = None

        while pending:
            best_query = None
            best_key: tuple[float, str] | None = None
            for query in pending.values():
                key = (-priority_of(query.bid, cr[query.query_id]),
                       query.query_id)
                if best_key is None or key < best_key:
                    best_key = key
                    best_query = query
            assert best_query is not None
            margin = cr[best_query.query_id]
            if used + margin > instance.capacity + 1e-9:
                lost = best_query
                break
            del pending[best_query.query_id]
            used += margin
            admission_order.append(best_query.query_id)
            admission_loads[best_query.query_id] = margin
            # The newly running operators shrink the remaining load of
            # every other query that contains them.
            for op_id in best_query.operator_ids:
                if op_id in running_ops:
                    continue
                running_ops.add(op_id)
                load = instance.operator(op_id).load
                for other in containing[op_id]:
                    if other.query_id in pending:
                        cr[other.query_id] -= load

        details: dict[str, object] = {
            "admission_order": admission_order,
            "first_loser": None if lost is None else lost.query_id,
            "admission_remaining_loads": dict(admission_loads),
        }
        if lost is None:
            payments = {qid: 0.0 for qid in admission_order}
            return payments, details

        lost_load = cr[lost.query_id]
        # A zero-remaining-load query always fits, so the loser's load is
        # positive and the per-unit price is finite.
        price_per_unit = priority_of(lost.bid, lost_load)
        details["price_per_unit_load"] = price_per_unit
        payments = {
            qid: admission_loads[qid] * price_per_unit
            for qid in admission_order
        }
        return payments, details
