"""Simulation traces: record an arrival stream, replay it exactly.

A trace is the workload of an open-system run — every arrival's
virtual time, query, and requested subscription category — captured as
a versioned document (``repro/sim-trace``, written and read by
:func:`repro.io.save_sim_trace` / :func:`repro.io.load_sim_trace`).
Replaying a trace through :class:`~repro.sim.arrivals.TraceArrivals`
against an identically configured service reproduces the recorded run
byte-identically: same auctions, same bills, same reports.

Two file formats share the schema:

* **v1 (JSON)** — one ``arrivals`` array of per-entry documents.
  Readable, greppable, and still both written and read.
* **v2 (binary)** — the select-encoded arrivals as numpy columns
  (times, bids, costs, selectivities, plus interned owner/category/
  stream string tables) in one ``.npz`` container, loaded with
  ``allow_pickle=False`` always.  Orders of magnitude faster and
  smaller for the synthetic workloads whose traces are millions of
  rows.

Query plans carry arbitrary Python callables, which neither format can
hold directly, so the query codec has two encodings:

* ``"select"`` — the compact form for the library's synthetic
  single-select plans over :func:`~repro.sim.arrivals.pass_all` (the
  output of :func:`~repro.sim.arrivals.synthetic_query`, the CLI
  workloads and :class:`~repro.sim.arrivals.SelectPlan` records):
  just the id, bid, owner, stream, cost and selectivity;
* ``"pickle"`` — a base64 pickle fallback for genuinely opaque plans.
  Like snapshot files, a trace using it executes code on load — only
  replay traces you trust (both formats stay inspectable: grep the
  JSON, or check :attr:`TraceColumns.opaque`) — and the gateway wire
  codec refuses it by default.
"""

from __future__ import annotations

import base64
import pickle
from dataclasses import dataclass, field

from repro.dsms.operators import SelectOperator
from repro.dsms.plan import ContinuousQuery
from repro.sim.arrivals import Arrival, SelectPlan, pass_all
from repro.utils.validation import ValidationError


@dataclass(frozen=True)
class TraceEntry:
    """One recorded arrival."""

    time: float
    query: ContinuousQuery
    category: "str | None" = None
    stream: int = 0


def as_select_plan(query) -> "SelectPlan | None":
    """*query* as a compact :class:`SelectPlan`, or ``None``.

    Recognizes a live :class:`SelectPlan` and any single-select
    :class:`ContinuousQuery` whose predicate is *identically* the
    public :func:`~repro.sim.arrivals.pass_all` — the only plan shape
    the compact ``'select'`` encoding (and therefore the gateway's
    untrusting wire boundary) can carry.
    """
    if type(query) is SelectPlan:
        return query
    if (isinstance(query, ContinuousQuery)
            and len(query.operators) == 1
            and type(query.operators[0]) is SelectOperator
            and query.operators[0]._predicate is pass_all):
        op = query.operators[0]
        return SelectPlan(
            query.query_id, op.op_id, op.inputs[0],
            op.cost_per_tuple, op.selectivity(),
            query.bid, query.valuation, query.owner)
    return None


@dataclass
class TraceColumns:
    """The columnar body of a trace: one row per arrival.

    Select-encoded arrivals live entirely in the parallel columns;
    the rare opaque plan keeps its query object in :attr:`opaque`
    (row → query) with placeholder column values, so row order — and
    therefore replay order — is exactly recording order.
    """

    times: list = field(default_factory=list)
    streams: list = field(default_factory=list)
    categories: list = field(default_factory=list)
    ids: list = field(default_factory=list)
    ops: list = field(default_factory=list)
    inputs: list = field(default_factory=list)
    costs: list = field(default_factory=list)
    selectivities: list = field(default_factory=list)
    bids: list = field(default_factory=list)
    valuations: list = field(default_factory=list)
    owners: list = field(default_factory=list)
    #: row index → the opaque (non-select) query recorded there.
    opaque: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.times)

    def append_select(
        self, time: float, plan: SelectPlan,
        category: "str | None", stream: int,
    ) -> None:
        """Append one select-encoded arrival row."""
        self.times.append(time)
        self.streams.append(stream)
        self.categories.append(category)
        self.ids.append(plan.query_id)
        self.ops.append(plan.op_id)
        self.inputs.append(plan.stream)
        self.costs.append(plan.cost)
        self.selectivities.append(plan.selectivity)
        self.bids.append(plan.bid)
        self.valuations.append(plan.valuation)
        self.owners.append(plan.owner)

    def extend_select_events(self, events, categories) -> None:
        """Append one arrival-event batch whose queries are all plans.

        Column-at-a-time comprehensions over the batch, byte-identical
        to calling :meth:`append_select` per event — ``append_select``
        stores the plan attributes uncast, and only time/stream carry
        ``float``/``int`` casts.
        """
        self.times.extend([float(event.time) for event in events])
        self.streams.extend([int(event.stream) for event in events])
        self.categories.extend(categories)
        plans = [event.query for event in events]
        self.ids.extend([plan.query_id for plan in plans])
        self.ops.extend([plan.op_id for plan in plans])
        self.inputs.extend([plan.stream for plan in plans])
        self.costs.extend([plan.cost for plan in plans])
        self.selectivities.extend([plan.selectivity for plan in plans])
        self.bids.extend([plan.bid for plan in plans])
        self.valuations.extend([plan.valuation for plan in plans])
        self.owners.extend([plan.owner for plan in plans])

    def extend_select_block(
        self, block, start: int, stop: int,
        categories, default_stream: int,
    ) -> None:
        """Append rows ``[start, stop)`` of an arrival block.

        Column-to-column bulk appends, byte-identical to calling
        :meth:`append_select` with ``block.plan(row)`` for each row
        (the numpy ``.tolist()`` items are exactly the ``float(...)``
        casts the per-row path performs).  *categories* is the
        resolved per-row category list for the slice — the driver
        records assigned categories, not requested ones, matching the
        per-event recorder calls.
        """
        count = stop - start
        self.times.extend(block.times[start:stop].tolist())
        streams = block.streams
        if streams is None:
            self.streams.extend([int(default_stream)] * count)
        elif type(streams) is int:
            self.streams.extend([streams] * count)
        else:
            self.streams.extend(
                int(streams[row]) for row in range(start, stop))
        self.categories.extend(categories)
        self.ids.extend(block.ids[start:stop])
        self.ops.extend(block.ops[start:stop])
        inputs = block.inputs
        if type(inputs) is str:
            self.inputs.extend([inputs] * count)
        else:
            self.inputs.extend(inputs[start:stop])
        self.costs.extend(block.costs[start:stop].tolist())
        selectivities = block.selectivities
        if type(selectivities) is float:
            self.selectivities.extend([selectivities] * count)
        else:
            self.selectivities.extend(
                float(selectivities[row]) for row in range(start, stop))
        self.bids.extend(block.bids[start:stop].tolist())
        valuations = block.valuations
        if valuations is None:
            self.valuations.extend([None] * count)
        else:
            self.valuations.extend(valuations[start:stop])
        self.owners.extend(block.owners[start:stop])

    def append_opaque(
        self, time: float, query,
        category: "str | None", stream: int,
    ) -> None:
        """Append one arrival whose plan has no compact encoding."""
        self.opaque[len(self.times)] = query
        self.times.append(time)
        self.streams.append(stream)
        self.categories.append(category)
        self.ids.append(getattr(query, "query_id", ""))
        self.ops.append("")
        self.inputs.append("")
        self.costs.append(0.0)
        self.selectivities.append(0.0)
        self.bids.append(0.0)
        self.valuations.append(None)
        self.owners.append(None)

    def query(self, row: int):
        """The recorded query of *row* (a SelectPlan when compact)."""
        opaque = self.opaque.get(row)
        if opaque is not None:
            return opaque
        return SelectPlan(
            self.ids[row], self.ops[row], self.inputs[row],
            self.costs[row], self.selectivities[row], self.bids[row],
            self.valuations[row], self.owners[row])

    def arrival(self, row: int) -> Arrival:
        """Row *row* as a replayable :class:`Arrival`."""
        return Arrival(
            time=self.times[row], query=self.query(row),
            category=self.categories[row], stream=self.streams[row])

    def arrivals_slice(self, start: int, stop: int) -> list[Arrival]:
        """Rows ``[start, stop)`` as arrivals, in order."""
        return [self.arrival(row) for row in range(start, stop)]

    def entries(self) -> list[TraceEntry]:
        """Every row as a :class:`TraceEntry`, in recording order."""
        return [
            TraceEntry(time=self.times[row], query=self.query(row),
                       category=self.categories[row],
                       stream=self.streams[row])
            for row in range(len(self.times))
        ]

    def copy(self) -> "TraceColumns":
        """A shallow row-snapshot (new lists, shared immutable cells)."""
        return TraceColumns(
            times=list(self.times), streams=list(self.streams),
            categories=list(self.categories), ids=list(self.ids),
            ops=list(self.ops), inputs=list(self.inputs),
            costs=list(self.costs),
            selectivities=list(self.selectivities),
            bids=list(self.bids), valuations=list(self.valuations),
            owners=list(self.owners), opaque=dict(self.opaque))

    @classmethod
    def from_entries(cls, entries) -> "TraceColumns":
        """Columns for an iterable of :class:`TraceEntry` rows."""
        columns = cls()
        for entry in entries:
            plan = as_select_plan(entry.query)
            if plan is not None:
                columns.append_select(entry.time, plan,
                                      entry.category, entry.stream)
            else:
                columns.append_opaque(entry.time, entry.query,
                                      entry.category, entry.stream)
        return columns


class SimTrace:
    """An ordered record of every arrival of one simulation run.

    Backed either by a tuple of :class:`TraceEntry` (the v1 JSON
    shape) or by :class:`TraceColumns` (what the recorder produces and
    the v2 binary format stores); ``entries`` materializes lazily from
    columns, so column-backed traces save and replay without building
    a million entry objects first.
    """

    def __init__(self, entries=(), columns: "TraceColumns | None" = None):
        if columns is not None and entries:
            raise ValidationError(
                "pass entries or columns, not both")
        self._entries = None if columns is not None else tuple(entries)
        self._columns = columns

    @property
    def entries(self) -> tuple[TraceEntry, ...]:
        """The trace as entry records (materialized once, cached)."""
        if self._entries is None:
            self._entries = tuple(self._columns.entries())
        return self._entries

    def columns(self) -> "TraceColumns | None":
        """The columnar body, when this trace is column-backed."""
        return self._columns

    def __len__(self) -> int:
        if self._columns is not None:
            return len(self._columns)
        return len(self._entries)

    def __eq__(self, other) -> bool:
        if not isinstance(other, SimTrace):
            return NotImplemented
        return self.entries == other.entries

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SimTrace {len(self)} arrivals>"


class TraceRecorder:
    """Collects arrivals as the driver processes them.

    Select-shaped plans append straight onto :class:`TraceColumns` —
    a handful of scalar list appends per arrival, no entry or plan
    objects — which is what keeps ``record=True`` viable on
    million-arrival runs.
    """

    def __init__(self) -> None:
        self._columns = TraceColumns()

    def record(
        self,
        time: float,
        query,
        category: "str | None",
        stream: int = 0,
    ) -> None:
        """Append one arrival to the recording."""
        if type(query) is SelectPlan:
            self._columns.append_select(
                float(time), query, category, int(stream))
            return
        plan = as_select_plan(query)
        if plan is not None:
            self._columns.append_select(
                float(time), plan, category, int(stream))
        else:
            self._columns.append_opaque(
                float(time), query, category, int(stream))

    def record_events(self, events, categories) -> None:
        """Append one batch of arrival events with resolved categories.

        Takes the columnar fast path when every query in the batch is
        already a :class:`SelectPlan`; any other shape falls back to
        the per-event :meth:`record` calls it replaces.
        """
        if all(type(event.query) is SelectPlan for event in events):
            self._columns.extend_select_events(events, categories)
            return
        for event, category in zip(events, categories):
            self.record(event.time, event.query, category,
                        event.stream)

    def record_rows(
        self, block, start: int, stop: int,
        categories, default_stream: int,
    ) -> None:
        """Append one consumed row slice of an arrival block.

        The columnar pump's recorder call: whole-slice list extends
        instead of per-arrival :meth:`record` calls, producing rows
        byte-identical to recording each ``block.plan(row)``.
        """
        self._columns.extend_select_block(
            block, start, stop, categories, default_stream)

    def trace(self) -> SimTrace:
        """The recording so far, as an immutable trace."""
        return SimTrace(columns=self._columns.copy())


# ----------------------------------------------------------------------
# The query codec
# ----------------------------------------------------------------------


def encode_query(query) -> dict:
    """JSON-able representation of *query* (compact when possible)."""
    plan = as_select_plan(query)
    if plan is not None:
        entry: dict[str, object] = {
            "plan": "select",
            "id": plan.query_id,
            "op": plan.op_id,
            "stream": plan.stream,
            "cost": plan.cost,
            "selectivity": plan.selectivity,
            "bid": plan.bid,
        }
        if plan.valuation is not None:
            entry["valuation"] = plan.valuation
        if plan.owner is not None:
            entry["owner"] = plan.owner
        return entry
    return {
        "plan": "pickle",
        "id": query.query_id,
        "data": base64.b64encode(
            pickle.dumps(query, protocol=pickle.HIGHEST_PROTOCOL)
        ).decode("ascii"),
    }


def decode_query(entry: dict) -> ContinuousQuery:
    """Rebuild a query from :func:`encode_query` output."""
    try:
        plan = entry["plan"]
        if plan == "select":
            return SelectPlan(
                str(entry["id"]), str(entry["op"]),
                str(entry["stream"]),
                float(entry["cost"]), float(entry["selectivity"]),
                float(entry["bid"]),
                (float(entry["valuation"])
                 if "valuation" in entry else None),
                entry.get("owner"),
            ).materialize()
        if plan == "pickle":
            query = pickle.loads(base64.b64decode(entry["data"]))
            if not isinstance(query, ContinuousQuery):
                raise ValidationError(
                    f"trace entry {entry.get('id')!r} unpickled to "
                    f"{type(query).__name__}, not a ContinuousQuery")
            return query
    except ValidationError:
        raise
    except (ImportError, AttributeError) as exc:
        # Pickled plans deserialize by reference: the decoding side
        # must be able to import every module the plan names.  A plan
        # only the encoding side can rebuild is the sender's problem.
        raise ValidationError(
            f"could not rebuild the pickled query plan ({exc!r}); "
            f"pickled plans must be importable where they are "
            f"decoded") from exc
    except (KeyError, TypeError, ValueError, pickle.UnpicklingError) as exc:
        raise ValidationError(
            f"malformed trace query entry: {exc!r}") from exc
    raise ValidationError(
        f"unknown trace plan encoding {plan!r}; this build reads "
        f"'select' and 'pickle'")


def entry_to_dict(entry: TraceEntry) -> dict:
    """JSON-able representation of one trace entry."""
    document: dict[str, object] = {
        "time": entry.time,
        "query": encode_query(entry.query),
    }
    if entry.category is not None:
        document["category"] = entry.category
    if entry.stream:
        document["stream"] = entry.stream
    return document


def entry_from_dict(document: dict) -> TraceEntry:
    """Parse one :func:`entry_to_dict` document."""
    try:
        return TraceEntry(
            time=float(document["time"]),
            query=decode_query(document["query"]),
            category=document.get("category"),
            stream=int(document.get("stream", 0)),
        )
    except ValidationError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ValidationError(
            f"malformed trace entry: {exc!r}") from exc
