"""Simulation traces: record an arrival stream, replay it exactly.

A trace is the workload of an open-system run — every arrival's
virtual time, query, and requested subscription category — captured as
a versioned JSON document (``repro/sim-trace``, written and read by
:func:`repro.io.save_sim_trace` / :func:`repro.io.load_sim_trace`).
Replaying a trace through :class:`~repro.sim.arrivals.TraceArrivals`
against an identically configured service reproduces the recorded run
byte-identically: same auctions, same bills, same reports.

Query plans carry arbitrary Python callables, which JSON cannot hold,
so the codec has two encodings:

* ``"select"`` — the compact form for the library's synthetic
  single-select plans (the output of
  :func:`~repro.sim.arrivals.synthetic_query` and the CLI workloads):
  just the id, bid, owner, stream, cost and selectivity;
* ``"pickle"`` — a base64 pickle fallback for arbitrary plans.  Like
  snapshot files, a trace using it executes code on load — only
  replay traces you trust (the JSON is inspectable: grep for
  ``"plan": "pickle"``).
"""

from __future__ import annotations

import base64
import pickle
from dataclasses import dataclass

from repro.dsms.operators import SelectOperator
from repro.dsms.plan import ContinuousQuery
from repro.sim.arrivals import _pass_all
from repro.utils.validation import ValidationError


@dataclass(frozen=True)
class TraceEntry:
    """One recorded arrival."""

    time: float
    query: ContinuousQuery
    category: "str | None" = None
    stream: int = 0


@dataclass(frozen=True)
class SimTrace:
    """An ordered record of every arrival of one simulation run."""

    entries: tuple[TraceEntry, ...] = ()

    def __len__(self) -> int:
        return len(self.entries)


class TraceRecorder:
    """Collects arrivals as the driver processes them."""

    def __init__(self) -> None:
        self._entries: list[TraceEntry] = []

    def record(
        self,
        time: float,
        query: ContinuousQuery,
        category: "str | None",
        stream: int = 0,
    ) -> None:
        """Append one arrival to the recording."""
        self._entries.append(TraceEntry(
            time=float(time), query=query, category=category,
            stream=int(stream)))

    def trace(self) -> SimTrace:
        """The recording so far, as an immutable trace."""
        return SimTrace(entries=tuple(self._entries))


# ----------------------------------------------------------------------
# The query codec
# ----------------------------------------------------------------------


def encode_query(query: ContinuousQuery) -> dict:
    """JSON-able representation of *query* (compact when possible)."""
    if (len(query.operators) == 1
            and type(query.operators[0]) is SelectOperator
            and query.operators[0]._predicate is _pass_all):
        op = query.operators[0]
        entry: dict[str, object] = {
            "plan": "select",
            "id": query.query_id,
            "op": op.op_id,
            "stream": op.inputs[0],
            "cost": op.cost_per_tuple,
            "selectivity": op.selectivity(),
            "bid": query.bid,
        }
        if query.valuation is not None:
            entry["valuation"] = query.valuation
        if query.owner is not None:
            entry["owner"] = query.owner
        return entry
    return {
        "plan": "pickle",
        "id": query.query_id,
        "data": base64.b64encode(
            pickle.dumps(query, protocol=pickle.HIGHEST_PROTOCOL)
        ).decode("ascii"),
    }


def decode_query(entry: dict) -> ContinuousQuery:
    """Rebuild a query from :func:`encode_query` output."""
    try:
        plan = entry["plan"]
        if plan == "select":
            op = SelectOperator(
                entry["op"], entry["stream"], _pass_all,
                cost_per_tuple=float(entry["cost"]),
                selectivity_estimate=float(entry["selectivity"]))
            return ContinuousQuery(
                entry["id"], (op,), sink_id=op.op_id,
                bid=float(entry["bid"]),
                valuation=(float(entry["valuation"])
                           if "valuation" in entry else None),
                owner=entry.get("owner"))
        if plan == "pickle":
            query = pickle.loads(base64.b64decode(entry["data"]))
            if not isinstance(query, ContinuousQuery):
                raise ValidationError(
                    f"trace entry {entry.get('id')!r} unpickled to "
                    f"{type(query).__name__}, not a ContinuousQuery")
            return query
    except ValidationError:
        raise
    except (ImportError, AttributeError) as exc:
        # Pickled plans deserialize by reference: the decoding side
        # must be able to import every module the plan names.  A plan
        # only the encoding side can rebuild is the sender's problem.
        raise ValidationError(
            f"could not rebuild the pickled query plan ({exc!r}); "
            f"pickled plans must be importable where they are "
            f"decoded") from exc
    except (KeyError, TypeError, ValueError, pickle.UnpicklingError) as exc:
        raise ValidationError(
            f"malformed trace query entry: {exc!r}") from exc
    raise ValidationError(
        f"unknown trace plan encoding {plan!r}; this build reads "
        f"'select' and 'pickle'")


def entry_to_dict(entry: TraceEntry) -> dict:
    """JSON-able representation of one trace entry."""
    document: dict[str, object] = {
        "time": entry.time,
        "query": encode_query(entry.query),
    }
    if entry.category is not None:
        document["category"] = entry.category
    if entry.stream:
        document["stream"] = entry.stream
    return document


def entry_from_dict(document: dict) -> TraceEntry:
    """Parse one :func:`entry_to_dict` document."""
    try:
        return TraceEntry(
            time=float(document["time"]),
            query=decode_query(document["query"]),
            category=document.get("category"),
            stream=int(document.get("stream", 0)),
        )
    except ValidationError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ValidationError(
            f"malformed trace entry: {exc!r}") from exc
