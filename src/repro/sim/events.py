"""Discrete events and the deterministic event queue.

The open-system runtime is event-driven: everything that happens is an
:class:`Event` with a virtual-clock time, pulled from one totally
ordered :class:`EventQueue`.  Ordering is the whole ballgame for
reproducibility, so it is explicit:

1. **time** — earlier events first (the virtual clock, in engine
   ticks);
2. **priority** — at equal times, the lifecycle order of a period
   boundary: the probe tick closing the previous execution window
   runs first, then expiries release capacity, renewals re-enter the
   queue, fresh arrivals join, and *then* the period auction runs;
3. **stream** — the index of the event stream that produced the event
   (per-shard arrival streams merge deterministically);
4. **sequence** — insertion order breaks every remaining tie (FIFO).

The queue is a plain binary heap over those four keys, carries only
picklable state, and deep-copies cleanly — it rides inside simulation
checkpoints unchanged.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.dsms.plan import ContinuousQuery
from repro.utils.validation import ValidationError

#: Priority ranks of the event kinds at one instant (lower runs first).
TICK_PRIORITY = 0
EXPIRY_PRIORITY = 1
RENEWAL_PRIORITY = 2
ARRIVAL_PRIORITY = 3
PERIOD_PRIORITY = 4


@dataclass(frozen=True)
class Event:
    """Base event: a virtual-clock time plus an ordering priority."""

    time: float

    #: Class-level ordering rank (see module docstring).
    priority = TICK_PRIORITY
    #: Schema tag used by the trace format and reports.
    kind = "event"

    def __post_init__(self) -> None:
        if not self.time >= 0:
            raise ValidationError(
                f"event time must be >= 0, got {self.time!r}")


@dataclass(frozen=True)
class ArrivalEvent(Event):
    """A query arrives, asking to subscribe.

    ``category`` is the subscription category the client requested
    (``None`` lets the driver assign one when subscriptions are on);
    ``stream`` is the event-stream index the arrival belongs to (the
    shard, under per-stream routing); ``source`` is the index of the
    arrival *process* that produced it (``None`` for events pushed
    outside any process, e.g. the lockstep schedule).  The two differ
    only during trace replay, where one process re-emits arrivals
    recorded from many streams.  ``final`` marks the last arrival of
    its source's pump batch: consuming it is what triggers the next
    lookahead pull, so a source always has events queued until it
    runs dry.
    """

    query: ContinuousQuery = None
    category: "str | None" = None
    stream: int = 0
    source: "int | None" = None
    final: bool = True

    priority = ARRIVAL_PRIORITY
    kind = "arrival"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.query is None:
            raise ValidationError("an arrival event needs a query")


@dataclass(frozen=True)
class ArrivalBlockEvent(Event):
    """Marker: the columnar pump's next pending row.

    Carries *no* queries — the actual row-block lives in the driver's
    ``_blocks`` table, keyed by ``source`` (snapshots deep-copy driver
    state once; an event carrying the block would fork it).  The
    marker's ``(time, priority, stream)`` is exactly the queue key the
    block's cursor row would have as an :class:`ArrivalEvent`, so
    popping it tells the driver "consume rows from source ``source``
    until the next non-arrival event is due", preserving the reference
    interleaving event-for-event.
    """

    source: int = 0
    stream: int = 0

    priority = ARRIVAL_PRIORITY
    kind = "arrival-block"


@dataclass(frozen=True)
class PeriodEvent(Event):
    """A subscription-period boundary: run the admission auction."""

    period: int = 0

    priority = PERIOD_PRIORITY
    kind = "period"


@dataclass(frozen=True)
class ExpiryEvent(Event):
    """A subscription ends: reclaim its capacity before the auction."""

    query_id: str = ""
    shard: int = 0

    priority = EXPIRY_PRIORITY
    kind = "expiry"


@dataclass(frozen=True)
class RenewalEvent(Event):
    """An expired subscriber resubmits for the same category."""

    query: ContinuousQuery = None
    category: "str | None" = None
    shard: int = 0

    priority = RENEWAL_PRIORITY
    kind = "renewal"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.query is None:
            raise ValidationError("a renewal event needs a query")


@dataclass(frozen=True)
class TickEvent(Event):
    """One engine tick of the latency probe."""

    priority = TICK_PRIORITY
    kind = "tick"


@dataclass
class EventQueue:
    """A deterministic min-heap of events.

    Orders by ``(time, priority, stream, sequence)``; the sequence
    counter is part of the queue state, so a checkpointed queue keeps
    breaking ties exactly as the uninterrupted one would.
    """

    _heap: list = field(default_factory=list)
    _sequence: int = 0

    def push(self, event: Event, stream: int = 0) -> None:
        """Enqueue *event* (``stream`` orders same-time merges)."""
        heapq.heappush(
            self._heap,
            (event.time, event.priority, stream, self._sequence, event))
        self._sequence += 1

    def pop(self) -> Event:
        """Remove and return the next event; raises when empty."""
        if not self._heap:
            raise ValidationError("cannot pop from an empty event queue")
        return heapq.heappop(self._heap)[4]

    def peek(self) -> "Event | None":
        """The next event without removing it (None when empty)."""
        return self._heap[0][4] if self._heap else None

    def next_time(self) -> "float | None":
        """Time of the next event (None when empty)."""
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def events(self) -> list[Event]:
        """All queued events in pop order (non-destructive)."""
        return [entry[4] for entry in sorted(self._heap)]

    def kind_counts(self) -> dict[str, int]:
        """Queued events tallied by ``kind``, sorted by kind name.

        A cheap structural fingerprint of the queue: two queues with
        different compositions cannot produce the same schedule, so
        the WAL logs these counts in every period record and recovery
        checks them — a replay whose queue drifted from the original
        run fails loudly at the first boundary instead of producing a
        silently different report.
        """
        counts: dict[str, int] = {}
        for entry in self._heap:
            kind = entry[4].kind
            counts[kind] = counts.get(kind, 0) + 1
        return dict(sorted(counts.items()))
