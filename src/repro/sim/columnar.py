"""Columnar admission: auction instances built lazily over row slices.

The pump keeps arrivals as numpy rows end-to-end (`ArrivalBlock` →
:class:`RowChunk` parked in the driver's pending lists →
:class:`ColumnarSelectInstance` at the period boundary).  The instance
satisfies the full :class:`~repro.core.model.AuctionInstance` protocol
but holds only column slices; ``operators``/``queries`` materialize on
first touch, so the fastpath selection kernels — which read
``_select_columns`` / ``_index_columns`` and never the object tuples —
admit a whole block without constructing a single ``SelectPlan`` for
the losers.  Winners materialize one by one when billing and the
subscription book ask for them.

Everything observable (repr, ``union_load`` float-summation order,
``query()`` lookups, pickles) is pinned to what the eager reference
instance produces for the same rows, so reports stay byte-identical.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import AuctionInstance, Operator, Query
from repro.sim.arrivals import ArrivalBlock, SelectPlan

__all__ = ["RowChunk", "ColumnarSelectInstance"]


class RowChunk:
    """A contiguous run of admitted-for-auction rows in a pending list.

    ``categories`` carries the resolved category name per row (drawn or
    validated at consume time, so the manager RNG is exercised in the
    same order as the object path).
    """

    __slots__ = ("block", "start", "stop", "categories")

    def __init__(self, block: ArrivalBlock, start: int, stop: int,
                 categories: "list[str]") -> None:
        self.block = block
        self.start = start
        self.stop = stop
        self.categories = categories

    def __len__(self) -> int:
        return self.stop - self.start

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"RowChunk(rows={self.stop - self.start}, "
                f"start={self.start})")

    def __deepcopy__(self, memo):
        from copy import deepcopy
        clone = RowChunk(deepcopy(self.block, memo), self.start, self.stop,
                         list(self.categories))
        memo[id(self)] = clone
        return clone


def _auction_candidate(obj):
    """What the reference manager auctions for a pending object row."""
    if type(obj) is SelectPlan:
        return obj
    return Query._trusted(obj.query_id, tuple(obj.operator_ids), obj.bid,
                          obj.valuation, obj.owner)


class ColumnarSelectInstance(AuctionInstance):
    """An auction instance backed by column slices, not object tuples.

    Only valid for the shape the pump guarantees before building one:
    every candidate is a single-select query and every operator id is
    unique (sharing degree 1 throughout).  Rows that entered the
    boundary as real objects (renewals, object-path fallbacks) keep
    their original in ``objs`` and materialize through it, preserving
    object identity for the engine transition.
    """

    # Built via object.__new__; the dataclass fields operators/queries
    # become lazy properties below (class attributes win over the frozen
    # instance __dict__ for data descriptors).

    @classmethod
    def _from_rows(cls, *, ids, ops, inputs, costs, selectivities, bids,
                   loads, valuations, owners, objs, capacity):
        instance = object.__new__(cls)
        sets = object.__setattr__
        sets(instance, "capacity", capacity)
        sets(instance, "_ids", ids)
        sets(instance, "_ops", ops)
        sets(instance, "_inputs", inputs)
        sets(instance, "_costs", costs)
        sets(instance, "_sels", selectivities)
        sets(instance, "_bids", bids)
        sets(instance, "_loads", loads)
        sets(instance, "_valuations", valuations)
        sets(instance, "_owners", owners)
        sets(instance, "_objs", objs)
        sets(instance, "_n", len(ids))
        # Hint for Mechanism._seal: with no stated valuations every bid
        # is trivially truthful, so sealing can skip materialization.
        sets(instance, "_all_truthful", valuations is None)
        # The fastpath kernels read these without touching .queries.
        sets(instance, "_select_columns",
             (list(ids), np.asarray(bids, dtype=np.float64),
              np.asarray(loads, dtype=np.float64)))
        return instance

    # -- lazy float views (python floats, matching the eager objects) --

    def _cache(self, name, build):
        value = self.__dict__.get(name)
        if value is None:
            value = build()
            object.__setattr__(self, name, value)
        return value

    def _cost_floats(self):
        return self._cache("_cost_list", lambda: [float(c) for c in self._costs])

    def _bid_floats(self):
        return self._cache("_bid_list", lambda: [float(b) for b in self._bids])

    def _load_floats(self):
        return self._cache("_load_list", lambda: [float(x) for x in self._loads])

    def _row_of(self):
        return self._cache(
            "_row_map",
            lambda: {query_id: row for row, query_id in enumerate(self._ids)})

    def _op_load_of(self):
        def build():
            loads = self._load_floats()
            return {op_id: loads[row] for row, op_id in enumerate(self._ops)}
        return self._cache("_op_loads", build)

    # -- materialization ----------------------------------------------

    def _materialize_row(self, row: int):
        objs = self._objs
        if objs is not None and objs[row] is not None:
            return _auction_candidate(objs[row])
        valuations = self._valuations
        return SelectPlan(
            self._ids[row], self._ops[row], self._inputs[row],
            self._cost_floats()[row], float(self._sels[row]),
            self._bid_floats()[row],
            None if valuations is None else valuations[row],
            self._owners[row])

    def _row_query(self, row: int):
        cache = self.__dict__.get("_row_cache")
        if cache is None:
            cache = [None] * self._n
            object.__setattr__(self, "_row_cache", cache)
        query = cache[row]
        if query is None:
            query = cache[row] = self._materialize_row(row)
        return query

    # -- the AuctionInstance protocol ---------------------------------

    @property
    def operators(self):  # type: ignore[override]
        def build():
            loads = self._load_floats()
            return {op_id: Operator._trusted(op_id, loads[row])
                    for row, op_id in enumerate(self._ops)}
        return self._cache("_mat_operators", build)

    @property
    def queries(self):  # type: ignore[override]
        return self._cache(
            "_mat_queries",
            lambda: tuple(self._row_query(row) for row in range(self._n)))

    @property
    def _queries_by_id(self):  # type: ignore[override]
        return self._cache(
            "_mat_by_id",
            lambda: {query.query_id: query for query in self.queries})

    @property
    def _sharing(self):  # type: ignore[override]
        return self._cache(
            "_mat_sharing", lambda: {op_id: 1 for op_id in self._ops})

    @property
    def num_queries(self) -> int:
        return self._n

    def query(self, query_id: str):
        return self._row_query(self._row_of()[query_id])

    def has_query(self, query_id: str) -> bool:
        return query_id in self._row_of()

    def max_sharing_degree(self) -> int:
        return 1 if self._n else 0

    def sharing_degree(self, operator_id: str) -> int:
        return self._sharing[operator_id]

    def union_load(self, query_ids) -> float:
        row_of = self._row_of()
        ops = self._ops
        seen = set()
        for query_id in query_ids:
            seen.add(ops[row_of[query_id]])
        op_load = self._op_load_of()
        return sum(op_load[op_id] for op_id in seen)

    def _index_columns(self):
        """Columns for InstanceIndex.from_select_columns (duck hook)."""
        ids, bids, loads = self._select_columns
        return ids, list(self._ops), bids, loads

    # -- plumbing ------------------------------------------------------

    def __repr__(self) -> str:
        return (f"AuctionInstance(operators={self.operators!r}, "
                f"queries={self.queries!r}, capacity={self.capacity!r})")

    def __eq__(self, other):
        if not isinstance(other, AuctionInstance):
            return NotImplemented
        return (self.operators == other.operators
                and self.queries == other.queries
                and self.capacity == other.capacity)

    __hash__ = None

    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_fastpath_cache", None)
        for name in ("_cost_list", "_bid_list", "_load_list", "_row_map",
                     "_op_loads", "_row_cache", "_mat_operators",
                     "_mat_queries", "_mat_by_id", "_mat_sharing"):
            state.pop(name, None)
        return state
