"""The open-system event-driven simulation runtime.

The paper's economics are temporal — queries arrive continuously,
subscribe for a period, get billed, expire, renew — and this package
is where that timeline actually runs.  :class:`SimulationDriver` is a
checkpointable discrete-event loop over an
:class:`~repro.service.AdmissionService` or a whole
:class:`~repro.cluster.FederatedAdmissionService`; arrival processes
are spec-addressable (``"poisson:rate=40"``, ``"burst"``,
``"trace:path=..."``); subscription lifecycles run Section VII's
per-category auctions as first-class period events; a latency probe
surfaces per-tick queue depth and SLA percentiles; and every run can
be recorded into a ``repro/sim-trace`` document and replayed
byte-identically.
"""

from repro.sim.arrivals import (
    Arrival,
    ArrivalProcess,
    ArrivalSpec,
    BurstArrivals,
    PoissonArrivals,
    ScheduledArrivals,
    TraceArrivals,
    make_arrivals,
    register_arrivals,
    registered_arrivals,
    resolve_arrivals,
    synthetic_query,
)
from repro.sim.driver import (
    SIM_STATE_VERSION,
    LatencyProbe,
    SimPeriodReport,
    SimSnapshot,
    SimulationDriver,
    TickMetrics,
)
from repro.sim.events import (
    ArrivalEvent,
    Event,
    EventQueue,
    ExpiryEvent,
    PeriodEvent,
    RenewalEvent,
    TickEvent,
)
from repro.sim.hosts import (
    ClusterHost,
    ServiceHost,
    SimulationHost,
    wrap_host,
)
from repro.sim.metrics import (
    latency_percentiles,
    metrics_snapshot,
    percentile_dict,
)
from repro.sim.subscriptions import (
    SubscriptionEntry,
    SubscriptionManager,
    SubscriptionOptions,
    SubscriptionPeriodResult,
)
from repro.sim.trace import SimTrace, TraceEntry, TraceRecorder

__all__ = [
    "Arrival",
    "ArrivalEvent",
    "ArrivalProcess",
    "ArrivalSpec",
    "BurstArrivals",
    "ClusterHost",
    "Event",
    "EventQueue",
    "ExpiryEvent",
    "LatencyProbe",
    "PeriodEvent",
    "PoissonArrivals",
    "RenewalEvent",
    "SIM_STATE_VERSION",
    "ScheduledArrivals",
    "ServiceHost",
    "SimPeriodReport",
    "SimSnapshot",
    "SimTrace",
    "SimulationDriver",
    "SimulationHost",
    "SubscriptionEntry",
    "SubscriptionManager",
    "SubscriptionOptions",
    "SubscriptionPeriodResult",
    "TickEvent",
    "TickMetrics",
    "TraceArrivals",
    "TraceEntry",
    "TraceRecorder",
    "latency_percentiles",
    "make_arrivals",
    "metrics_snapshot",
    "percentile_dict",
    "register_arrivals",
    "registered_arrivals",
    "resolve_arrivals",
    "synthetic_query",
    "wrap_host",
]
