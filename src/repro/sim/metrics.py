"""Shared summarization of probe metrics: one code path, plain dicts.

Three layers report the same numbers — per-tick queue depths and exact
delivery-latency percentiles from a :class:`~repro.sim.LatencyProbe`:
the ``python -m repro sim`` CLI, the backpressure experiment export,
the open-system benchmark, and the serving layer's ``/metrics``
endpoint.  Before this module each computed its own percentiles; now
they all call :func:`metrics_snapshot` (or the lower-level
:func:`percentile_dict`) and the numbers cannot drift.

Everything here is duck-typed over the :class:`~repro.sim.TickMetrics`
fields (``queued``, ``delivered``, ``work``) and plain latency-sample
sequences, so the helpers also summarize gateway request latencies and
experiment records that are not literally ``TickMetrics``.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

#: The default percentiles every reporting surface shows.
DEFAULT_PERCENTILES = (50.0, 95.0, 99.0)


def latency_percentiles(
    samples: Sequence[float], percentiles: Sequence[float] = DEFAULT_PERCENTILES
) -> dict[float, float]:
    """Exact percentiles over raw latency samples, keyed by percentile.

    Empty *samples* yield 0.0 for every percentile (a probe that never
    delivered has no latency to report, not an error).
    """
    if not samples:
        return {float(p): 0.0 for p in percentiles}
    values = np.percentile(np.asarray(samples, dtype=float),
                           list(percentiles))
    return {float(p): float(v) for p, v in zip(percentiles, values)}


def percentile_dict(
    samples: Sequence[float], percentiles: Sequence[float] = DEFAULT_PERCENTILES
) -> dict[str, float]:
    """:func:`latency_percentiles` with JSON-friendly ``"p50"`` keys."""
    return {f"p{p:g}": value
            for p, value in latency_percentiles(samples, percentiles).items()}


def metrics_snapshot(
    ticks: Iterable,
    latency_samples: "Sequence[float] | None" = None,
    percentiles: Sequence[float] = DEFAULT_PERCENTILES,
) -> dict:
    """One plain-dict summary of a probed run.

    *ticks* is any iterable of records with ``queued``, ``delivered``
    and ``work`` attributes (:class:`~repro.sim.TickMetrics`, the
    backpressure experiment's per-tick records, ...); *latency_samples*
    are the raw delivery latencies backing the exact percentiles.

    Returns ``{"ticks", "delivered", "work", "mean_queue",
    "max_queue", "latency": {"p50": ...}}`` — JSON-ready, the shape
    the CLI, the benchmarks and the gateway's ``/metrics`` all emit.
    """
    records = list(ticks)
    queued = [record.queued for record in records]
    return {
        "ticks": len(records),
        "delivered": int(sum(record.delivered for record in records)),
        "work": float(sum(record.work for record in records)),
        "mean_queue": (float(sum(queued)) / len(queued)) if queued else 0.0,
        "max_queue": int(max(queued, default=0)),
        "latency": percentile_dict(latency_samples or [], percentiles),
    }


def wal_snapshot(log) -> dict:
    """The ``"wal"`` section of a metrics snapshot.

    *log* is a :class:`~repro.wal.WriteAheadLog` or ``None``; the
    disabled shape keeps the key present so dashboards can key on
    ``wal.enabled`` without existence checks.
    """
    if log is None:
        return {"enabled": False}
    return {"enabled": True, **log.stats_snapshot()}
