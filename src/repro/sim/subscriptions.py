"""Subscription lifecycles on a live admission service.

:mod:`repro.cloud.subscriptions` models Section VII's multi-period
categories on bare auction instances; this module makes those category
auctions *first-class period events* of an
:class:`~repro.service.AdmissionService`:

* arrivals request a category (day / week / month); the period
  boundary runs one independent auction per category over the
  currently *free* capacity, partitioned by the category fractions;
* winners are invoiced through the service's
  :class:`~repro.cloud.billing.BillingLedger` (the outcome's mechanism
  name is tagged ``"<mechanism>@<category>"``, so revenue audits
  split by category) and admitted into the stream engine, where they
  run — untouched by later auctions — until their subscription
  expires;
* at expiry the driver reclaims their capacity (the engine drops the
  plans, shared operators only once nobody else holds them) and, when
  auto-renewal is on, resubmits the query for the same category at
  the very next boundary.

Because each per-category auction uses a bid-strategyproof mechanism
and an active subscription is never re-priced, the scheme stays
bid-strategyproof period over period (the invariant suite pins this);
gaming *category choice* remains the paper's open problem.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, replace
from collections.abc import Mapping, Sequence

import numpy as np

from repro.cloud.subscriptions import (
    DEFAULT_CATEGORIES,
    SubscriptionCategory,
    validate_categories,
)
from repro.core.mechanism import Mechanism, MechanismSpec
from repro.core.model import AuctionInstance, Operator
from repro.core.result import AuctionOutcome
from repro.dsms.load import estimate_operator_loads
from repro.dsms.operators import SelectOperator
from repro.dsms.plan import ContinuousQuery, QueryPlanCatalog
from repro.sim.arrivals import SelectPlan, as_continuous_query
from repro.sim.columnar import ColumnarSelectInstance, RowChunk
from repro.sim.trace import as_select_plan
from repro.utils.rng import derive_seed, spawn_rng
from repro.utils.validation import ValidationError, require


@dataclass(frozen=True)
class SubscriptionOptions:
    """Declarative settings of the subscription lifecycle.

    ``mechanism`` picks the per-category auction: a spec string /
    :class:`MechanismSpec` instantiated freshly per category, or
    ``None`` to clone the host service's mechanism (each category gets
    an independent copy, so randomized mechanisms hold independent
    RNG streams).  ``auto_renew`` resubmits expiring subscriptions for
    their old category; ``max_renewals`` bounds how often (``None`` =
    forever).  ``seed`` drives the category assignment of arrivals
    that did not request one.
    """

    categories: Sequence[SubscriptionCategory] = DEFAULT_CATEGORIES
    mechanism: "str | MechanismSpec | None" = None
    auto_renew: bool = True
    max_renewals: "int | None" = None
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "categories", validate_categories(self.categories))
        if self.max_renewals is not None:
            require(int(self.max_renewals) >= 0,
                    "max_renewals must be >= 0")
        if isinstance(self.mechanism, str):
            MechanismSpec.parse(self.mechanism).validate()
        elif isinstance(self.mechanism, MechanismSpec):
            self.mechanism.validate()
        elif self.mechanism is not None:
            raise ValidationError(
                f"subscription mechanism must be a spec string, a "
                f"MechanismSpec, or None (clone the service's), got "
                f"{self.mechanism!r}")


@dataclass
class SubscriptionEntry:
    """One live subscription occupying capacity until it expires."""

    query: ContinuousQuery
    category: str
    start_period: int
    expires_period: int
    payment: float
    renewals: int = 0


@dataclass(frozen=True)
class SubscriptionPeriodResult:
    """What one period boundary did to a shard's subscription book."""

    period: int
    outcomes: Mapping[str, AuctionOutcome] = field(default_factory=dict)
    admitted: tuple[str, ...] = ()
    rejected: tuple[str, ...] = ()
    expired: tuple[str, ...] = ()
    revenue: float = 0.0
    reclaimed_capacity: float = 0.0
    held_capacity: float = 0.0

    @property
    def admitted_entries(self) -> int:
        """How many subscriptions this boundary opened."""
        return len(self.admitted)


class SubscriptionManager:
    """The subscription book of one admission service (one shard).

    Owns the per-category mechanisms, the active-subscription entries
    and the category-assignment RNG; everything is plain picklable
    state, so the book rides inside simulation snapshots and resumes
    byte-identically.
    """

    def __init__(
        self,
        options: SubscriptionOptions,
        service_mechanism: Mechanism,
        shard: int = 0,
    ) -> None:
        self.options = options
        self.shard = int(shard)
        self.mechanisms: dict[str, Mechanism] = {}
        for category in options.categories:
            if options.mechanism is None:
                mechanism = copy.deepcopy(service_mechanism)
            elif isinstance(options.mechanism, MechanismSpec):
                mechanism = options.mechanism.create()
            else:
                mechanism = MechanismSpec.parse(options.mechanism).create()
            self.mechanisms[category.name] = mechanism
        self.active: dict[str, SubscriptionEntry] = {}
        self._rng = spawn_rng(
            derive_seed(options.seed, "categories", self.shard))
        self.expired_total = 0
        self.renewed_total = 0
        #: query id → how many times it renewed (drives max_renewals).
        self.renewal_counts: dict[str, int] = {}

    @property
    def categories(self) -> tuple[SubscriptionCategory, ...]:
        """The offered category mix, in declared order."""
        return tuple(self.options.categories)

    def category(self, name: str) -> SubscriptionCategory:
        """The category called *name* (validated)."""
        for category in self.options.categories:
            if category.name == name:
                return category
        known = ", ".join(c.name for c in self.options.categories)
        raise ValidationError(
            f"unknown subscription category {name!r}; offered: {known}")

    def assign_category(self, query: ContinuousQuery) -> str:
        """Draw a category for an arrival that did not request one.

        Weighted by the capacity fractions — bigger slices attract
        proportionally more of the anonymous demand.
        """
        return self.assign_categories(1)[0]

    def assign_categories(self, count: int) -> list[str]:
        """Draw categories for *count* anonymous arrivals at once.

        One vectorized draw consuming the assignment RNG exactly as
        *count* sequential :meth:`assign_category` calls would (a
        ``Generator``'s block draw is bit-identical to the same number
        of scalar draws), so batched and per-event admission assign
        identical categories.
        """
        categories = self.options.categories
        bounds = []
        acc = 0.0
        for category in categories:
            acc += category.capacity_fraction
            bounds.append(acc)
        picks = self._rng.random(int(count)) * acc
        indices = np.searchsorted(
            np.asarray(bounds), picks, side="right")
        indices = np.minimum(indices, len(categories) - 1)
        return [categories[index].name for index in indices.tolist()]

    # ------------------------------------------------------------------
    # Capacity accounting
    # ------------------------------------------------------------------

    def _estimated_loads(
        self,
        plans: Sequence[ContinuousQuery],
        stream_rates: Mapping[str, float],
    ) -> dict[str, float]:
        loads = _single_select_loads(plans, stream_rates)
        if loads is not None:
            return loads
        catalog = QueryPlanCatalog(
            [as_continuous_query(plan) for plan in plans])
        return estimate_operator_loads(catalog, stream_rates)

    def held_capacity(
        self, stream_rates: Mapping[str, float]
    ) -> float:
        """Estimated union load of every active subscription's plan.

        Shared operators are counted once — the engine runs them once.
        """
        if not self.active:
            return 0.0
        loads = self._estimated_loads(
            self._deduplicated_active_plans(), stream_rates)
        held_ops: set[str] = set()
        for entry in self.active.values():
            held_ops.update(entry.query.operator_ids)
        return sum(loads.get(op_id, 0.0) for op_id in held_ops)

    def _deduplicated_active_plans(self) -> list[ContinuousQuery]:
        return [entry.query for entry in self.active.values()]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def expiring(self, period: int) -> list[str]:
        """Query ids whose subscription ends at *period*'s boundary."""
        return sorted(
            query_id for query_id, entry in self.active.items()
            if entry.expires_period <= period)

    def expire(
        self,
        service,
        query_ids: Sequence[str],
        stream_rates: Mapping[str, float],
    ) -> tuple[list[SubscriptionEntry], float]:
        """Close the given subscriptions and reclaim their capacity.

        The engine drops the expired plans (a warm engine goes through
        the full transition phase); returns the closed entries and the
        capacity their operators released — the load of every operator
        no remaining subscription still shares.
        """
        entries = []
        before = self.held_capacity(stream_rates)
        for query_id in query_ids:
            if query_id not in self.active:
                raise ValidationError(
                    f"cannot expire unknown subscription {query_id!r}")
            entries.append(self.active.pop(query_id))
        reclaimed = before - self.held_capacity(stream_rates)
        engine = service.engine
        to_remove = tuple(
            entry.query.query_id for entry in entries
            if entry.query.query_id in engine.admitted_ids)
        if to_remove:
            engine.transition(add=(), remove=to_remove,
                              hold_ticks=service.transitions.hold_ticks)
        self.expired_total += len(entries)
        return entries, reclaimed

    def run_period(
        self,
        service,
        period: int,
        pending: Sequence[tuple[ContinuousQuery, str]],
    ) -> SubscriptionPeriodResult:
        """Run the per-category auctions of one period boundary.

        *pending* are the (query, category) requests that arrived since
        the last boundary (including renewals).  Active subscriptions
        do not re-bid: their capacity is held, their shared operators
        cost newcomers nothing extra (zero-load in the auction input),
        and winners are billed through the service's ledger and
        admitted into its engine.
        """
        for _query, category_name in pending:
            self.category(category_name)  # validate early
        stream_rates = {source.name: source.expected_rate()
                        for source in service.sources}
        all_plans = (self._deduplicated_active_plans()
                     + [query for query, _category in pending])
        loads = (self._estimated_loads(all_plans, stream_rates)
                 if all_plans else {})
        held_ops: set[str] = set()
        for entry in self.active.values():
            held_ops.update(entry.query.operator_ids)
        held = sum(loads.get(op_id, 0.0) for op_id in held_ops)
        free = max(service.capacity - held, 0.0)

        outcomes: dict[str, AuctionOutcome] = {}
        admitted: list[str] = []
        rejected: list[str] = []
        revenue = 0.0
        to_admit: list[ContinuousQuery] = []
        for category in self.options.categories:
            requests = [(query, name) for query, name in pending
                        if name == category.name]
            if not requests:
                continue
            slice_capacity = free * category.capacity_fraction
            if slice_capacity <= 0:
                rejected.extend(query.query_id for query, _name in requests)
                continue
            plans = {query.query_id: query for query, _name in requests}
            # Build the auction instance through the trusted
            # constructors: every pending plan was validated on entry,
            # and the operator table is derived from the query set, so
            # the instance invariants hold by construction.  The
            # validating path costs ~10µs per candidate — per period,
            # that dwarfs the auction itself.
            operators: dict[str, Operator] = {}
            sharing: dict[str, int] = {}
            by_id: dict[str, object] = {}
            auction_queries = []
            # While every candidate is an unshared single-select plan,
            # mirror its id/bid/load into flat columns — the columnar
            # GV kernel then selects straight off these arrays instead
            # of re-walking the instance per query.
            col_ids: list[str] = []
            col_bids: list[float] = []
            col_loads: list[float] = []
            columnar = True
            for query in plans.values():
                candidate = _auction_query(query)
                auction_queries.append(candidate)
                by_id[candidate.query_id] = candidate
                if columnar and type(candidate) is SelectPlan:
                    op_id = candidate.op_id
                    if op_id in operators:
                        sharing[op_id] += 1
                        columnar = False
                    else:
                        load = (0.0 if op_id in held_ops
                                else loads.get(op_id, 0.0))
                        operators[op_id] = Operator._trusted(op_id, load)
                        sharing[op_id] = 1
                        col_ids.append(candidate.query_id)
                        col_bids.append(candidate.bid)
                        col_loads.append(load)
                    continue
                columnar = False
                for op_id in candidate.operator_ids:
                    if op_id in operators:
                        sharing[op_id] += 1
                    else:
                        operators[op_id] = Operator._trusted(
                            op_id,
                            0.0 if op_id in held_ops
                            else loads.get(op_id, 0.0))
                        sharing[op_id] = 1
            instance = AuctionInstance._from_parts(
                operators, tuple(auction_queries), slice_capacity,
                by_id, sharing)
            if columnar and auction_queries:
                object.__setattr__(
                    instance, "_select_columns",
                    (col_ids,
                     np.asarray(col_bids, dtype=np.float64),
                     np.asarray(col_loads, dtype=np.float64)))
            outcome = self.mechanisms[category.name].run(instance)
            outcome = replace(
                outcome,
                mechanism=f"{outcome.mechanism}@{category.name}")
            outcomes[category.name] = outcome
            revenue += service.ledger.bill_outcome(period, outcome)
            for query_id, query in plans.items():
                if not outcome.is_winner(query_id):
                    rejected.append(query_id)
                    continue
                admitted.append(query_id)
                # Only winners materialize: the engine needs a real
                # plan to run, losers never leave their compact form.
                query = as_continuous_query(query)
                to_admit.append(query)
                self.active[query_id] = SubscriptionEntry(
                    query=query,
                    category=category.name,
                    start_period=period,
                    expires_period=period + category.length_days,
                    payment=outcome.payment(query_id),
                    renewals=self.renewal_counts.get(query_id, 0),
                )
        if to_admit:
            engine = service.engine
            if engine.admitted_ids:
                engine.transition(
                    add=tuple(to_admit), remove=(),
                    hold_ticks=service.transitions.hold_ticks)
            else:
                for query in to_admit:
                    engine.admit(query)
        return SubscriptionPeriodResult(
            period=period,
            outcomes=outcomes,
            admitted=tuple(sorted(admitted)),
            rejected=tuple(sorted(rejected)),
            revenue=revenue,
            held_capacity=held,
        )

    def run_period_rows(
        self,
        service,
        period: int,
        pending: Sequence,
    ) -> "tuple[SubscriptionPeriodResult, dict]":
        """Columnar twin of :meth:`run_period` over a mixed pending list.

        *pending* interleaves ``(query, category)`` pairs (renewals,
        object-path arrivals) with :class:`~repro.sim.columnar.RowChunk`
        row slices the pump parked, in arrival order.  The loads, the
        held capacity, and every per-category auction run over flat
        columns; ``SelectPlan`` objects materialize for winners only
        (the losers' ids already exist as strings).  Whenever the rows
        leave the shape the columnar math pins bitwise — duplicate ids
        or operators, operators feeding operators, shapes the
        single-select load estimate cannot cover — the whole boundary
        falls back to :meth:`run_period` on the expanded object list,
        so the result is the reference result by construction either
        way.

        Returns ``(result, stats)`` with ``stats`` the pump counters
        for this boundary (``rows``, ``winners``, ``fell_back``).
        """
        ids: list[str] = []
        ops: list[str] = []
        inputs: list[str] = []
        owners: list[str] = []
        sels: list = []
        valuations: list = []
        objs: list = []
        cats: list[str] = []
        cost_list: list[float] = []
        bid_list: list[float] = []
        convertible = True
        for item in pending:
            if type(item) is RowChunk:
                block = item.block
                start, stop = item.start, item.stop
                rows = stop - start
                ids.extend(block.ids[start:stop])
                ops.extend(block.ops[start:stop])
                owners.extend(block.owners[start:stop])
                block_inputs = block.inputs
                if type(block_inputs) is str:
                    inputs.extend([block_inputs] * rows)
                else:
                    inputs.extend(block_inputs[start:stop])
                block_sels = block.selectivities
                if isinstance(block_sels, float):
                    sels.extend([block_sels] * rows)
                else:
                    sels.extend(block_sels[start:stop])
                block_vals = block.valuations
                valuations.extend([None] * rows if block_vals is None
                                  else block_vals[start:stop])
                objs.extend([None] * rows)
                cost_list.extend(block.costs[start:stop].tolist())
                bid_list.extend(block.bids[start:stop].tolist())
                cats.extend(item.categories)
            else:
                query, name = item
                plan = as_select_plan(query)
                if plan is None:
                    convertible = False
                    break
                ids.append(plan.query_id)
                ops.append(plan.op_id)
                owners.append(plan.owner)
                inputs.append(plan.stream)
                sels.append(plan.selectivity)
                valuations.append(plan.valuation)
                objs.append(query)
                cost_list.append(plan.cost)
                bid_list.append(plan.bid)
                cats.append(name)

        row_count = len(ids)
        stats = {"rows": row_count, "winners": 0, "fell_back": False}
        if not convertible:
            return self._run_period_fallback(service, period, pending,
                                             stats)

        # Category validation first, in arrival order — the reference's
        # error surfaces before any other work.
        known = {category.name for category in self.options.categories}
        for name in cats:
            if name not in known:
                self.category(name)  # raises the reference message

        stream_rates = {source.name: source.expected_rate()
                        for source in service.sources}
        active_plans = self._deduplicated_active_plans()
        active = (_single_select_loads_ex(active_plans, stream_rates)
                  if active_plans else ({}, set()))
        op_set = set(ops)
        if (active is None
                # Duplicate pending ids/operators: the reference dedups
                # per category (last wins) and merges shared operators —
                # shapes the flat columns do not model.
                or len(op_set) != row_count
                or len(set(ids)) != row_count
                # Pending rows touching operators the active book holds
                # (zero-load in the reference instance), or any
                # operator feeding another: topology matters, so the
                # joint load estimate would take the catalog walk.
                or (op_set & active[0].keys())
                or ((active[1] | set(inputs))
                    & (active[0].keys() | op_set))):
            return self._run_period_fallback(service, period, pending,
                                             stats)
        loads_active, _active_inputs = active

        held_ops: set[str] = set()
        for entry in self.active.values():
            held_ops.update(entry.query.operator_ids)
        held = sum(loads_active.get(op_id, 0.0) for op_id in held_ops)
        free = max(service.capacity - held, 0.0)

        # Vectorized twin of the reference's per-plan
        # ``stream_rate * cost`` (elementwise float64 multiplies are
        # the scalar products, bitwise).
        costs_arr = np.asarray(cost_list, dtype=np.float64)
        bids_arr = np.asarray(bid_list, dtype=np.float64)
        if len(set(inputs)) == 1:
            loads_arr = stream_rates.get(inputs[0], 0.0) * costs_arr
        else:
            rates = np.asarray(
                [stream_rates.get(name, 0.0) for name in inputs],
                dtype=np.float64)
            loads_arr = rates * costs_arr

        by_cat: dict[str, list[int]] = {}
        for row, name in enumerate(cats):
            by_cat.setdefault(name, []).append(row)
        has_vals = any(v is not None for v in valuations)
        has_objs = any(obj is not None for obj in objs)

        outcomes: dict[str, AuctionOutcome] = {}
        admitted: list[str] = []
        rejected: list[str] = []
        revenue = 0.0
        to_admit: list[ContinuousQuery] = []
        for category in self.options.categories:
            rows = by_cat.get(category.name)
            if not rows:
                continue
            slice_capacity = free * category.capacity_fraction
            if slice_capacity <= 0:
                rejected.extend(ids[row] for row in rows)
                continue
            take = np.asarray(rows, dtype=np.intp)
            cat_ids = [ids[row] for row in rows]
            instance = ColumnarSelectInstance._from_rows(
                ids=cat_ids,
                ops=[ops[row] for row in rows],
                inputs=[inputs[row] for row in rows],
                costs=costs_arr[take],
                selectivities=[sels[row] for row in rows],
                bids=bids_arr[take],
                loads=loads_arr[take],
                valuations=([valuations[row] for row in rows]
                            if has_vals else None),
                owners=[owners[row] for row in rows],
                objs=([objs[row] for row in rows]
                      if has_objs else None),
                capacity=slice_capacity,
            )
            outcome = self.mechanisms[category.name].run(instance)
            outcome = replace(
                outcome,
                mechanism=f"{outcome.mechanism}@{category.name}")
            outcomes[category.name] = outcome
            revenue += service.ledger.bill_outcome(period, outcome)
            # is_winner is payments-membership; hoisting the dict off
            # the outcome skips a method call per (mostly losing) row.
            payments = outcome.payments
            for row, query_id in zip(rows, cat_ids):
                if query_id not in payments:
                    rejected.append(query_id)
                    continue
                admitted.append(query_id)
                # Only winners materialize; object rows (renewals) keep
                # their original plan object, exactly as the reference
                # winner loop would see it.
                obj = objs[row]
                query = as_continuous_query(
                    obj if obj is not None
                    else instance.query(query_id))
                to_admit.append(query)
                self.active[query_id] = SubscriptionEntry(
                    query=query,
                    category=category.name,
                    start_period=period,
                    expires_period=period + category.length_days,
                    payment=outcome.payment(query_id),
                    renewals=self.renewal_counts.get(query_id, 0),
                )
        if to_admit:
            engine = service.engine
            if engine.admitted_ids:
                engine.transition(
                    add=tuple(to_admit), remove=(),
                    hold_ticks=service.transitions.hold_ticks)
            else:
                for query in to_admit:
                    engine.admit(query)
        stats["winners"] = len(admitted)
        result = SubscriptionPeriodResult(
            period=period,
            outcomes=outcomes,
            admitted=tuple(sorted(admitted)),
            rejected=tuple(sorted(rejected)),
            revenue=revenue,
            held_capacity=held,
        )
        return result, stats

    def _run_period_fallback(self, service, period, pending, stats):
        """Expand row chunks to objects and run the reference boundary."""
        stats["fell_back"] = True
        expanded: list[tuple[ContinuousQuery, str]] = []
        for item in pending:
            if type(item) is RowChunk:
                block = item.block
                for offset, row in enumerate(
                        range(item.start, item.stop)):
                    expanded.append(
                        (block.plan(row), item.categories[offset]))
            else:
                expanded.append(item)
        result = self.run_period(service, period, expanded)
        stats["winners"] = len(result.admitted)
        return result, stats


def _auction_query(query: ContinuousQuery):
    """The auction-layer view of a continuous query.

    A :class:`~repro.sim.arrivals.SelectPlan` already *is* the
    auction-layer view — it exposes the whole query protocol the
    mechanisms read (``query_id`` / ``operator_ids`` / ``bid`` /
    ``valuation`` / ``owner`` / ``true_value`` / ``owner_id`` /
    ``with_bid``) — so it passes through untouched.  Full continuous
    queries go through the trusted :class:`~repro.core.model.Query`
    constructor: plans reaching the subscription manager were
    validated when built (synthesis, trace decode, or gateway
    ingress) and expose their operator ids as a tuple.
    """
    if type(query) is SelectPlan:
        return query
    from repro.core.model import Query

    return Query._trusted(
        query.query_id,
        tuple(query.operator_ids),
        query.bid,
        query.valuation,
        query.owner,
    )


def _single_select_loads(
    plans: Sequence, stream_rates: Mapping[str, float]
) -> "dict[str, float] | None":
    """Operator loads without building a catalog, when plans allow.

    Every single-select plan over a source stream loads its operator
    with ``stream_rate * cost_per_tuple`` — bitwise exactly what
    :func:`~repro.dsms.load.estimate_operator_loads` computes for it.
    Returns ``None`` (fall back to the full catalog walk) as soon as
    any plan has another shape, two plans disagree on a shared
    operator's definition, or an operator feeds another — the cases
    where topology actually matters.
    """
    result = _single_select_loads_ex(plans, stream_rates)
    return None if result is None else result[0]


def _single_select_loads_ex(
    plans: Sequence, stream_rates: Mapping[str, float]
) -> "tuple[dict[str, float], set[str]] | None":
    """:func:`_single_select_loads` plus the input-stream names.

    The columnar boundary needs the inputs to decide whether *pending*
    rows chain onto the active plans' topology without re-walking the
    active book.
    """
    loads: dict[str, float] = {}
    inputs: set[str] = set()
    for plan in plans:
        if type(plan) is SelectPlan:
            op_id = plan.op_id
            name = plan.stream
            cost = plan.cost
        elif isinstance(plan, ContinuousQuery):
            operators = plan.operators
            if len(operators) != 1:
                return None
            op = operators[0]
            if type(op) is not SelectOperator or len(op.inputs) != 1:
                return None
            op_id = op.op_id
            name = op.inputs[0]
            cost = op.cost_per_tuple
        else:
            return None
        load = stream_rates.get(name, 0.0) * cost
        previous = loads.get(op_id)
        if previous is not None and previous != load:
            return None
        loads[op_id] = load
        inputs.add(name)
    if inputs & loads.keys():
        # An operator feeds another: rates chain, topology matters.
        return None
    return loads, inputs
