"""The open-system simulation driver.

:class:`SimulationDriver` turns the admission service's lockstep
period loop into a *discrete-event simulation*: a virtual clock (in
engine ticks), one deterministic :class:`~repro.sim.events.EventQueue`,
and five event kinds — arrivals, period boundaries, subscription
expiries, renewals, and probe ticks.  The same driver runs:

* the **closed loop** — :meth:`AdmissionService.run_periods` is now a
  degenerate schedule of this driver (each submission batch arrives
  exactly at its period boundary), byte-identical to the historical
  loop;
* the **open system** — spec-addressable arrival processes
  (``"poisson:rate=40"``, ``"burst"``, ``"trace:path=..."``) feed
  queries continuously; boundaries auction whatever arrived;
* **subscription lifecycles** — with
  :class:`~repro.sim.subscriptions.SubscriptionOptions`, boundaries
  run Section VII per-category auctions, expiries reclaim capacity,
  renewals resubmit — all billed through the service's ledger;
* **cluster scale** — a :class:`~repro.cluster.FederatedAdmissionService`
  shares the driver's single clock; per-shard arrival streams merge
  deterministically (``route="stream"``) or route by placement.

Per-tick queue/latency metrics come from an optional *latency probe*:
a :class:`~repro.dsms.scheduler.ScheduledEngine` per shard, mirroring
the shard's admitted set on the same work budget, ticked once per
virtual-clock tick — the paper's over-admission backpressure made
measurable (queue growth, SLA percentiles).

The whole driver state — clock, event queue, arrival-process RNGs,
subscription books, probes, trace recording — checkpoints into one
versioned envelope (``repro/sim-snapshot``) and resumes
byte-identically mid-simulation.
"""

from __future__ import annotations

import collections
import copy
import dataclasses
from dataclasses import dataclass
from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.dsms.plan import ContinuousQuery
from repro.dsms.scheduler import (
    PolicySpec,
    ScheduledEngine,
    SchedulingPolicy,
    resolve_policy,
)
from repro.sim.arrivals import (
    ArrivalBlock,
    ArrivalProcess,
    ArrivalSpec,
    as_continuous_query,
    resolve_arrivals,
)
from repro.sim.columnar import RowChunk
from repro.sim.events import (
    ARRIVAL_PRIORITY,
    ArrivalBlockEvent,
    ArrivalEvent,
    EventQueue,
    ExpiryEvent,
    PeriodEvent,
    RenewalEvent,
    TickEvent,
)
from repro.sim.hosts import ServiceHost, SimulationHost, restore_host, wrap_host
from repro.sim.metrics import metrics_snapshot as _metrics_snapshot
from repro.sim.metrics import latency_percentiles as _latency_percentiles
from repro.sim.subscriptions import (
    SubscriptionManager,
    SubscriptionOptions,
    SubscriptionPeriodResult,
)
from repro.sim.metrics import wal_snapshot as _wal_snapshot
from repro.sim.trace import SimTrace, TraceRecorder
from repro.utils.validation import ValidationError, require
from repro.wal.crashpoints import crashpoint, register

CP_SETTLE_BEFORE_PERIOD = register(
    "driver.settle.before-period-record")
CP_SETTLE_AFTER_PERIOD = register(
    "driver.settle.after-period-record")

#: Version of the in-memory simulation snapshot layout below.
#: v2 added the columnar-pump state (pump / blocks / pump_stats);
#: v1 snapshots restore with the pump off.
SIM_STATE_VERSION = 2

_STATE_FIELDS = (
    "host_kind", "host", "batch", "clock", "period", "queue",
    "processes", "route", "managers", "pending", "probes", "recorder",
    "reports", "events_processed", "allow_idle", "lookahead",
    "batch_arrivals", "expired_buffer", "renewed_buffer",
    "reclaimed_buffer",
)

_STATE_FIELDS_V2 = _STATE_FIELDS + ("pump", "blocks", "pump_stats")


def _fresh_pump_stats() -> dict:
    """Zeroed columnar-pump counters (see ``metrics_snapshot``)."""
    return {"rows": 0, "winners": 0, "blocks": 0, "fallbacks": 0,
            "yields": 0}


@dataclass(frozen=True)
class TickMetrics:
    """One probe tick: queue depth, deliveries, latency, work done."""

    time: int
    queued: int
    delivered: int
    mean_latency: float
    work: float
    shard: int = 0


@dataclass(frozen=True)
class SimPeriodReport:
    """One subscription-mode period boundary across all shards."""

    period: int
    shard_results: tuple[SubscriptionPeriodResult, ...]
    expired: tuple[str, ...]
    renewed: tuple[str, ...]
    revenue: float
    reclaimed_capacity: float
    engine_ticks: int
    engine_utilization: "float | None"

    @property
    def admitted(self) -> tuple[str, ...]:
        """Newly admitted subscription ids across all shards."""
        return tuple(query_id for result in self.shard_results
                     for query_id in result.admitted)

    @property
    def rejected(self) -> tuple[str, ...]:
        """Rejected request ids across all shards."""
        return tuple(query_id for result in self.shard_results
                     for query_id in result.rejected)


@dataclass(frozen=True)
class SimSnapshot:
    """A deep, self-contained copy of a driver's evolving state."""

    version: int
    state: Mapping[str, object]

    def __post_init__(self) -> None:
        required = (_STATE_FIELDS if self.version < 2
                    else _STATE_FIELDS_V2)
        missing = [f for f in required if f not in self.state]
        if missing:
            raise ValidationError(
                f"simulation snapshot is missing state field(s) "
                f"{missing}")


class LatencyProbe:
    """A shadow :class:`ScheduledEngine` mirroring one shard.

    Owns deep copies of the shard's stream sources (same seed state at
    attach time, so it sees the same tuple stream) and the shard's
    admitted plans, executed under the shard's work budget with a
    pluggable scheduling policy.  One :meth:`tick` per virtual-clock
    tick appends a :class:`TickMetrics` record.
    """

    def __init__(
        self,
        sources: Iterable,
        capacity: float,
        policy: "SchedulingPolicy | PolicySpec | str | None" = None,
        shard: int = 0,
        retention: "int | None" = None,
    ) -> None:
        # count_mode: the probe only reads latency accounting, never
        # result tuples, so the engine runs its run-length fast lane
        # while the mirrored plans stay passthrough selects (it falls
        # back to tuple queues by itself on anything richer).
        self.engine = ScheduledEngine(
            copy.deepcopy(tuple(sources)), capacity,
            policy=policy, keep_latency_samples=True,
            max_latency_samples=retention, count_mode=True)
        self.shard = int(shard)
        self.retention = None if retention is None else int(retention)
        if self.retention is not None:
            require(self.retention >= 1, "probe retention must be >= 1")
        #: Per-tick records; capped to the most recent ``retention``
        #: ticks when a cap is set (older records roll off), exact and
        #: unbounded otherwise.
        self.metrics: "list[TickMetrics]" = (
            [] if self.retention is None
            else collections.deque(maxlen=self.retention))
        self._delivered = 0
        self._latency_total = 0.0

    def sync(self, plans: Mapping[str, ContinuousQuery]) -> None:
        """Make the probe run exactly the given admitted plans."""
        current = self.engine.admitted_ids
        for query_id in sorted(current - set(plans)):
            self.engine.remove(query_id)
        for query_id in sorted(set(plans) - current):
            self.engine.admit(plans[query_id])

    def tick(self, time: float) -> TickMetrics:
        """Execute one probed tick and record its metrics."""
        work_before = self.engine.work_done
        self.engine.run(1)
        # Engine-level running totals: equal to summing the per-query
        # stats (all-integer arithmetic, so exactly), but O(1) instead
        # of O(admitted queries) per tick.
        total = self.engine.delivered_latency
        count = self.engine.delivered_count
        delivered = count - self._delivered
        mean = (((total - self._latency_total) / delivered)
                if delivered else 0.0)
        record = TickMetrics(
            time=int(time),
            queued=self.engine.total_queued(),
            delivered=delivered,
            mean_latency=mean,
            work=self.engine.work_done - work_before,
            shard=self.shard,
        )
        self._delivered = count
        self._latency_total = total
        self.metrics.append(record)
        return record

    def latency_percentiles(
        self, percentiles: Sequence[float] = (50.0, 95.0, 99.0)
    ) -> dict[float, float]:
        """Exact delivery-latency percentiles over the probed run."""
        return _latency_percentiles(self.engine.latency_samples or [],
                                    percentiles)


class SimulationDriver:
    """A checkpointable discrete-event runtime over an admission host.

    Parameters
    ----------
    host:
        An :class:`AdmissionService`, a
        :class:`FederatedAdmissionService`, or a pre-wrapped
        :class:`~repro.sim.hosts.SimulationHost`.
    arrivals:
        Zero or more arrival processes — live
        :class:`~repro.sim.arrivals.ArrivalProcess` objects, specs, or
        spec strings (``"poisson:rate=40"``).  Several processes merge
        deterministically on the one clock.
    subscriptions:
        ``None`` for the paper's re-auction-everything model; a
        :class:`SubscriptionOptions` (or ``True`` for the Section VII
        defaults) to run per-category subscription lifecycles.
    probe:
        ``None`` disables the latency probe; ``True`` or a scheduling
        policy (spec string / :class:`PolicySpec` / instance) attaches
        one :class:`LatencyProbe` per shard.
    record:
        ``True`` records every arrival into a replayable
        :class:`SimTrace` (see :meth:`trace`).
    route:
        ``"placement"`` routes arrivals via the host's placement
        policy; ``"stream"`` pins arrival process *i* to shard *i*.
    batch:
        Auction federated boundaries through the pooled batch path.
    lookahead:
        How many arrivals the pump pulls from a process per call (the
        per-source event-queue fill).  Purely a throughput knob: any
        value produces the identical event order.
    batch_arrivals:
        Drain adjacent arrival runs as one vectorized admission pass
        (the fast path, default).  ``False`` dispatches arrivals one
        event at a time — the reference path the equivalence suite
        compares against.
    pump:
        Run the columnar arrival pump: processes that can hand whole
        numpy row-blocks (``ArrivalProcess.next_block``) skip the
        per-arrival event objects entirely — one
        :class:`~repro.sim.events.ArrivalBlockEvent` marker per block
        cursor keeps the event order, rows are consumed in array
        slices, and boundary auctions score them through the columnar
        fastpath, materializing ``SelectPlan`` objects for winners
        only.  Reports, RNG streams and recorder rows are pinned
        byte-identical to the object path; anything the pump cannot
        columnarize (opaque trace rows, per-row cluster placement,
        shared operators) falls back to it automatically.
    probe_retention:
        Cap each probe's per-tick metric records and latency samples
        to the most recent N (oldest roll off, so percentiles cover
        the trailing window).  ``None`` (default) keeps everything —
        exact, but unbounded on long-horizon runs.
    """

    def __init__(
        self,
        host,
        *,
        arrivals: "object | Sequence[object]" = (),
        subscriptions: "SubscriptionOptions | bool | None" = None,
        probe: "object | None" = None,
        record: bool = False,
        route: str = "placement",
        batch: bool = False,
        allow_idle: bool = True,
        lookahead: int = 64,
        batch_arrivals: bool = True,
        pump: bool = False,
        probe_retention: "int | None" = None,
    ) -> None:
        from repro.cluster.federation import FederatedAdmissionService

        if isinstance(host, FederatedAdmissionService):
            from repro.sim.hosts import ClusterHost

            host = ClusterHost(host, batch=batch)
        self.host: SimulationHost = wrap_host(host)
        if isinstance(arrivals, (str, ArrivalSpec, ArrivalProcess)):
            arrivals = (arrivals,)
        self.processes: tuple[ArrivalProcess, ...] = tuple(
            resolve_arrivals(process) for process in arrivals)
        if route not in ("placement", "stream"):
            raise ValidationError(
                f"route must be 'placement' or 'stream', got {route!r}")
        shards = len(self.host.services)
        if route == "stream" and len(self.processes) > shards:
            raise ValidationError(
                f"route='stream' pins arrival process i to shard i, "
                f"but there are {len(self.processes)} processes and "
                f"only {shards} shard(s)")
        self.route = route
        self.allow_idle = bool(allow_idle)
        require(int(lookahead) >= 1, "lookahead must be >= 1")
        self.lookahead = int(lookahead)
        self.batch_arrivals = bool(batch_arrivals)

        self.managers: "tuple[SubscriptionManager, ...] | None" = None
        if subscriptions:
            options = (SubscriptionOptions() if subscriptions is True
                       else subscriptions)
            if not isinstance(options, SubscriptionOptions):
                raise ValidationError(
                    f"subscriptions must be SubscriptionOptions, True, "
                    f"or None, got {subscriptions!r}")
            self.managers = tuple(
                SubscriptionManager(options, service.mechanism, shard=i)
                for i, service in enumerate(self.host.services))
        self.pending: list[list[tuple[ContinuousQuery, str]]] = [
            [] for _ in range(shards)]

        self.probes: "tuple[LatencyProbe, ...] | None" = None
        if probe is not None and probe is not False:
            policy_spec = "round-robin" if probe is True else probe
            self.probes = tuple(
                LatencyProbe(
                    service.sources, service.capacity,
                    policy=(copy.deepcopy(policy_spec)
                            if isinstance(policy_spec, SchedulingPolicy)
                            else resolve_policy(policy_spec)),
                    shard=i, retention=probe_retention)
                for i, service in enumerate(self.host.services))

        self.recorder: "TraceRecorder | None" = (
            TraceRecorder() if record else None)
        #: Attached write-ahead log (see :meth:`attach_wal`) and the
        #: per-settle-window arrival buffer it drains at boundaries.
        self.wal = None
        self._wal_buffer: "TraceRecorder | None" = None
        self.queue = EventQueue()
        self._period = self.host.period
        self.clock = float(self._period * self.host.ticks_per_period)
        self.reports: list[object] = []
        self.events_processed = 0
        #: shard → ids expired / capacity reclaimed since the last
        #: boundary (cleared when that boundary's report is built).
        self._expired_buffer: dict[int, list[str]] = {}
        self._reclaimed_buffer: dict[int, float] = {}
        self._renewed_buffer: list[str] = []
        self.pump = bool(pump)
        #: source index → (ArrivalBlock, cursor): the parked row-blocks
        #: the markers in the queue point into.
        self._blocks: dict[int, tuple[ArrivalBlock, int]] = {}
        self._pump_stats = _fresh_pump_stats()
        for index in range(len(self.processes)):
            self._pump(index)
        self.queue.push(PeriodEvent(time=self.clock,
                                    period=self._period + 1))
        if self.probes:
            self.queue.push(TickEvent(time=self.clock + 1.0))
            self._sync_probes()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def period(self) -> int:
        """Index of the last boundary the driver processed."""
        return self._period

    def trace(self) -> SimTrace:
        """The recorded arrival trace (requires ``record=True``)."""
        if self.recorder is None:
            raise ValidationError(
                "this driver is not recording; construct it with "
                "record=True")
        return self.recorder.trace()

    def tick_metrics(self) -> list[TickMetrics]:
        """All probe tick records, merged over shards in time order."""
        if not self.probes:
            return []
        merged: list[TickMetrics] = []
        for probe in self.probes:
            merged.extend(probe.metrics)
        return sorted(merged, key=lambda m: (m.time, m.shard))

    def latency_percentiles(
        self, percentiles: Sequence[float] = (50.0, 95.0, 99.0)
    ) -> dict[float, float]:
        """Cluster-wide delivery-latency percentiles from the probes."""
        samples: list[int] = []
        for probe in self.probes or ():
            samples.extend(probe.engine.latency_samples or [])
        return _latency_percentiles(samples, percentiles)

    def metrics_snapshot(
        self, percentiles: Sequence[float] = (50.0, 95.0, 99.0)
    ) -> dict:
        """Plain-dict summary of the probed run (see
        :func:`repro.sim.metrics.metrics_snapshot`): tick count, queue
        depths, deliveries, and exact latency percentiles merged over
        every shard's probe."""
        samples: list[int] = []
        for probe in self.probes or ():
            samples.extend(probe.engine.latency_samples or [])
        snapshot = _metrics_snapshot(self.tick_metrics(), samples,
                                     percentiles)
        snapshot["pump"] = {"enabled": self.pump, **self._pump_stats}
        snapshot["wal"] = _wal_snapshot(self.wal)
        return snapshot

    def total_revenue(self) -> float:
        """Revenue billed across all shards so far."""
        return sum(service.total_revenue()
                   for service in self.host.services)

    # ------------------------------------------------------------------
    # The write-ahead log
    # ------------------------------------------------------------------

    def attach_wal(self, log) -> None:
        """Log this run into *log* (a :class:`~repro.wal.WriteAheadLog`).

        From here on every settle window appends its arrivals and a
        period receipt to the log before the run moves past the
        boundary, and compaction fires on the log's schedule.  Pass
        ``None`` to detach.
        """
        self.wal = log
        self._wal_buffer = None if log is None else TraceRecorder()

    def _arrival_sinks(self) -> tuple:
        """The recorders every admitted arrival is appended to."""
        if self._wal_buffer is None:
            return (self.recorder,) if self.recorder is not None else ()
        if self.recorder is None:
            return (self._wal_buffer,)
        return (self.recorder, self._wal_buffer)

    def _log_period(self) -> None:
        """Append this boundary's window to the WAL (buffer hand-off).

        The buffer swap happens even while the log is suspended during
        recovery replay — the replayed window's arrivals must not leak
        into the first live window's record.
        """
        wal = self.wal
        buffer = self._wal_buffer
        self._wal_buffer = TraceRecorder()
        if wal.suspended:
            wal.verify_replay(
                period=self._period, revenue=self.total_revenue(),
                queue=self.queue.kind_counts(), origin="sim replay")
            return
        wal.append_arrivals(SimTrace(columns=buffer._columns))
        crashpoint(CP_SETTLE_BEFORE_PERIOD)
        wal.append_period(
            period=self._period, events=self.events_processed,
            revenue=self.total_revenue(),
            arrivals=len(buffer._columns),
            queue=self.queue.kind_counts())
        crashpoint(CP_SETTLE_AFTER_PERIOD)
        if wal.due_for_compaction(self._period):
            wal.compact(self.snapshot(), self._period)

    # ------------------------------------------------------------------
    # The event loop
    # ------------------------------------------------------------------

    def run(self, periods: int) -> list[object]:
        """Process the next *periods* boundaries; returns their reports.

        After the last boundary, every event ordered before the *next*
        boundary is drained too (probe ticks and arrivals belonging to
        the executed window), so a stopped run reports complete
        metrics and a checkpoint taken here resumes byte-identically —
        the uninterrupted run processes the same events in the same
        order.
        """
        require(int(periods) >= 0, "periods must be >= 0")
        target = self._period + int(periods)
        start = len(self.reports)
        while self._period < target:
            self._step()
        while self.queue and not isinstance(self.queue.peek(),
                                            PeriodEvent):
            self._step()
        return self.reports[start:]

    def _step(self) -> None:
        event = self.queue.pop()
        if type(event) is ArrivalBlockEvent:
            # Markers are bookkeeping, not simulated events: the rows
            # they release count as processed (and advance the clock)
            # inside _on_block, exactly as their ArrivalEvent twins
            # would have when popped.
            self._on_block(event)
            return
        self.events_processed += 1
        self.clock = max(self.clock, float(event.time))
        if isinstance(event, ArrivalEvent):
            if self.batch_arrivals:
                self._on_arrival_run(event)
            else:
                self._on_arrival(event)
        elif isinstance(event, ExpiryEvent):
            self._on_expiry(event)
        elif isinstance(event, RenewalEvent):
            self._on_renewal(event)
        elif isinstance(event, PeriodEvent):
            self._on_period(event)
        elif isinstance(event, TickEvent):
            self._on_tick(event)
        else:  # pragma: no cover - no other kinds exist
            raise ValidationError(f"unknown event {event!r}")

    def _pump(self, index: int) -> None:
        """Pull the next arrivals of process *index* into the queue.

        With the columnar pump on, a process that can produce a row
        block gets it parked in :attr:`_blocks` behind one marker
        event; otherwise (pump off, block-incapable process, or an
        opaque row next) up to :attr:`lookahead` arrival objects are
        pushed — only the batch's final event re-triggers the pump
        when consumed, so a live process always has events queued.  A
        no-op for events pushed outside any process (the lockstep
        schedule feeds batches directly).
        """
        if not 0 <= index < len(self.processes):
            return
        if self.pump and index not in self._blocks:
            block = self.processes[index].next_block()
            if block is not None:
                self._blocks[index] = (block, 0)
                self._pump_stats["blocks"] += 1
                self._push_block_marker(index, block, 0)
                return
        if self._pump_objects(index) and self.pump:
            self._pump_stats["fallbacks"] += 1

    def _pump_objects(self, index: int) -> bool:
        """The per-arrival-object pump; True if anything was pushed."""
        arrivals = self.processes[index].next_arrivals(self.lookahead)
        if not arrivals:
            return False
        push = self.queue.push
        final = len(arrivals) - 1
        for position, arrival in enumerate(arrivals):
            # An arrival may pin its own stream (trace replay carries
            # the recorded index); otherwise it inherits the producing
            # process's index.  The producing index still drives the
            # pump, so the event remembers both.
            stream = (index if arrival.stream is None
                      else int(arrival.stream))
            push(ArrivalEvent(time=arrival.time, query=arrival.query,
                              category=arrival.category, stream=stream,
                              source=index, final=position == final),
                 stream=stream)
        return True

    def _push_block_marker(self, index: int, block: ArrivalBlock,
                           cursor: int) -> None:
        """Queue the marker carrying the cursor row's event key."""
        stream = block.stream_at(cursor, index)
        self.queue.push(
            ArrivalBlockEvent(time=float(block.times[cursor]),
                              source=index, stream=stream),
            stream=stream)

    def _on_block(self, event: ArrivalBlockEvent) -> None:
        """Consume rows from the marker's block up to the next event.

        The marker's key equals its cursor row's would-be ArrivalEvent
        key, so when it pops every queued event orders at-or-after that
        row.  Rows are consumed in slices up to the queue head's key
        (the exact set of arrivals the reference loop would have popped
        before the head), the block is refilled from its process when
        it drains, and the marker is re-queued at the new cursor row
        whenever a non-arrival event is due first.
        """
        source = event.source
        entry = self._blocks.get(source)
        if entry is None:
            return  # stale marker: the block drained via another path
        block, cursor = entry
        stats = self._pump_stats
        while True:
            stop, tie = self._consume_stop(block, cursor, source)
            if stop > cursor:
                self._admit_rows(block, cursor, stop, source)
                rows = stop - cursor
                self.events_processed += rows
                stats["rows"] += rows
                self.clock = max(self.clock,
                                 float(block.times[stop - 1]))
                cursor = stop
            if cursor >= len(block.ids):
                fresh = self.processes[source].next_block()
                if fresh is not None:
                    block, cursor = fresh, 0
                    self._blocks[source] = (fresh, 0)
                    stats["blocks"] += 1
                    continue
                del self._blocks[source]
                # The process may still hold object-form arrivals
                # (opaque trace rows): hand it back to the object pump;
                # _pump retries blocks once those are consumed.
                if self._pump_objects(source):
                    stats["fallbacks"] += 1
                return
            self._blocks[source] = (block, cursor)
            if not tie:
                self._push_block_marker(source, block, cursor)
                return
            head = self.queue._heap[0][4]
            if type(head) is ArrivalBlockEvent:
                # Two pump markers at the identical (time, priority,
                # stream) key would re-queue behind each other forever.
                # Ours popped first (earlier sequence — the reference
                # would pop its row first for the same reason), so
                # consume one row to guarantee progress.
                self._admit_rows(block, cursor, cursor + 1, source)
                self.events_processed += 1
                stats["rows"] += 1
                self.clock = max(self.clock, float(block.times[cursor]))
                cursor += 1
                self._blocks[source] = (block, cursor)
                continue
            # An object-path arrival holds the identical key; it was
            # queued before our re-pushed marker would be, so it goes
            # first.
            stats["yields"] += 1
            self._push_block_marker(source, block, cursor)
            return

    def _consume_stop(self, block: ArrivalBlock, cursor: int,
                      source: int) -> "tuple[int, bool]":
        """How far the block may be consumed before the queue head.

        Returns ``(stop, tie)``: rows ``[cursor, stop)`` order strictly
        before the head event; ``tie`` flags a head whose key exactly
        equals row ``stop``'s (same time, arrival priority, same
        stream), where insertion order decides and :meth:`_on_block`
        arbitrates.
        """
        heap = self.queue._heap
        times = block.times
        end = len(times)
        if not heap:
            return end, False
        head_time, head_priority, head_stream = heap[0][:3]
        if float(times[end - 1]) < head_time:
            return end, False
        # Lower-priority heads (ticks, expiries, renewals) run before
        # same-time arrivals, so rows at exactly head_time stay; a
        # PeriodEvent head runs after them, so they go.
        side = "right" if head_priority > ARRIVAL_PRIORITY else "left"
        stop = cursor + int(np.searchsorted(times[cursor:], head_time,
                                            side=side))
        if head_priority != ARRIVAL_PRIORITY:
            return stop, False
        tie = False
        while stop < end and float(times[stop]) == head_time:
            row_stream = block.stream_at(stop, source)
            if row_stream < head_stream:
                stop += 1
                continue
            tie = row_stream == head_stream
            break
        return stop, tie

    def _admit_rows(self, block: ArrivalBlock, start: int, stop: int,
                    source: int) -> None:
        """Admit one consumed row slice — `_admit_batch` over columns.

        Open system: every row materializes once (it is submitted into
        the service queue either way) but skips the event objects and
        heap churn.  Subscription mode: a slice that resolves to one
        shard parks as a :class:`RowChunk` in that shard's pending
        list — categories drawn/validated now, in pop order, so the
        manager RNG matches the object path draw for draw — and the
        boundary auction scores it columnar.  Slices needing per-row
        routing state (cluster placement, mixed per-row streams) take
        the object path row by row, which is the reference per-event
        dispatch verbatim.
        """
        route_stream = self.route == "stream"
        shards = len(self.host.services)
        sinks = self._arrival_sinks()
        stats = self._pump_stats
        if self.managers is None:
            submit = self.host.submit
            if sinks:
                # Whole-slice capture: rows byte-identical to the
                # per-row record() calls, without 11 list appends per
                # arrival on the admission hot path.
                categories = block.categories
                categories = (list(categories[start:stop])
                              if categories is not None
                              else [None] * (stop - start))
                for sink in sinks:
                    sink.record_rows(block, start, stop, categories,
                                     source)
            for row in range(start, stop):
                plan = block.plan(row)
                pinned = None
                if route_stream:
                    pinned = block.stream_at(row, source)
                    if not 0 <= pinned < shards:
                        raise ValidationError(
                            f"arrival {plan.query_id!r} is pinned to "
                            f"stream {pinned}, but the host has only "
                            f"{shards} shard(s)")
                submit(plan.materialize(), shard=pinned)
                stats["winners"] += 1
            return

        shard: "int | None" = None
        if route_stream:
            streams = block.streams
            if streams is None or isinstance(streams, int):
                shard = block.stream_at(start, source)
            else:
                first = int(streams[start])
                if all(int(streams[row]) == first
                       for row in range(start + 1, stop)):
                    shard = first
            if shard is not None and not 0 <= shard < shards:
                raise ValidationError(
                    f"arrival {block.ids[start]!r} is pinned to "
                    f"stream {shard}, but the host has only "
                    f"{shards} shard(s)")
        elif isinstance(self.host, ServiceHost):
            # A bare service routes everything to shard 0 statelessly.
            shard = 0

        if shard is None:
            # Placement routing (or mixed per-row streams): the
            # reference per-event path, row by row.
            stats["fallbacks"] += 1
            for row in range(start, stop):
                plan = block.plan(row)
                if route_stream:
                    pinned = block.stream_at(row, source)
                    if not 0 <= pinned < shards:
                        raise ValidationError(
                            f"arrival {plan.query_id!r} is pinned to "
                            f"stream {pinned}, but the host has only "
                            f"{shards} shard(s)")
                    row_shard = pinned
                else:
                    row_shard = self.host.route(plan)
                manager = self.managers[row_shard]
                category = block.category_at(row)
                if category is None:
                    category = manager.assign_category(plan)
                else:
                    manager.category(category)
                for sink in sinks:
                    sink.record(float(block.times[row]), plan,
                                category,
                                block.stream_at(row, source))
                self.pending[row_shard].append((plan, category))
            return

        manager = self.managers[shard]
        requested = block.categories
        if requested is None:
            categories = manager.assign_categories(stop - start)
        else:
            categories = list(requested[start:stop])
            unassigned = [i for i, name in enumerate(categories)
                          if name is None]
            # Draw first, then validate the requested names — the
            # batched reference order (RNG before validation errors).
            if unassigned:
                drawn = manager.assign_categories(len(unassigned))
                for i, name in zip(unassigned, drawn):
                    categories[i] = name
            for name in requested[start:stop]:
                if name is not None:
                    manager.category(name)
        for sink in sinks:
            sink.record_rows(block, start, stop, categories, source)
        self.pending[shard].append(
            RowChunk(block, start, stop, categories))

    def _on_arrival(self, event: ArrivalEvent) -> None:
        pinned = event.stream if self.route == "stream" else None
        if pinned is not None and not (
                0 <= pinned < len(self.host.services)):
            raise ValidationError(
                f"arrival {event.query.query_id!r} is pinned to "
                f"stream {pinned}, but the host has only "
                f"{len(self.host.services)} shard(s)")
        if self.managers is not None:
            shard = pinned if pinned is not None else self.host.route(
                event.query)
            manager = self.managers[shard]
            category = (event.category
                        or manager.assign_category(event.query))
            manager.category(category)  # validate requested names too
            for sink in self._arrival_sinks():
                sink.record(event.time, event.query, category,
                            event.stream)
            self.pending[shard].append((event.query, category))
        else:
            for sink in self._arrival_sinks():
                sink.record(event.time, event.query,
                            event.category, event.stream)
            self.host.submit(as_continuous_query(event.query),
                             shard=pinned)
        if event.source is not None and event.final:
            self._pump(event.source)

    def _on_arrival_run(self, first: ArrivalEvent) -> None:
        """Drain the adjacent run of arrivals, admit them as a batch.

        The arrival counterpart of :meth:`_on_expiry`'s run merging:
        keep popping while the queue's head is an arrival, pumping a
        source the moment its batch-final event pops (its next
        arrivals enter the heap and extend the run in correct order),
        and hand the whole run to one admission pass.  Pop order — and
        with it every per-manager RNG draw, recorder row and pending
        append — is exactly what one-at-a-time dispatch produces; the
        equivalence suite pins that.
        """
        queue = self.queue
        events = [first]
        if first.source is not None and first.final:
            self._pump(first.source)
        while True:
            head = queue.peek()
            if type(head) is not ArrivalEvent:
                break
            queue.pop()
            self.events_processed += 1
            events.append(head)
            if head.source is not None and head.final:
                self._pump(head.source)
        self.clock = max(self.clock, float(events[-1].time))
        self._admit_batch(events)

    def _admit_batch(self, events: "list[ArrivalEvent]") -> None:
        """One vectorized admission pass over a run of arrivals."""
        route_stream = self.route == "stream"
        shards = len(self.host.services)
        sinks = self._arrival_sinks()
        if self.managers is None:
            if sinks:
                categories = [event.category for event in events]
                for sink in sinks:
                    sink.record_events(events, categories)
            for event in events:
                pinned = self._pinned_shard(event, route_stream, shards)
                self.host.submit(as_continuous_query(event.query),
                                 shard=pinned)
            return
        shard_of = []
        by_shard: dict[int, list[int]] = {}
        for position, event in enumerate(events):
            pinned = self._pinned_shard(event, route_stream, shards)
            shard = (pinned if pinned is not None
                     else self.host.route(event.query))
            shard_of.append(shard)
            by_shard.setdefault(shard, []).append(position)
        # Resolve categories shard by shard: one vectorized draw per
        # manager covers its arrivals in pop order, which consumes
        # each manager's RNG exactly as per-event assignment does.
        category_of: list = [event.category for event in events]
        for shard, positions in by_shard.items():
            manager = self.managers[shard]
            unassigned = [position for position in positions
                          if events[position].category is None]
            if unassigned:
                drawn = manager.assign_categories(len(unassigned))
                for position, name in zip(unassigned, drawn):
                    category_of[position] = name
            for position in positions:
                if events[position].category is not None:
                    # validate requested names too
                    manager.category(events[position].category)
        for sink in sinks:
            sink.record_events(events, category_of)
        pending = self.pending
        for position, event in enumerate(events):
            pending[shard_of[position]].append(
                (event.query, category_of[position]))

    def _pinned_shard(self, event: ArrivalEvent, route_stream: bool,
                      shards: int) -> "int | None":
        if not route_stream:
            return None
        pinned = event.stream
        if not 0 <= pinned < shards:
            raise ValidationError(
                f"arrival {event.query.query_id!r} is pinned to "
                f"stream {pinned}, but the host has only "
                f"{shards} shard(s)")
        return pinned

    def _on_expiry(self, event: ExpiryEvent) -> None:
        # Merge the adjacent run of same-time, same-shard expiries into
        # one batch: expire() re-estimates loads over the whole active
        # book, so a boundary with k expiries would otherwise do k full
        # estimations.  Pop order is preserved, so renewals enqueue in
        # exactly the order the one-at-a-time loop produced.
        query_ids = [event.query_id]
        while True:
            upcoming = self.queue.peek()
            if (not isinstance(upcoming, ExpiryEvent)
                    or upcoming.time != event.time
                    or upcoming.shard != event.shard):
                break
            self.queue.pop()
            self.events_processed += 1
            query_ids.append(upcoming.query_id)
        manager = self.managers[event.shard]
        query_ids = [query_id for query_id in query_ids
                     if query_id in manager.active]
        if not query_ids:
            return
        service = self.host.services[event.shard]
        rates = {source.name: source.expected_rate()
                 for source in service.sources}
        entries, reclaimed = manager.expire(service, query_ids, rates)
        shard_buffer = self._expired_buffer.setdefault(event.shard, [])
        shard_buffer.extend(entry.query.query_id for entry in entries)
        self._reclaimed_buffer[event.shard] = (
            self._reclaimed_buffer.get(event.shard, 0.0) + reclaimed)
        options = manager.options
        for entry in entries:
            if options.auto_renew and (
                    options.max_renewals is None
                    or entry.renewals < int(options.max_renewals)):
                self.queue.push(RenewalEvent(
                    time=event.time, query=entry.query,
                    category=entry.category, shard=event.shard))

    def _on_renewal(self, event: RenewalEvent) -> None:
        manager = self.managers[event.shard]
        query_id = event.query.query_id
        manager.renewal_counts[query_id] = (
            manager.renewal_counts.get(query_id, 0) + 1)
        manager.renewed_total += 1
        self._renewed_buffer.append(query_id)
        self.pending[event.shard].append((event.query, event.category))

    def _on_period(self, event: PeriodEvent) -> None:
        period = event.period
        ticks_per_period = self.host.ticks_per_period
        if self.managers is not None:
            report = self._run_subscription_period(period)
        else:
            report = self.host.run_auction_period(
                allow_idle=self.allow_idle)
        self._period = period
        self.reports.append(report)
        self.queue.push(PeriodEvent(
            time=event.time + ticks_per_period, period=period + 1))
        if self.probes:
            self._sync_probes()
        if self.wal is not None:
            self._log_period()

    def _run_subscription_period(self, period: int) -> SimPeriodReport:
        services = self.host.services
        shard_results = []
        revenue = 0.0
        ticks_per_period = self.host.ticks_per_period
        for index, service in enumerate(services):
            manager = self.managers[index]
            pending = self.pending[index]
            if any(type(item) is RowChunk for item in pending):
                result, row_stats = manager.run_period_rows(
                    service, period, pending)
                self._pump_stats["winners"] += row_stats["winners"]
                if row_stats["fell_back"]:
                    self._pump_stats["fallbacks"] += 1
            else:
                result = manager.run_period(service, period, pending)
            result = dataclasses.replace(
                result,
                expired=tuple(self._expired_buffer.get(index, ())),
                reclaimed_capacity=self._reclaimed_buffer.get(
                    index, 0.0))
            self.pending[index] = []
            shard_results.append(result)
            revenue += result.revenue
            for query_id in result.admitted:
                entry = manager.active[query_id]
                self.queue.push(ExpiryEvent(
                    time=(entry.expires_period - 1) * ticks_per_period,
                    query_id=query_id, shard=index))
        total_ticks = 0
        total_work = 0.0
        total_capacity = 0.0
        for service in services:
            ticks_before = service.engine.report.ticks
            work_before = service.engine.report.total_work
            service.engine.run(ticks_per_period)
            total_ticks += service.engine.report.ticks - ticks_before
            total_work += (service.engine.report.total_work
                           - work_before)
            total_capacity += service.capacity
        utilization = (
            total_work / ticks_per_period / total_capacity
            if ticks_per_period and total_capacity else None)
        report = SimPeriodReport(
            period=period,
            shard_results=tuple(shard_results),
            expired=tuple(query_id for result in shard_results
                          for query_id in result.expired),
            renewed=tuple(self._renewed_buffer),
            revenue=revenue,
            reclaimed_capacity=sum(
                result.reclaimed_capacity for result in shard_results),
            engine_ticks=total_ticks,
            engine_utilization=utilization,
        )
        self._expired_buffer = {}
        self._reclaimed_buffer = {}
        self._renewed_buffer = []
        return report

    def _on_tick(self, event: TickEvent) -> None:
        for probe in self.probes:
            probe.tick(event.time)
        self.queue.push(TickEvent(time=event.time + 1.0))

    def _sync_probes(self) -> None:
        for index, probe in enumerate(self.probes):
            probe.sync(self.host.services[index].engine.catalog.queries)

    # ------------------------------------------------------------------
    # The degenerate (closed-loop) schedule
    # ------------------------------------------------------------------

    @classmethod
    def lockstep(cls, host, batch: bool = False) -> "SimulationDriver":
        """A driver configured as the pure closed-loop period runner.

        No arrival processes, no subscriptions, no probe — and
        ``allow_idle=False``, so an empty boundary behaves exactly as
        the historical :meth:`AdmissionService.run_periods` loop did
        (auctioning running queries, or raising when there is nothing
        to auction at all).
        """
        return cls(host, batch=batch, allow_idle=False)

    def run_lockstep(
        self,
        submissions_per_period: Iterable[Sequence[ContinuousQuery]],
    ) -> list[object]:
        """Feed each batch to its boundary, one period per batch.

        Batches are pulled lazily; each batch's queries become arrival
        events at the upcoming boundary's time, then exactly one
        boundary runs — the same submit/auction interleaving the
        historical lockstep loop produced, now as an event schedule.
        """
        reports: list[object] = []
        ticks_per_period = self.host.ticks_per_period
        for batch in submissions_per_period:
            boundary_time = float(self._period * ticks_per_period)
            for query in batch:
                self.queue.push(ArrivalEvent(
                    time=boundary_time, query=query))
            reports.extend(self.run(1))
        return reports

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def snapshot(self) -> SimSnapshot:
        """Capture the whole simulation as a restorable snapshot."""
        state: dict[str, object] = {
            "host_kind": self.host.kind,
            "host": self.host.snapshot(),
            "batch": bool(getattr(self.host, "batch", False)),
        }
        state.update(copy.deepcopy({
            "clock": self.clock,
            "period": self._period,
            "queue": self.queue,
            "processes": self.processes,
            "route": self.route,
            "managers": self.managers,
            "pending": self.pending,
            "probes": self.probes,
            "recorder": self.recorder,
            "reports": self.reports,
            "events_processed": self.events_processed,
            "allow_idle": self.allow_idle,
            "lookahead": self.lookahead,
            "batch_arrivals": self.batch_arrivals,
            "expired_buffer": self._expired_buffer,
            "renewed_buffer": self._renewed_buffer,
            "reclaimed_buffer": self._reclaimed_buffer,
            "pump": self.pump,
            "blocks": self._blocks,
            "pump_stats": self._pump_stats,
        }))
        return SimSnapshot(version=SIM_STATE_VERSION, state=state)

    @classmethod
    def restore(cls, snapshot: SimSnapshot) -> "SimulationDriver":
        """Rebuild a live driver from *snapshot* (copied, reusable)."""
        if snapshot.version not in (1, SIM_STATE_VERSION):
            raise ValidationError(
                f"cannot restore simulation snapshot version "
                f"{snapshot.version}; this build supports versions "
                f"1..{SIM_STATE_VERSION}")
        state = copy.deepcopy(dict(snapshot.state))
        driver = object.__new__(cls)
        driver.host = restore_host(
            state["host_kind"], state["host"], batch=state["batch"])
        driver.processes = tuple(state["processes"])
        driver.route = state["route"]
        driver.allow_idle = state["allow_idle"]
        driver.managers = state["managers"]
        driver.pending = list(state["pending"])
        driver.probes = state["probes"]
        driver.recorder = state["recorder"]
        driver.queue = state["queue"]
        driver._period = state["period"]
        driver.clock = state["clock"]
        driver.reports = list(state["reports"])
        driver.events_processed = state["events_processed"]
        driver.lookahead = int(state["lookahead"])
        driver.batch_arrivals = bool(state["batch_arrivals"])
        # Strict access: a snapshot missing the expiry-attribution
        # buffers is truncated, and silently defaulting them would
        # drop expiries from the next boundary's report.
        driver._expired_buffer = dict(state["expired_buffer"])
        driver._renewed_buffer = list(state["renewed_buffer"])
        driver._reclaimed_buffer = dict(state["reclaimed_buffer"])
        # v1 snapshots predate the columnar pump: no markers can be in
        # their queues, so defaulting to pump-off is exact.
        driver.pump = bool(state.get("pump", False))
        driver._blocks = dict(state.get("blocks") or {})
        driver._pump_stats = dict(state.get("pump_stats")
                                  or _fresh_pump_stats())
        # The WAL is a process resource, not simulation state: a
        # restored driver starts detached (recovery re-attaches the
        # live log after replay).
        driver.wal = None
        driver._wal_buffer = None
        return driver

    def save_checkpoint(self, path: object) -> None:
        """Write a restorable simulation checkpoint (see :mod:`repro.io`).

        One versioned pickle envelope holding the driver state —
        including the host's own snapshot — with the usual
        picklability rules (module-level functions, no lambdas).  Only
        load checkpoints you trust.
        """
        from repro.io import save_sim_snapshot

        save_sim_snapshot(self.snapshot(), path)

    @classmethod
    def load_checkpoint(cls, path: object) -> "SimulationDriver":
        """Resume a simulation from a :meth:`save_checkpoint` file."""
        from repro.io import load_sim_snapshot

        return cls.restore(load_sim_snapshot(path))
