"""Arrival processes: who shows up, and when.

An open system is defined by its arrival process.  An
:class:`ArrivalProcess` is a resumable iterator over
:class:`Arrival`\\ s — (virtual time, continuous query, requested
category) — whose entire state is plain picklable data, so a
checkpointed simulation resumes mid-stream and draws exactly the
arrivals the uninterrupted run would have drawn.

Processes are *spec-string addressable* through the shared
``utils.registry``/``specparse`` grammar, the same currency mechanisms
and backends use:

* ``"poisson:rate=40"`` — exponential inter-arrival gaps, mean
  ``rate`` arrivals per engine tick;
* ``"burst:size=20,every=10"`` — ``size`` simultaneous arrivals every
  ``every`` ticks (the flash-crowd regime);
* ``"trace:path=run.trace.json"`` — replay a recorded
  ``repro/sim-trace`` document, byte-identically.

Synthetic processes build single-select query plans through
:func:`synthetic_query` (module-level predicate, so every plan is
checkpoint-picklable), drawing bids and costs from the same ranges the
CLI's closed-loop workload uses.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from collections.abc import Callable, Mapping, Sequence

import numpy as np

from repro.dsms.operators import SelectOperator
from repro.dsms.plan import ContinuousQuery
from repro.utils.registry import RegistrySpec, SpecRegistry
from repro.utils.rng import spawn_rng
from repro.utils.validation import ValidationError, require


@dataclass(frozen=True)
class Arrival:
    """One arriving subscription request.

    ``stream`` pins the arrival to an event-stream index (shard, under
    ``route="stream"``); ``None`` means "the index of the process that
    produced me" — only trace replay sets it, so a recorded
    multi-stream run replays through one process with every arrival
    still landing on its recorded stream.
    """

    time: float
    query: ContinuousQuery
    category: "str | None" = None
    stream: "int | None" = None


def pass_all(_tuple: object) -> bool:
    """The canonical keep-everything select predicate.

    Module-level, so plans stay checkpoint-picklable — and *this exact
    function* is what the trace codec recognizes: a single-select plan
    over it travels as a compact ``'select'`` wire entry, the only
    plan shape an untrusting gateway accepts (pickle plans are refused
    at the network boundary by default).  Client code building plans
    to submit over HTTP should use it.
    """
    return True


#: Backwards-compatible private alias (the codec pins identity to it).
_pass_all = pass_all


def synthetic_query(
    rng: np.random.Generator,
    index: int,
    stream: str = "s",
    prefix: str = "a",
    clients: int = 8,
) -> ContinuousQuery:
    """The standard synthetic arrival: one select over *stream*.

    Bid ~ U(5, 100), cost-per-tuple ~ U(0.5, 2.0) (both rounded to
    cents, matching the CLI's closed-loop workload), owner cycling
    through *clients* distinct client ids.
    """
    query_id = f"{prefix}{index}"
    op = SelectOperator(
        f"sel_{query_id}", stream, _pass_all,
        cost_per_tuple=float(np.round(rng.uniform(0.5, 2.0), 2)),
        selectivity_estimate=1.0)
    return ContinuousQuery(
        query_id, (op,), sink_id=op.op_id,
        bid=float(np.round(rng.uniform(5, 100), 2)),
        owner=f"user_{index % max(1, clients)}")


class ArrivalProcess(abc.ABC):
    """A deterministic, checkpointable stream of arrivals.

    :meth:`next_arrival` returns the next :class:`Arrival` (times
    non-decreasing) or ``None`` once the process is exhausted.  All
    state must be picklable plain data — the driver deep-copies the
    process into every simulation snapshot.
    """

    #: Registry/spec name of the process.
    name: str = "arrivals"

    @abc.abstractmethod
    def next_arrival(self) -> "Arrival | None":
        """Produce the next arrival, advancing the process state."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class PoissonArrivals(ArrivalProcess):
    """Poisson arrivals: exponential gaps with mean ``1/rate`` ticks."""

    name = "poisson"

    def __init__(
        self,
        rate: float,
        seed: int = 0,
        limit: "int | None" = None,
        stream: str = "s",
        clients: int = 8,
        prefix: str = "a",
        start: float = 0.0,
    ) -> None:
        require(rate > 0, "arrival rate must be positive")
        if limit is not None:
            require(int(limit) >= 0, "limit must be >= 0")
        self._rate = float(rate)
        self._rng = spawn_rng(seed)
        self._limit = None if limit is None else int(limit)
        self._stream = stream
        self._clients = int(clients)
        self._prefix = prefix
        self._time = float(start)
        self._count = 0

    def next_arrival(self) -> "Arrival | None":
        if self._limit is not None and self._count >= self._limit:
            return None
        self._time += float(self._rng.exponential(1.0 / self._rate))
        query = synthetic_query(
            self._rng, self._count, stream=self._stream,
            prefix=self._prefix, clients=self._clients)
        self._count += 1
        return Arrival(time=self._time, query=query)


class BurstArrivals(ArrivalProcess):
    """Flash crowds: ``size`` simultaneous arrivals every ``every`` ticks."""

    name = "burst"

    def __init__(
        self,
        size: int = 10,
        every: float = 10.0,
        seed: int = 0,
        limit: "int | None" = None,
        stream: str = "s",
        clients: int = 8,
        prefix: str = "a",
        start: float = 0.0,
    ) -> None:
        require(int(size) >= 1, "burst size must be >= 1")
        require(every > 0, "burst interval must be positive")
        if limit is not None:
            require(int(limit) >= 0, "limit must be >= 0")
        self._size = int(size)
        self._every = float(every)
        self._rng = spawn_rng(seed)
        self._limit = None if limit is None else int(limit)
        self._stream = stream
        self._clients = int(clients)
        self._prefix = prefix
        self._start = float(start)
        self._burst = 1
        self._within = 0
        self._count = 0

    def next_arrival(self) -> "Arrival | None":
        if self._limit is not None and self._count >= self._limit:
            return None
        time = self._start + self._burst * self._every
        query = synthetic_query(
            self._rng, self._count, stream=self._stream,
            prefix=self._prefix, clients=self._clients)
        self._count += 1
        self._within += 1
        if self._within >= self._size:
            self._within = 0
            self._burst += 1
        return Arrival(time=time, query=query)


class TraceArrivals(ArrivalProcess):
    """Replays the arrivals of a recorded ``repro/sim-trace`` document.

    Give it a live :class:`~repro.sim.trace.SimTrace` or a path to a
    trace file.  Entries replay with their recorded times, queries
    *and* categories, so a replayed run auctions exactly the workload
    the recorded run saw.
    """

    name = "trace"

    def __init__(
        self,
        trace: "object | None" = None,
        path: "str | None" = None,
    ) -> None:
        from repro.sim.trace import SimTrace

        if (trace is None) == (path is None):
            raise ValidationError(
                "pass exactly one of trace= (a SimTrace) or path= "
                "(a trace file)")
        if path is not None:
            from repro.io import load_sim_trace

            trace = load_sim_trace(path)
        if not isinstance(trace, SimTrace):
            raise ValidationError(
                f"expected a SimTrace, got {type(trace).__name__}")
        self._entries = trace.entries
        self._index = 0

    def next_arrival(self) -> "Arrival | None":
        if self._index >= len(self._entries):
            return None
        entry = self._entries[self._index]
        self._index += 1
        return Arrival(time=entry.time, query=entry.query,
                       category=entry.category, stream=entry.stream)


class ScheduledArrivals(ArrivalProcess):
    """A fixed (time, query) schedule, for full arrival control.

    The hand-written counterpart of the stochastic processes: you
    decide exactly who arrives when — deterministic scenarios, tests,
    reproducing a specific ordering.  (The ``run_periods`` lockstep
    path feeds its batches to the driver directly as arrival events;
    it does not go through this class.)
    """

    name = "scheduled"

    def __init__(
        self,
        arrivals: Sequence[Arrival],
    ) -> None:
        entries = list(arrivals)
        times = [a.time for a in entries]
        if any(later < earlier
               for earlier, later in zip(times, times[1:])):
            raise ValidationError(
                "scheduled arrivals must be in non-decreasing time order")
        self._entries = entries
        self._index = 0

    def next_arrival(self) -> "Arrival | None":
        if self._index >= len(self._entries):
            return None
        entry = self._entries[self._index]
        self._index += 1
        return entry


# ----------------------------------------------------------------------
# Registry and specs (mirrors repro.dsms.backend)
# ----------------------------------------------------------------------

#: The arrival-process registry (shared machinery: utils.registry).
_REGISTRY = SpecRegistry("arrival process", param_noun="arrival process")


def register_arrivals(
    name: str, factory: Callable[..., ArrivalProcess]
) -> None:
    """Register a process *factory* under *name* (case-insensitive)."""
    _REGISTRY.register(name, factory)


def make_arrivals(name: str, **kwargs: object) -> ArrivalProcess:
    """Instantiate a registered process by name, validating kwargs."""
    return _REGISTRY.create(name, **kwargs)


def registered_arrivals() -> Mapping[str, Callable[..., ArrivalProcess]]:
    """Read-only view of the registry (name → factory)."""
    return _REGISTRY.as_mapping()


@dataclass(frozen=True)
class ArrivalSpec(RegistrySpec):
    """An arrival-process name plus declared, validated parameters
    (shared machinery: :class:`~repro.utils.registry.RegistrySpec`).

    >>> ArrivalSpec.parse("poisson:rate=40,seed=7")
    ArrivalSpec(name='poisson', params={'rate': 40, 'seed': 7})
    """

    _registry = _REGISTRY
    _what = "arrival spec"


def resolve_arrivals(
    arrivals: "ArrivalProcess | ArrivalSpec | str",
) -> ArrivalProcess:
    """Coerce any accepted arrival form to a live process.

    Accepts a live :class:`ArrivalProcess`, an :class:`ArrivalSpec`,
    or a spec string like ``"poisson:rate=40"``.  Specs and strings
    produce a fresh process per resolve (processes are stateful).
    """
    if isinstance(arrivals, ArrivalProcess):
        return arrivals
    if isinstance(arrivals, ArrivalSpec):
        return arrivals.create()
    if isinstance(arrivals, str):
        return ArrivalSpec.parse(arrivals).create()
    raise ValidationError(
        f"cannot resolve an arrival process from {arrivals!r}; pass an "
        f"ArrivalProcess, an ArrivalSpec, or a spec string like "
        f"'poisson:rate=40' or 'trace:path=run.trace.json'")


def _trace_factory(path: str) -> TraceArrivals:
    return TraceArrivals(path=str(path))


register_arrivals("poisson", PoissonArrivals)
register_arrivals("burst", BurstArrivals)
register_arrivals("trace", _trace_factory)
