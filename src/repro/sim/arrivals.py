"""Arrival processes: who shows up, and when.

An open system is defined by its arrival process.  An
:class:`ArrivalProcess` is a resumable iterator over
:class:`Arrival`\\ s — (virtual time, continuous query, requested
category) — whose entire state is plain picklable data, so a
checkpointed simulation resumes mid-stream and draws exactly the
arrivals the uninterrupted run would have drawn.

Processes are *spec-string addressable* through the shared
``utils.registry``/``specparse`` grammar, the same currency mechanisms
and backends use:

* ``"poisson:rate=40"`` — exponential inter-arrival gaps, mean
  ``rate`` arrivals per engine tick;
* ``"burst:size=20,every=10"`` — ``size`` simultaneous arrivals every
  ``every`` ticks (the flash-crowd regime);
* ``"trace:path=run.trace.json"`` — replay a recorded
  ``repro/sim-trace`` document, byte-identically.

Synthetic processes build single-select query plans through
:func:`synthetic_query` (module-level predicate, so every plan is
checkpoint-picklable), drawing bids and costs from the same ranges the
CLI's closed-loop workload uses.
"""

from __future__ import annotations

import abc
import bisect
from dataclasses import dataclass
from collections.abc import Callable, Mapping, Sequence

import numpy as np

from repro.dsms.operators import SelectOperator
from repro.dsms.plan import ContinuousQuery
from repro.utils.registry import RegistrySpec, SpecRegistry
from repro.utils.rng import spawn_rng
from repro.utils.validation import ValidationError, require


@dataclass(frozen=True)
class Arrival:
    """One arriving subscription request.

    ``stream`` pins the arrival to an event-stream index (shard, under
    ``route="stream"``); ``None`` means "the index of the process that
    produced me" — only trace replay sets it, so a recorded
    multi-stream run replays through one process with every arrival
    still landing on its recorded stream.
    """

    time: float
    query: ContinuousQuery
    category: "str | None" = None
    stream: "int | None" = None


def pass_all(_tuple: object) -> bool:
    """The canonical keep-everything select predicate.

    Module-level, so plans stay checkpoint-picklable — and *this exact
    function* is what the trace codec recognizes: a single-select plan
    over it travels as a compact ``'select'`` wire entry, the only
    plan shape an untrusting gateway accepts (pickle plans are refused
    at the network boundary by default).  Client code building plans
    to submit over HTTP should use it.
    """
    return True


#: Constant-true marker: lets the engine skip the per-tuple predicate
#: call entirely for selects built over this function.
pass_all.selects_all = True

#: Backwards-compatible private alias (the codec pins identity to it).
_pass_all = pass_all


class SelectPlan:
    """The columnar form of a synthetic single-select plan.

    Exactly the fields the trace codec's compact ``'select'`` encoding
    carries — id, operator id, input stream, cost, selectivity, bid,
    valuation, owner — held as plain slots instead of a full
    :class:`~repro.dsms.plan.ContinuousQuery` + operator graph.  The
    auction layer only ever reads ``query_id`` / ``operator_ids`` /
    ``bid`` / ``valuation`` / ``owner``, so a plan stays in this form
    through routing, category assignment and the admission auction;
    only *winners* pay for :meth:`materialize` (the engine needs a real
    plan to run).  That keeps the per-arrival hot path free of operator
    construction and plan validation for the ~99% of arrivals a loaded
    system rejects.
    """

    __slots__ = ("query_id", "op_id", "stream", "cost", "selectivity",
                 "bid", "valuation", "owner")

    def __init__(
        self,
        query_id: str,
        op_id: str,
        stream: str,
        cost: float,
        selectivity: float,
        bid: float,
        valuation: "float | None" = None,
        owner: "str | None" = None,
    ) -> None:
        self.query_id = query_id
        self.op_id = op_id
        self.stream = stream
        self.cost = cost
        self.selectivity = selectivity
        self.bid = bid
        self.valuation = valuation
        self.owner = owner

    @property
    def operator_ids(self) -> tuple[str, ...]:
        """The plan's operator ids (always the one select)."""
        return (self.op_id,)

    @property
    def sink_id(self) -> str:
        """The sink operator (the select itself)."""
        return self.op_id

    @property
    def true_value(self) -> float:
        """The private valuation, defaulting to the submitted bid."""
        return self.bid if self.valuation is None else self.valuation

    @property
    def owner_id(self) -> str:
        """The owning user, defaulting to the query id itself."""
        return self.owner if self.owner is not None else self.query_id

    def with_bid(self, bid: float) -> "SelectPlan":
        """A copy of this plan bidding *bid* (valuation kept)."""
        return SelectPlan(
            self.query_id, self.op_id, self.stream, self.cost,
            self.selectivity, float(bid),
            valuation=self.true_value, owner=self.owner)

    def materialize(self) -> ContinuousQuery:
        """Build the real (validated) plan this record describes.

        The select runs :func:`pass_all`, so a materialized plan
        round-trips through the trace codec's compact encoding and is
        accepted at the gateway's pickle-refusing wire boundary.
        """
        op = SelectOperator(
            self.op_id, self.stream, pass_all,
            cost_per_tuple=self.cost,
            selectivity_estimate=self.selectivity)
        return ContinuousQuery(
            self.query_id, (op,), sink_id=self.op_id,
            bid=self.bid, valuation=self.valuation, owner=self.owner)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SelectPlan({self.query_id!r}, bid={self.bid}, "
                f"cost={self.cost}, stream={self.stream!r})")


def as_continuous_query(query) -> ContinuousQuery:
    """Materialize *query* if it is a :class:`SelectPlan` (else as-is)."""
    if isinstance(query, SelectPlan):
        return query.materialize()
    return query


class ArrivalBlock:
    """A contiguous run of arrivals held as parallel columns.

    The columnar counterpart of a ``list[Arrival]`` pump batch: one
    numpy row-block the driver consumes directly — admission
    bookkeeping runs over the arrays, and a :class:`SelectPlan` object
    is built (via :meth:`plan`) only for rows that actually need one.

    Columns with a single value for every row may be stored as a
    scalar: ``inputs`` is usually the one stream name, ``streams`` is
    ``None`` ("pin to the producing process", like
    ``Arrival.stream=None``) for synthetic processes, ``valuations`` /
    ``categories`` are ``None`` when every row is truthful /
    unassigned.  ``times`` is always a float64 array in non-decreasing
    order, with no same-time stream change inside one block (the same
    cut :func:`_cut_rows` applies to object batches).
    """

    __slots__ = ("times", "ids", "ops", "owners", "inputs", "costs",
                 "selectivities", "bids", "valuations", "categories",
                 "streams")

    def __init__(self, times, ids, ops, owners, inputs, costs,
                 selectivities, bids, valuations=None, categories=None,
                 streams=None):
        self.times = times
        self.ids = ids
        self.ops = ops
        self.owners = owners
        self.inputs = inputs
        self.costs = costs
        self.selectivities = selectivities
        self.bids = bids
        self.valuations = valuations
        self.categories = categories
        self.streams = streams

    def __len__(self) -> int:
        return len(self.ids)

    def input_at(self, row: int) -> str:
        inputs = self.inputs
        return inputs if type(inputs) is str else inputs[row]

    def selectivity_at(self, row: int) -> float:
        selectivities = self.selectivities
        if type(selectivities) is float:
            return selectivities
        return float(selectivities[row])

    def category_at(self, row: int) -> "str | None":
        categories = self.categories
        return None if categories is None else categories[row]

    def stream_at(self, row: int, default: int) -> int:
        """The event-stream sort key of *row* (the shard, under
        ``route="stream"``); *default* is the producing process index,
        mirroring ``Arrival.stream=None``."""
        streams = self.streams
        if streams is None:
            return default
        if type(streams) is int:
            return streams
        return int(streams[row])

    def plan(self, row: int) -> SelectPlan:
        """Materialize the :class:`SelectPlan` of one row."""
        valuations = self.valuations
        return SelectPlan(
            self.ids[row], self.ops[row], self.input_at(row),
            float(self.costs[row]), self.selectivity_at(row),
            float(self.bids[row]),
            None if valuations is None else valuations[row],
            self.owners[row])

    def arrival(self, row: int) -> Arrival:
        """The object form of one row (fallback interop)."""
        streams = self.streams
        if streams is not None and type(streams) is not int:
            streams = int(streams[row])
        return Arrival(
            time=float(self.times[row]), query=self.plan(row),
            category=self.category_at(row), stream=streams)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ArrivalBlock {len(self)} rows>"


def synthetic_query(
    rng: np.random.Generator,
    index: int,
    stream: str = "s",
    prefix: str = "a",
    clients: int = 8,
) -> ContinuousQuery:
    """The standard synthetic arrival: one select over *stream*.

    Bid ~ U(5, 100), cost-per-tuple ~ U(0.5, 2.0) (both rounded to
    cents, matching the CLI's closed-loop workload), owner cycling
    through *clients* distinct client ids.
    """
    query_id = f"{prefix}{index}"
    op = SelectOperator(
        f"sel_{query_id}", stream, _pass_all,
        cost_per_tuple=float(np.round(rng.uniform(0.5, 2.0), 2)),
        selectivity_estimate=1.0)
    return ContinuousQuery(
        query_id, (op,), sink_id=op.op_id,
        bid=float(np.round(rng.uniform(5, 100), 2)),
        owner=f"user_{index % max(1, clients)}")


class ArrivalProcess(abc.ABC):
    """A deterministic, checkpointable stream of arrivals.

    :meth:`next_arrival` returns the next :class:`Arrival` (times
    non-decreasing) or ``None`` once the process is exhausted.  All
    state must be picklable plain data — the driver deep-copies the
    process into every simulation snapshot.
    """

    #: Registry/spec name of the process.
    name: str = "arrivals"

    @abc.abstractmethod
    def next_arrival(self) -> "Arrival | None":
        """Produce the next arrival, advancing the process state."""

    def next_arrivals(self, limit: int) -> "list[Arrival]":
        """Up to *limit* next arrivals in one call (the pump lookahead).

        The batch counterpart of :meth:`next_arrival`: times are
        non-decreasing, a short (or empty) list means the process ran
        dry or chose to cut the batch early — callers must keep
        pumping until an *empty* list comes back.  Subclasses with a
        per-arrival ``stream`` must cut a batch before a same-time
        stream change, so the driver's event-queue keys stay
        non-decreasing within one push run.
        """
        out: list[Arrival] = []
        for _ in range(int(limit)):
            arrival = self.next_arrival()
            if arrival is None:
                break
            out.append(arrival)
        return out

    def next_block(self) -> "ArrivalBlock | None":
        """The next arrivals as one columnar row-block, or ``None``.

        ``None`` means "no block available *right now*" — the process
        may be exhausted, may not support blocks at all (this default),
        or may be sitting on rows only the object path can express
        (e.g. an opaque trace entry).  Callers must fall back to
        :meth:`next_arrivals` and may try :meth:`next_block` again
        afterwards.  A returned block is never empty, draws from the
        same RNG stream as the object path (block ≡ objects,
        bit-identical), and obeys the same same-time stream-change cut.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class _BlockSynthesizer:
    """Shared block machinery of the synthetic processes.

    Bids and costs are drawn as numpy *blocks* (one ``uniform(n)`` call
    per column instead of two scalar draws per arrival), which is where
    the synthetic hot path spends its time.  A ``Generator``'s block
    draw is bit-identical to the same number of sequential scalar
    draws, so block size never changes the stream — it only changes
    how the exponential/uniform draws *interleave* across columns,
    which is why the block layout is fixed (gaps, then costs, then
    bids) rather than configurable per call.
    """

    def _init_blocks(self, block: int) -> None:
        require(int(block) >= 1, "block size must be >= 1")
        self._block = int(block)
        self._buffer: list[Arrival] = []
        self._cursor = 0

    def _buffered(self) -> "Arrival | None":
        if self._cursor >= len(self._buffer):
            self._refill()
            if not self._buffer:
                return None
        arrival = self._buffer[self._cursor]
        self._cursor += 1
        return arrival

    def _buffered_batch(self, limit: int) -> "list[Arrival]":
        if self._cursor >= len(self._buffer):
            self._refill()
        out = self._buffer[self._cursor:self._cursor + int(limit)]
        self._cursor += len(out)
        return out

    def _draw_queries(self, count: int) -> "list[SelectPlan]":
        """*count* synthetic plans, columns drawn in one block each."""
        costs = np.round(
            self._rng.uniform(0.5, 2.0, count), 2).tolist()
        bids = np.round(
            self._rng.uniform(5.0, 100.0, count), 2).tolist()
        clients = max(1, self._clients)
        prefix = self._prefix
        stream = self._stream
        base = self._count
        plans = []
        for offset in range(count):
            index = base + offset
            query_id = f"{prefix}{index}"
            plans.append(SelectPlan(
                query_id, "sel_" + query_id, stream,
                costs[offset], 1.0, bids[offset],
                None, f"user_{index % clients}"))
        return plans

    def _draw_columns(self, count: int):
        """The column form of :meth:`_draw_queries`.

        Consumes the RNG identically (one uniform block for costs, one
        for bids) but keeps the numeric columns as arrays — the ids
        still have to be Python strings either way.
        """
        costs = np.round(self._rng.uniform(0.5, 2.0, count), 2)
        bids = np.round(self._rng.uniform(5.0, 100.0, count), 2)
        clients = max(1, self._clients)
        prefix = self._prefix
        base = self._count
        ids = [f"{prefix}{base + offset}" for offset in range(count)]
        ops = ["sel_" + query_id for query_id in ids]
        owners = [f"user_{(base + offset) % clients}"
                  for offset in range(count)]
        return ids, ops, owners, costs, bids

    def _tail_block(self) -> "ArrivalBlock | None":
        """Drain a buffered object tail as one block.

        A process checkpointed mid-block resumes with part of its
        buffer unconsumed; converting that tail keeps the block path
        bit-identical to the object path after a restore.
        """
        entries = self._buffer[self._cursor:]
        self._buffer = []
        self._cursor = 0
        if not entries:
            return None
        plans = [arrival.query for arrival in entries]
        times = np.asarray([arrival.time for arrival in entries],
                           dtype=np.float64)
        valuations = [plan.valuation for plan in plans]
        if all(valuation is None for valuation in valuations):
            valuations = None
        return ArrivalBlock(
            times,
            [plan.query_id for plan in plans],
            [plan.op_id for plan in plans],
            [plan.owner for plan in plans],
            [plan.stream for plan in plans],
            np.asarray([plan.cost for plan in plans], dtype=np.float64),
            [plan.selectivity for plan in plans],
            np.asarray([plan.bid for plan in plans], dtype=np.float64),
            valuations=valuations)

    def _synth_block_header(self) -> "int | None":
        """Common ``next_block`` prologue: rows to draw, or ``None``."""
        count = self._block
        if self._limit is not None:
            count = min(count, self._limit - self._count)
        return count if count > 0 else None


class PoissonArrivals(_BlockSynthesizer, ArrivalProcess):
    """Poisson arrivals: exponential gaps with mean ``1/rate`` ticks.

    Arrivals are generated in blocks of ``block`` (queries come out as
    compact :class:`SelectPlan` records); the buffered tail is part of
    the process state, so a pickled process resumes mid-block exactly
    where it stopped.
    """

    name = "poisson"

    def __init__(
        self,
        rate: float,
        seed: int = 0,
        limit: "int | None" = None,
        stream: str = "s",
        clients: int = 8,
        prefix: str = "a",
        start: float = 0.0,
        block: int = 256,
    ) -> None:
        require(rate > 0, "arrival rate must be positive")
        if limit is not None:
            require(int(limit) >= 0, "limit must be >= 0")
        self._rate = float(rate)
        self._rng = spawn_rng(seed)
        self._limit = None if limit is None else int(limit)
        self._stream = stream
        self._clients = int(clients)
        self._prefix = prefix
        self._time = float(start)
        self._count = 0
        self._init_blocks(block)

    def _refill(self) -> None:
        count = self._block
        if self._limit is not None:
            count = min(count, self._limit - self._count)
        if count <= 0:
            self._buffer = []
            self._cursor = 0
            return
        gaps = self._rng.exponential(1.0 / self._rate, count).tolist()
        plans = self._draw_queries(count)
        time = self._time
        buffer = []
        for gap, plan in zip(gaps, plans):
            time += gap
            buffer.append(Arrival(time=time, query=plan))
        self._time = time
        self._count += count
        self._buffer = buffer
        self._cursor = 0

    def next_arrival(self) -> "Arrival | None":
        return self._buffered()

    def next_arrivals(self, limit: int) -> "list[Arrival]":
        return self._buffered_batch(limit)

    def next_block(self) -> "ArrivalBlock | None":
        if self._cursor < len(self._buffer):
            return self._tail_block()
        count = self._synth_block_header()
        if count is None:
            return None
        # Same RNG order as _refill: gaps first, then the query columns.
        gaps = self._rng.exponential(1.0 / self._rate, count)
        gaps[0] += self._time
        # cumsum accumulates sequentially, so the running times are
        # bit-identical to the object path's scalar `time += gap` loop.
        times = np.cumsum(gaps)
        ids, ops, owners, costs, bids = self._draw_columns(count)
        self._time = float(times[-1])
        self._count += count
        return ArrivalBlock(times, ids, ops, owners, self._stream,
                            costs, 1.0, bids)


class BurstArrivals(_BlockSynthesizer, ArrivalProcess):
    """Flash crowds: ``size`` simultaneous arrivals every ``every`` ticks."""

    name = "burst"

    def __init__(
        self,
        size: int = 10,
        every: float = 10.0,
        seed: int = 0,
        limit: "int | None" = None,
        stream: str = "s",
        clients: int = 8,
        prefix: str = "a",
        start: float = 0.0,
        block: int = 256,
    ) -> None:
        require(int(size) >= 1, "burst size must be >= 1")
        require(every > 0, "burst interval must be positive")
        if limit is not None:
            require(int(limit) >= 0, "limit must be >= 0")
        self._size = int(size)
        self._every = float(every)
        self._rng = spawn_rng(seed)
        self._limit = None if limit is None else int(limit)
        self._stream = stream
        self._clients = int(clients)
        self._prefix = prefix
        self._start = float(start)
        self._burst = 1
        self._within = 0
        self._count = 0
        self._init_blocks(block)

    def _refill(self) -> None:
        count = self._block
        if self._limit is not None:
            count = min(count, self._limit - self._count)
        if count <= 0:
            self._buffer = []
            self._cursor = 0
            return
        plans = self._draw_queries(count)
        buffer = []
        for plan in plans:
            time = self._start + self._burst * self._every
            buffer.append(Arrival(time=time, query=plan))
            self._within += 1
            if self._within >= self._size:
                self._within = 0
                self._burst += 1
        self._count += count
        self._buffer = buffer
        self._cursor = 0

    def next_arrival(self) -> "Arrival | None":
        return self._buffered()

    def next_arrivals(self, limit: int) -> "list[Arrival]":
        return self._buffered_batch(limit)

    def next_block(self) -> "ArrivalBlock | None":
        if self._cursor < len(self._buffer):
            return self._tail_block()
        count = self._synth_block_header()
        if count is None:
            return None
        ids, ops, owners, costs, bids = self._draw_columns(count)
        # Row i fires in burst number burst0 + (within0 + i) // size —
        # exactly the object loop's counter walk, vectorized.
        offsets = self._within + np.arange(count, dtype=np.int64)
        bursts = self._burst + offsets // self._size
        times = self._start + bursts.astype(np.float64) * self._every
        total = self._within + count
        self._burst += total // self._size
        self._within = total % self._size
        self._count += count
        return ArrivalBlock(times, ids, ops, owners, self._stream,
                            costs, 1.0, bids)


class TraceArrivals(ArrivalProcess):
    """Replays the arrivals of a recorded ``repro/sim-trace`` document.

    Give it a live :class:`~repro.sim.trace.SimTrace` or a path to a
    trace file.  Entries replay with their recorded times, queries
    *and* categories, so a replayed run auctions exactly the workload
    the recorded run saw.
    """

    name = "trace"

    def __init__(
        self,
        trace: "object | None" = None,
        path: "str | None" = None,
    ) -> None:
        from repro.sim.trace import SimTrace

        if (trace is None) == (path is None):
            raise ValidationError(
                "pass exactly one of trace= (a SimTrace) or path= "
                "(a trace file)")
        if path is not None:
            from repro.io import load_sim_trace

            trace = load_sim_trace(path)
        if not isinstance(trace, SimTrace):
            raise ValidationError(
                f"expected a SimTrace, got {type(trace).__name__}")
        #: Column-backed traces replay straight off the columns:
        #: compact SelectPlan queries built per batch, no per-entry
        #: plan rebuilds and no up-front materialization.
        self._columns = trace.columns()
        if self._columns is None:
            self._arrivals = [
                Arrival(time=entry.time, query=entry.query,
                        category=entry.category, stream=entry.stream)
                for entry in trace.entries]
            self._opaque_rows = []
        else:
            self._arrivals = None
            self._opaque_rows = sorted(self._columns.opaque)
        self._length = len(trace)
        self._index = 0
        self._block = 1024
        if self._columns is not None:
            # One up-front conversion of the numeric columns (or the
            # loader's retained arrays, when the trace came off disk)
            # lets next_block hand out array *views* instead of
            # re-converting a list slice per block.  float64 round-trips
            # tolist() bitwise, so blocks are identical either way.
            cache = getattr(self._columns, "_numeric_cache", None)
            if cache is not None and len(cache[0]) == self._length:
                self._times, self._costs, self._bids = cache
            else:
                columns = self._columns
                self._times = np.asarray(columns.times,
                                         dtype=np.float64)
                self._costs = np.asarray(columns.costs,
                                         dtype=np.float64)
                self._bids = np.asarray(columns.bids,
                                        dtype=np.float64)

    def next_arrival(self) -> "Arrival | None":
        if self._index >= self._length:
            return None
        index = self._index
        self._index += 1
        if self._columns is not None:
            return self._columns.arrival(index)
        return self._arrivals[index]

    def next_arrivals(self, limit: int) -> "list[Arrival]":
        if self._columns is None:
            return _cut_stream_batch(self._arrivals, self, limit)
        columns = self._columns
        start = self._index
        stop = _cut_rows(columns.times, columns.streams, start,
                         min(start + int(limit), self._length))
        self._index = stop
        return columns.arrivals_slice(start, stop)

    def next_block(self) -> "ArrivalBlock | None":
        columns = self._columns
        start = self._index
        if columns is None or start >= self._length:
            return None
        end = min(start + self._block, self._length)
        if self._opaque_rows:
            cut = bisect.bisect_left(self._opaque_rows, start)
            if cut < len(self._opaque_rows):
                opaque = self._opaque_rows[cut]
                if opaque == start:
                    # The object path must carry this row; the caller
                    # falls back to next_arrivals and retries blocks.
                    return None
                end = min(end, opaque)
        stop = _cut_rows(columns.times, columns.streams, start, end)
        self._index = stop
        valuations = columns.valuations[start:stop]
        if all(valuation is None for valuation in valuations):
            valuations = None
        return ArrivalBlock(
            self._times[start:stop],
            columns.ids[start:stop],
            columns.ops[start:stop],
            columns.owners[start:stop],
            columns.inputs[start:stop],
            self._costs[start:stop],
            columns.selectivities[start:stop],
            self._bids[start:stop],
            valuations=valuations,
            categories=columns.categories[start:stop],
            streams=columns.streams[start:stop])


class ScheduledArrivals(ArrivalProcess):
    """A fixed (time, query) schedule, for full arrival control.

    The hand-written counterpart of the stochastic processes: you
    decide exactly who arrives when — deterministic scenarios, tests,
    reproducing a specific ordering.  (The ``run_periods`` lockstep
    path feeds its batches to the driver directly as arrival events;
    it does not go through this class.)
    """

    name = "scheduled"

    def __init__(
        self,
        arrivals: Sequence[Arrival],
    ) -> None:
        entries = list(arrivals)
        times = [a.time for a in entries]
        if any(later < earlier
               for earlier, later in zip(times, times[1:])):
            raise ValidationError(
                "scheduled arrivals must be in non-decreasing time order")
        self._entries = entries
        self._index = 0

    def next_arrival(self) -> "Arrival | None":
        if self._index >= len(self._entries):
            return None
        entry = self._entries[self._index]
        self._index += 1
        return entry

    def next_arrivals(self, limit: int) -> "list[Arrival]":
        return _cut_stream_batch(self._entries, self, limit)


def _cut_stream_batch(arrivals, process, limit: int) -> "list[Arrival]":
    """Slice the next batch, cut before a same-time stream change.

    Replay processes carry per-arrival stream pins; two same-time
    arrivals on *different* streams must not ride one pump batch, or
    the event queue's ``(time, priority, stream, sequence)`` key would
    re-order them against recorded order.  The cut keeps every batch's
    keys non-decreasing; the next pump picks up right after the cut.
    """
    start = process._index
    end = min(start + int(limit), len(arrivals))
    stop = start + 1 if end > start else start
    while stop < end:
        previous, current = arrivals[stop - 1], arrivals[stop]
        if (current.time == previous.time
                and current.stream != previous.stream):
            break
        stop += 1
    process._index = stop
    return list(arrivals[start:stop])


def _cut_rows(times, streams, start: int, end: int) -> int:
    """The columnar counterpart of :func:`_cut_stream_batch`'s cut."""
    stop = start + 1 if end > start else start
    while stop < end:
        if (times[stop] == times[stop - 1]
                and streams[stop] != streams[stop - 1]):
            break
        stop += 1
    return stop


# ----------------------------------------------------------------------
# Registry and specs (mirrors repro.dsms.backend)
# ----------------------------------------------------------------------

#: The arrival-process registry (shared machinery: utils.registry).
_REGISTRY = SpecRegistry("arrival process", param_noun="arrival process")


def register_arrivals(
    name: str, factory: Callable[..., ArrivalProcess]
) -> None:
    """Register a process *factory* under *name* (case-insensitive)."""
    _REGISTRY.register(name, factory)


def make_arrivals(name: str, **kwargs: object) -> ArrivalProcess:
    """Instantiate a registered process by name, validating kwargs."""
    return _REGISTRY.create(name, **kwargs)


def registered_arrivals() -> Mapping[str, Callable[..., ArrivalProcess]]:
    """Read-only view of the registry (name → factory)."""
    return _REGISTRY.as_mapping()


@dataclass(frozen=True)
class ArrivalSpec(RegistrySpec):
    """An arrival-process name plus declared, validated parameters
    (shared machinery: :class:`~repro.utils.registry.RegistrySpec`).

    >>> ArrivalSpec.parse("poisson:rate=40,seed=7")
    ArrivalSpec(name='poisson', params={'rate': 40, 'seed': 7})
    """

    _registry = _REGISTRY
    _what = "arrival spec"


def resolve_arrivals(
    arrivals: "ArrivalProcess | ArrivalSpec | str",
) -> ArrivalProcess:
    """Coerce any accepted arrival form to a live process.

    Accepts a live :class:`ArrivalProcess`, an :class:`ArrivalSpec`,
    or a spec string like ``"poisson:rate=40"``.  Specs and strings
    produce a fresh process per resolve (processes are stateful).
    """
    if isinstance(arrivals, ArrivalProcess):
        return arrivals
    if isinstance(arrivals, ArrivalSpec):
        return arrivals.create()
    if isinstance(arrivals, str):
        return ArrivalSpec.parse(arrivals).create()
    raise ValidationError(
        f"cannot resolve an arrival process from {arrivals!r}; pass an "
        f"ArrivalProcess, an ArrivalSpec, or a spec string like "
        f"'poisson:rate=40' or 'trace:path=run.trace.json'")


def _trace_factory(path: str) -> TraceArrivals:
    return TraceArrivals(path=str(path))


register_arrivals("poisson", PoissonArrivals)
register_arrivals("burst", BurstArrivals)
register_arrivals("trace", _trace_factory)
