"""Host adapters: one driver, any admission frontend.

The :class:`~repro.sim.driver.SimulationDriver` is generic over *what*
it drives: a single :class:`~repro.service.AdmissionService` or a
sharded :class:`~repro.cluster.FederatedAdmissionService`.  A
:class:`SimulationHost` adapter narrows both to the handful of
operations the event loop needs — submit, route, run one auction
boundary, snapshot — so the driver contains no isinstance ladders and
the whole federation shares the driver's one virtual clock.
"""

from __future__ import annotations

import abc

from repro.dsms.plan import ContinuousQuery
from repro.service.service import AdmissionService
from repro.utils.validation import ValidationError


class SimulationHost(abc.ABC):
    """What the event loop needs from an admission frontend."""

    #: Snapshot tag ("service" / "cluster").
    kind: str = "host"

    @property
    @abc.abstractmethod
    def services(self) -> "tuple[AdmissionService, ...]":
        """The per-shard admission services (one for a bare service)."""

    @property
    @abc.abstractmethod
    def ticks_per_period(self) -> int:
        """Engine ticks per subscription period."""

    @property
    @abc.abstractmethod
    def period(self) -> int:
        """Index of the last completed period."""

    @abc.abstractmethod
    def route(self, query: ContinuousQuery) -> int:
        """The shard that would receive *query* (no side effects)."""

    @abc.abstractmethod
    def submit(self, query: ContinuousQuery,
               shard: "int | None" = None) -> int:
        """Queue *query* for the next auction; returns the shard used.

        ``shard=None`` routes by the host's placement policy; an
        explicit index pins the query to that shard (per-shard event
        streams).
        """

    @abc.abstractmethod
    def run_auction_period(self, allow_idle: bool = True):
        """Run one closed-loop period boundary; returns its report.

        ``allow_idle=False`` reproduces the historical strict
        behaviour of :meth:`AdmissionService.run_periods`: a period
        with nothing to auction raises instead of idling.
        """

    @abc.abstractmethod
    def snapshot(self):
        """The host's own checkpoint payload."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} kind={self.kind!r}>"


class ServiceHost(SimulationHost):
    """A single admission service behind the host interface."""

    kind = "service"

    def __init__(self, service: AdmissionService) -> None:
        self.service = service

    @property
    def services(self) -> "tuple[AdmissionService, ...]":
        return (self.service,)

    @property
    def ticks_per_period(self) -> int:
        return self.service.ticks_per_period

    @property
    def period(self) -> int:
        return self.service.period

    def route(self, query: ContinuousQuery) -> int:
        return 0

    def submit(self, query: ContinuousQuery,
               shard: "int | None" = None) -> int:
        if shard not in (None, 0):
            raise ValidationError(
                f"a single service has only shard 0, got shard {shard}")
        self.service.submit(query)
        return 0

    def run_auction_period(self, allow_idle: bool = True):
        if (not allow_idle or self.service.pending_ids
                or self.service.engine.admitted_ids):
            return self.service.run_period()
        return self.service.run_idle_period()

    def snapshot(self):
        return self.service.snapshot()


class ClusterHost(SimulationHost):
    """A sharded federation behind the host interface.

    ``batch=True`` auctions each boundary through the federation's
    pooled :meth:`run_period_all` path — threads by default, or the
    persistent multiprocessing pool when the federation's
    ``auction_mode`` is ``"process"`` (byte-identical reports every
    way).
    """

    kind = "cluster"

    def __init__(self, cluster, batch: bool = False) -> None:
        self.cluster = cluster
        self.batch = bool(batch)

    @property
    def services(self) -> "tuple[AdmissionService, ...]":
        return self.cluster.shards

    @property
    def ticks_per_period(self) -> int:
        return self.cluster.shards[0].ticks_per_period

    @property
    def period(self) -> int:
        return self.cluster.period

    def route(self, query: ContinuousQuery) -> int:
        statuses = self.cluster.shard_statuses()
        index = self.cluster.placement.choose(query, statuses)
        if not 0 <= index < self.cluster.num_shards:
            raise ValidationError(
                f"placement policy {self.cluster.placement.name!r} "
                f"chose shard {index}, but the cluster has shards 0.."
                f"{self.cluster.num_shards - 1}")
        return index

    def submit(self, query: ContinuousQuery,
               shard: "int | None" = None) -> int:
        if shard is None:
            return self.cluster.submit(query)
        if not 0 <= shard < self.cluster.num_shards:
            raise ValidationError(
                f"shard {shard} out of range; the cluster has shards "
                f"0..{self.cluster.num_shards - 1}")
        existing = self.cluster.locate(query.query_id)
        if existing is not None:
            raise ValidationError(
                f"query id {query.query_id!r} already submitted "
                f"(held by shard {existing})")
        self.cluster.shards[shard].submit(query)
        return shard

    def run_auction_period(self, allow_idle: bool = True):
        # The federation handles idle shards itself (run_idle_period),
        # so allow_idle has nothing to restrict here.
        return (self.cluster.run_period_all() if self.batch
                else self.cluster.run_period())

    def snapshot(self):
        return self.cluster.snapshot()


def wrap_host(host) -> SimulationHost:
    """Coerce a service, federation, or host to a :class:`SimulationHost`."""
    if isinstance(host, SimulationHost):
        return host
    if isinstance(host, AdmissionService):
        return ServiceHost(host)
    from repro.cluster.federation import FederatedAdmissionService

    if isinstance(host, FederatedAdmissionService):
        return ClusterHost(host)
    raise ValidationError(
        f"cannot drive {type(host).__name__}; pass an "
        f"AdmissionService, a FederatedAdmissionService, or a "
        f"SimulationHost")


def restore_host(kind: str, payload, batch: bool = False) -> SimulationHost:
    """Rebuild a host from its snapshot ``(kind, payload)`` pair."""
    if kind == "service":
        return ServiceHost(AdmissionService.restore(payload))
    if kind == "cluster":
        from repro.cluster.federation import FederatedAdmissionService

        return ClusterHost(
            FederatedAdmissionService.restore(payload), batch=batch)
    raise ValidationError(
        f"unknown simulation host kind {kind!r}; this build restores "
        f"'service' and 'cluster'")
