"""Group commit: many acknowledged mutations, one fsync.

PR 9's durability contract appends every acknowledged gateway mutation
before its response goes out; under ``wal_fsync="always"`` that is one
``fsync`` per request — correct, and the single slowest thing on the
serving hot path.  :class:`GroupCommitter` amortizes it with the
classic leader/follower scheme:

* a request *enqueues* its record (appending the frame immediately, so
  the physical log keeps application order) and receives a future;
* the first enqueue of a batch elects itself leader and schedules one
  flush after a bounded wait window (``window`` seconds), during which
  followers pile on for free;
* the leader runs the ``fsync`` in an executor thread — the event loop
  keeps accepting (and batching) while the disk works — then resolves
  every future in the batch.

The response is only written after the future resolves, so the
client-visible guarantee is unchanged: every acknowledged mutation is
durable.  What changes is the price — ``fsyncs / mutations`` drops
toward ``1 / batch size`` under concurrency (visible in
``stats_snapshot()["fsyncs_per_record"]``), and a lone request pays at
most the window (2 ms by default) of extra latency.
"""

from __future__ import annotations

import asyncio

from repro.utils.validation import require


class GroupCommitter:
    """Batch ``fsync``\\ s of an open :class:`WriteAheadLog`.

    The log's own policy should be ``never`` — the committer decides
    when to sync.  All methods must be called on one event loop.
    """

    def __init__(self, log, *, window: float = 0.002) -> None:
        require(float(window) >= 0.0, "window must be >= 0")
        self.log = log
        self.window = float(window)
        self._pending: "list[asyncio.Future]" = []
        self._leader: "asyncio.Task | None" = None
        self._closed = False
        self.stats = {"mutations": 0, "fsyncs": 0, "batches": 0,
                      "largest_batch": 0}

    def enqueue(self, kind_append, *args, **kwargs) -> "asyncio.Future":
        """Append now, fsync later; resolves when the batch is durable.

        *kind_append* is the bound log append method (e.g.
        ``log.append_op``); calling it here, synchronously, keeps the
        frame order identical to the application order the caller
        established under its service lock.
        """
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        if self._closed:
            future.set_exception(RuntimeError(
                "group committer is closed"))
            return future
        try:
            kind_append(*args, **kwargs)
        except Exception as exc:  # noqa: BLE001 - surface to the caller
            future.set_exception(exc)
            return future
        self.stats["mutations"] += 1
        self._pending.append(future)
        if self._leader is None:
            self._leader = loop.create_task(self._flush_after_window())
        return future

    async def _flush_after_window(self) -> None:
        try:
            if self.window > 0.0:
                await asyncio.sleep(self.window)
        finally:
            # Step down first: enqueues arriving while the sync runs in
            # the executor elect a fresh leader instead of waiting a
            # whole extra window behind this one.
            self._leader = None
        await self._flush_now()

    async def _flush_now(self) -> None:
        batch, self._pending = self._pending, []
        if not batch:
            return
        loop = asyncio.get_running_loop()
        try:
            await loop.run_in_executor(None, self.log.sync)
        except Exception as exc:  # noqa: BLE001 - fail the whole batch
            for future in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        self.stats["fsyncs"] += 1
        self.stats["batches"] += 1
        self.stats["largest_batch"] = max(
            self.stats["largest_batch"], len(batch))
        for future in batch:
            if not future.done():
                future.set_result(None)

    async def flush(self) -> None:
        """Force everything enqueued so far durable, immediately.

        Used by drains and shutdown: takes over the pending batch
        directly — a leader still waiting out its window wakes to an
        empty batch and no-ops, and a sync already in flight is
        covered because ``fsync`` on the active segment persists every
        byte appended before this call, batch boundaries or not.
        """
        await self._flush_now()

    async def close(self) -> None:
        """Flush the tail and refuse further enqueues."""
        if self._closed:
            return
        await self.flush()
        self._closed = True

    def stats_snapshot(self) -> dict:
        snapshot = dict(self.stats)
        mutations = snapshot["mutations"]
        snapshot["window_s"] = self.window
        snapshot["fsyncs_per_mutation"] = (
            round(snapshot["fsyncs"] / mutations, 6) if mutations else 0.0)
        return snapshot
