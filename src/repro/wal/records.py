"""WAL record framing: length-prefixed CRC32 frames over the v2 codec.

Every record in a WAL segment is one *frame*::

    u32 length | u32 crc32(payload) | payload (length bytes)

and every payload starts with a one-byte record kind.  Arrival records
carry the v2 sim-trace binary columns (the same arrays
``repro.io.sim_trace_to_arrays`` feeds ``np.savez``) packed as raw
``.npy`` blobs — no zip container, so a torn write can never fake a
valid central directory.  Period, op, and checkpoint records are
canonical JSON (sorted keys) so byte-identical state produces
byte-identical frames.

The scan helpers below are deliberately paranoid: a frame that is
short, oversized, or fails its CRC terminates the scan.  Whether that
termination is a *torn tail* (expected after ``kill -9``; the bytes
are discarded) or *corruption* (mid-log damage; hard error) is the
caller's decision — :mod:`repro.wal.log` treats a bad frame in the
final segment as torn and anywhere else as a `ValidationError`.
"""

from __future__ import annotations

import io as _stdio
import json
import struct
import zlib

import numpy as np

from repro.utils.validation import ValidationError

#: Record kinds (first payload byte).
RECORD_ARRIVALS = 1   #: packed v2 trace arrays for one settle window
RECORD_PERIOD = 2     #: JSON settle receipt {period, events, revenue, ...}
RECORD_OP = 3         #: JSON serve-request document (gateway mutation)
RECORD_CHECKPOINT = 4 #: JSON {period, snapshot} — compaction boundary

RECORD_KINDS = (RECORD_ARRIVALS, RECORD_PERIOD, RECORD_OP,
                RECORD_CHECKPOINT)

_FRAME = struct.Struct("<II")
FRAME_HEADER = _FRAME.size

#: Sanity cap on a single frame payload.  A torn length field can read
#: as garbage; anything past this is treated as an invalid frame rather
#: than a 4 GiB allocation.
MAX_FRAME_BYTES = 256 * 1024 * 1024


class FrameError(ValueError):
    """A frame failed to parse (short, oversized, or CRC mismatch)."""


def encode_frame(kind: int, body: bytes) -> bytes:
    """Frame ``kind`` + *body* into header | crc | payload bytes."""
    if kind not in RECORD_KINDS:
        raise ValidationError(f"unknown WAL record kind {kind!r}")
    payload = bytes([kind]) + body
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def decode_frame(buffer: bytes, offset: int) -> "tuple[int, bytes, int]":
    """Decode one frame at *offset*; returns ``(kind, body, end)``.

    Raises :class:`FrameError` on anything short of a complete,
    CRC-clean frame — the caller decides torn-tail vs corruption.
    """
    header_end = offset + FRAME_HEADER
    if header_end > len(buffer):
        raise FrameError(f"short frame header at offset {offset}")
    length, crc = _FRAME.unpack_from(buffer, offset)
    if length < 1 or length > MAX_FRAME_BYTES:
        raise FrameError(f"implausible frame length {length} at "
                         f"offset {offset}")
    end = header_end + length
    if end > len(buffer):
        raise FrameError(f"truncated frame payload at offset {offset}")
    payload = buffer[header_end:end]
    if zlib.crc32(payload) != crc:
        raise FrameError(f"CRC mismatch at offset {offset}")
    kind = payload[0]
    if kind not in RECORD_KINDS:
        raise FrameError(f"unknown record kind {kind} at "
                         f"offset {offset}")
    return kind, payload[1:], end


def iter_frames(buffer: bytes):
    """Yield ``(kind, body, start, end)`` until EOF or a bad frame.

    A clean EOF exhausts the iterator; a bad frame re-raises
    :class:`FrameError` carrying the failing start offset in
    ``error.offset``.
    """
    offset = 0
    size = len(buffer)
    while offset < size:
        try:
            kind, body, end = decode_frame(buffer, offset)
        except FrameError as error:
            error.offset = offset
            raise
        yield kind, body, offset, end
        offset = end


# --- JSON record bodies -------------------------------------------------

def encode_json(document: dict) -> bytes:
    """Canonical (sorted-key) JSON body bytes for *document*."""
    return json.dumps(document, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def decode_json(body: bytes, what: str) -> dict:
    """Parse a JSON record body, converting failures to ValidationError."""
    try:
        document = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ValidationError(f"WAL {what} record is not valid JSON: "
                              f"{error}") from None
    if not isinstance(document, dict):
        raise ValidationError(f"WAL {what} record must be a JSON "
                              f"object, got {type(document).__name__}")
    return document


# --- arrivals record bodies ---------------------------------------------

def pack_arrays(arrays: "dict[str, np.ndarray]") -> bytes:
    """Pack named arrays as a JSON name manifest + sequential npy blobs.

    Layout: ``u32 manifest_len | manifest JSON (sorted name list) |
    npy blob per name, in manifest order``.  Each blob is a complete
    ``.npy`` stream written with ``allow_pickle=False``, so structured
    dtypes survive but arbitrary objects cannot ride along.
    """
    names = sorted(arrays)
    manifest = json.dumps(names, separators=(",", ":")).encode("utf-8")
    stream = _stdio.BytesIO()
    stream.write(struct.pack("<I", len(manifest)))
    stream.write(manifest)
    for name in names:
        # Not ascontiguousarray: that promotes 0-d arrays to 1-d
        # (ndmin=1), and the schema/version tags are 0-d.  A 0-d
        # array is always contiguous anyway.
        value = np.asarray(arrays[name])
        if not value.flags["C_CONTIGUOUS"]:
            value = np.ascontiguousarray(value)
        np.lib.format.write_array(stream, value, allow_pickle=False)
    return stream.getvalue()


def unpack_arrays(body: bytes) -> "dict[str, np.ndarray]":
    """Inverse of :func:`pack_arrays`; ValidationError on any damage."""
    try:
        (manifest_len,) = struct.unpack_from("<I", body, 0)
        manifest = body[4:4 + manifest_len].decode("utf-8")
        names = json.loads(manifest)
        stream = _stdio.BytesIO(body[4 + manifest_len:])
        arrays = {}
        for name in names:
            arrays[str(name)] = np.lib.format.read_array(
                stream, allow_pickle=False)
    except (struct.error, UnicodeDecodeError, json.JSONDecodeError,
            ValueError, KeyError, EOFError) as error:
        raise ValidationError(
            f"WAL arrivals record failed to unpack: {error}") from None
    return arrays


def encode_arrivals(trace) -> bytes:
    """Arrivals body for a :class:`repro.sim.trace.SimTrace` window."""
    from repro.io import sim_trace_to_arrays

    return pack_arrays(sim_trace_to_arrays(trace))


def decode_arrivals(body: bytes):
    """Rebuild the :class:`SimTrace` window from an arrivals body."""
    from repro.io import sim_trace_from_arrays

    return sim_trace_from_arrays(unpack_arrays(body))
