"""Segmented write-ahead log: append, scan, truncate, compact.

On-disk layout of a WAL directory::

    wal-00000000.log        oldest live segment
    wal-00000001.log        ...
    wal-00000007.log        active segment (appends go here)
    snapshot-00000012.ckpt  repro/sim-snapshot envelope at period 12

Segments hold the frames of :mod:`repro.wal.records` back to back.
The durability contract is write-ahead + forced ordering:

* every mutation is framed and appended *before* it is acknowledged
  (gateway ops) or *as* it is applied (sim settle windows), under the
  configured fsync policy — ``never`` (OS decides), ``batch:n``
  (fsync every *n* records), ``always`` (fsync per append);
* compaction first saves a snapshot atomically, then rolls to a fresh
  segment whose first record is a fsync'd ``CHECKPOINT`` naming that
  snapshot, and only then prunes older segments and snapshots — a
  crash between any two of those steps leaves a recoverable log.

Scanning replays that contract in reverse.  A bad frame in the *final*
segment is a torn tail (the expected residue of ``kill -9``): bytes
from the tear onward are discarded and, on resume, physically
truncated away.  A bad frame anywhere else means real corruption and
raises :class:`~repro.utils.validation.ValidationError` naming the
segment.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro.utils.validation import ValidationError
from repro.wal import records as rec
from repro.wal.crashpoints import crashpoint, register

CP_APPEND_BEFORE_FRAME = register("wal.append.before-frame")
CP_APPEND_AFTER_FRAME = register("wal.append.after-frame")
CP_COMPACT_BEFORE_SNAPSHOT = register("wal.compact.before-snapshot")
CP_COMPACT_AFTER_SNAPSHOT = register("wal.compact.after-snapshot")
CP_COMPACT_AFTER_CHECKPOINT = register("wal.compact.after-checkpoint")
CP_COMPACT_AFTER_PRUNE = register("wal.compact.after-prune")

#: Roll to a new segment once the active one crosses this many bytes.
DEFAULT_SEGMENT_BYTES = 8 * 1024 * 1024


def segment_name(seq: int) -> str:
    return f"wal-{int(seq):08d}.log"


def snapshot_name(period: int) -> str:
    return f"snapshot-{int(period):08d}.ckpt"


def list_segments(directory) -> "list[tuple[int, Path]]":
    """``(seq, path)`` for every segment file, ordered by sequence."""
    found = []
    for path in Path(directory).glob("wal-*.log"):
        stem = path.name[len("wal-"):-len(".log")]
        if stem.isdigit():
            found.append((int(stem), path))
    return sorted(found)


def list_snapshots(directory) -> "list[tuple[int, Path]]":
    """``(period, path)`` for every snapshot file, ordered by period."""
    found = []
    for path in Path(directory).glob("snapshot-*.ckpt"):
        stem = path.name[len("snapshot-"):-len(".ckpt")]
        if stem.isdigit():
            found.append((int(stem), path))
    return sorted(found)


def wal_exists(directory) -> bool:
    """True when *directory* holds a recoverable WAL.

    The gate is a *snapshot*, not a segment: snapshots are published
    atomically, so one on disk means genesis (or a later checkpoint)
    completed and recovery has a base state.  A directory with only a
    segment file is a crash *during* genesis — nothing was ever
    acknowledged, and the owner should start fresh over it.
    """
    return bool(list_snapshots(directory))


@dataclass(frozen=True)
class WalRecord:
    """One decoded frame plus its physical location in the log."""

    kind: int
    body: bytes
    segment: int
    start: int
    end: int


@dataclass
class WalScan:
    """Everything a scan learned about a WAL directory."""

    directory: Path
    segments: "list[tuple[int, Path]]"
    records: "list[WalRecord]"
    torn: bool = False
    torn_segment: "int | None" = None
    torn_offset: "int | None" = None
    discarded_bytes: int = 0
    snapshots: "list[tuple[int, Path]]" = field(default_factory=list)

    def checkpoint(self) -> "WalRecord | None":
        """The latest ``CHECKPOINT`` record, if any survived."""
        for record in reversed(self.records):
            if record.kind == rec.RECORD_CHECKPOINT:
                return record
        return None

    def tail(self, keep_kinds=None) -> "list[WalRecord]":
        """Records after the latest checkpoint (the replay worklist)."""
        checkpoint = self.checkpoint()
        tail = []
        for record in self.records:
            if checkpoint is not None and (
                    record.segment, record.start) <= (
                    checkpoint.segment, checkpoint.start):
                continue
            if record.kind == rec.RECORD_CHECKPOINT:
                continue
            if keep_kinds is not None and record.kind not in keep_kinds:
                continue
            tail.append(record)
        return tail


def scan_wal(directory) -> WalScan:
    """Read every frame in *directory*, classifying any bad frame.

    A decode failure in the last segment marks the scan ``torn`` and
    drops everything from the tear onward; a failure in an earlier
    segment is corruption and raises ``ValidationError``.
    """
    directory = Path(directory)
    segments = list_segments(directory)
    if not segments:
        raise ValidationError(
            f"no WAL segments found in {directory}")
    scan = WalScan(directory=directory, segments=segments,
                   records=[], snapshots=list_snapshots(directory))
    last_seq = segments[-1][0]
    for seq, path in segments:
        try:
            buffer = path.read_bytes()
        except OSError as error:
            raise ValidationError(
                f"failed to read WAL segment {path}: {error}"
            ) from None
        try:
            for kind, body, start, end in rec.iter_frames(buffer):
                scan.records.append(WalRecord(
                    kind=kind, body=body, segment=seq,
                    start=start, end=end))
        except rec.FrameError as error:
            if seq != last_seq:
                raise ValidationError(
                    f"corrupt WAL segment {path}: {error}") from None
            scan.torn = True
            scan.torn_segment = seq
            scan.torn_offset = error.offset
            scan.discarded_bytes = len(buffer) - error.offset
    return scan


def check_receipt(document: dict, *, period: int, revenue: float,
                  queue: "dict | None", origin: str) -> None:
    """Compare a period record against the state a replay produced.

    Exact comparisons are deliberate: JSON round-trips Python floats
    bit-exactly and a replay recomputes revenue in the same summation
    order, so any tolerance would only hide divergence.
    """
    want_period = int(document.get("period", -1))
    if want_period != int(period):
        raise ValidationError(
            f"WAL replay diverged during {origin}: log expects period "
            f"{want_period}, replay reached {period}")
    want_revenue = document.get("revenue")
    if want_revenue is not None and float(want_revenue) != float(revenue):
        raise ValidationError(
            f"WAL replay diverged during {origin} at period {period}: "
            f"log expects revenue {want_revenue!r}, replay produced "
            f"{revenue!r}")
    want_queue = document.get("queue")
    if want_queue is not None and queue is not None \
            and want_queue != queue:
        raise ValidationError(
            f"WAL replay diverged during {origin} at period {period}: "
            f"queue composition {queue!r} does not match the logged "
            f"{want_queue!r}")


def _parse_fsync(policy) -> "tuple[str, int]":
    """Normalise ``never`` / ``batch:n`` / ``always`` to (mode, n)."""
    text = str(policy).strip().lower()
    if text == "never":
        return "never", 0
    if text == "always":
        return "always", 0
    mode, _, count = text.partition(":")
    if mode == "batch":
        try:
            every = int(count) if count else 256
        except ValueError:
            every = -1
        if every >= 1:
            return "batch", every
    raise ValidationError(
        f"invalid fsync policy {policy!r}: expected 'never', "
        f"'always', or 'batch:N'")


class WriteAheadLog:
    """Appender + compactor over one WAL directory.

    Use :meth:`create` for a fresh directory (writes the genesis
    snapshot + checkpoint so period 0 is already recoverable) and
    :meth:`resume` after a crash (truncates the torn tail discovered
    by :func:`scan_wal` before reopening for append).
    """

    def __init__(self, directory, *, fsync="batch:256",
                 segment_bytes=DEFAULT_SEGMENT_BYTES,
                 compact_every=0):
        self.directory = Path(directory)
        self.fsync_policy = str(fsync)
        self._fsync_mode, self._fsync_every = _parse_fsync(fsync)
        self.segment_bytes = int(segment_bytes)
        self.compact_every = int(compact_every)
        self.checkpoint_period = 0
        #: When True, appends are silently dropped — recovery replays
        #: records through the same code paths that normally log them.
        self.suspended = False
        #: Receipt documents a replay is expected to reproduce, in
        #: order (see :meth:`expect_replay` / :meth:`verify_replay`).
        self._replay_expect: "list[dict]" = []
        self._lock = threading.Lock()
        self._handle = None
        self._seq = -1
        self._segment_size = 0
        self._unsynced = 0
        self.stats = {
            "records": 0, "segments": 0, "fsyncs": 0,
            "compactions": 0, "recoveries": 0, "appended_bytes": 0,
            "torn_tail": False, "discarded_bytes": 0,
        }

    # -- lifecycle -------------------------------------------------------

    @classmethod
    def create(cls, directory, state, *, fsync="batch:256",
               segment_bytes=DEFAULT_SEGMENT_BYTES, compact_every=0,
               period=0):
        """Initialise a fresh WAL: genesis snapshot + checkpoint.

        *state* is whatever the owner recovers from — a
        ``SimSnapshot`` for the sim driver, a gateway state document
        for serve — saved through the atomic `repro.io` path.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        if wal_exists(directory):
            raise ValidationError(
                f"WAL directory {directory} already contains "
                f"segments; use resume")
        log = cls(directory, fsync=fsync, segment_bytes=segment_bytes,
                  compact_every=compact_every)
        log._open_segment(0, truncate=True)
        log._write_checkpoint(state, int(period))
        return log

    @classmethod
    def resume(cls, directory, scan=None, *, keep_kinds=None,
               fsync="batch:256", segment_bytes=DEFAULT_SEGMENT_BYTES,
               compact_every=0):
        """Reopen *directory* after a crash, truncating the torn tail.

        *keep_kinds* names the record kinds the owner can actually
        replay; trailing records of other kinds (e.g. an ``ARRIVALS``
        window whose ``PERIOD`` receipt never landed) are cut along
        with the tear so the physical log ends at a replayable record.
        Returns ``(log, scan)``.
        """
        directory = Path(directory)
        if scan is None:
            scan = scan_wal(directory)
        keep = None if keep_kinds is None else set(keep_kinds)
        if keep is not None:
            keep.add(rec.RECORD_CHECKPOINT)
        cut_seq, cut_end = -1, 0
        for record in scan.records:
            if keep is not None and record.kind not in keep:
                continue
            cut_seq, cut_end = record.segment, record.end
        if cut_seq < 0:
            # A log with no replayable record at all — e.g. killed
            # while writing the genesis checkpoint frame.  The genesis
            # snapshot was saved atomically *before* that frame, so if
            # it exists the run is still recoverable from period 0.
            if not list_snapshots(directory):
                raise ValidationError(
                    f"WAL {directory} holds no replayable records "
                    f"and no snapshot; refusing to resume")
            cut_seq, cut_end = scan.segments[-1][0], 0
        dropped = [r for r in scan.records
                   if (r.segment, r.start) >= (cut_seq, cut_end)]
        scan.records = [r for r in scan.records
                        if (r.segment, r.start) < (cut_seq, cut_end)]
        log = cls(directory, fsync=fsync, segment_bytes=segment_bytes,
                  compact_every=compact_every)
        for seq, path in scan.segments:
            if seq > cut_seq:
                path.unlink()
        log._truncate_segment(cut_seq, cut_end)
        log.stats["recoveries"] = 1
        log.stats["torn_tail"] = scan.torn
        log.stats["discarded_bytes"] = (
            scan.discarded_bytes
            + sum(r.end - r.start for r in dropped))
        checkpoint = scan.checkpoint()
        if checkpoint is not None:
            document = rec.decode_json(checkpoint.body, "checkpoint")
            log.checkpoint_period = int(document.get("period", 0))
        return log, scan

    def _open_segment(self, seq: int, *, truncate: bool = False):
        if self._handle is not None:
            self._handle.close()
        path = self.directory / segment_name(seq)
        mode = "wb" if truncate else "ab"
        self._handle = open(path, mode)
        self._seq = seq
        self._segment_size = self._handle.tell()
        self.stats["segments"] += 1

    def _truncate_segment(self, seq: int, size: int):
        """Open segment *seq* for append with exactly *size* bytes."""
        path = self.directory / segment_name(seq)
        with open(path, "rb+") as handle:
            handle.truncate(size)
            handle.flush()
            os.fsync(handle.fileno())
        self._handle = open(path, "ab")
        self._seq = seq
        self._segment_size = size
        self.stats["segments"] += 1

    def close(self):
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
                os.fsync(self._handle.fileno())
                self.stats["fsyncs"] += 1
                self._handle.close()
                self._handle = None

    # -- appends ---------------------------------------------------------

    def _append(self, kind: int, body: bytes) -> bool:
        if self.suspended:
            return False
        with self._lock:
            if self._handle is None:
                raise ValidationError(
                    f"WAL {self.directory} is closed")
            if self._segment_size >= self.segment_bytes:
                self._roll_locked()
            frame = rec.encode_frame(kind, body)
            crashpoint(CP_APPEND_BEFORE_FRAME)
            self._handle.write(frame)
            self._handle.flush()
            self._segment_size += len(frame)
            self.stats["records"] += 1
            self.stats["appended_bytes"] += len(frame)
            self._unsynced += 1
            if self._fsync_mode == "always" or (
                    self._fsync_mode == "batch"
                    and self._unsynced >= self._fsync_every):
                os.fsync(self._handle.fileno())
                self.stats["fsyncs"] += 1
                self._unsynced = 0
            crashpoint(CP_APPEND_AFTER_FRAME)
        return True

    def _roll_locked(self):
        handle = self._handle
        handle.flush()
        os.fsync(handle.fileno())
        self.stats["fsyncs"] += 1
        self._unsynced = 0
        handle.close()
        self._handle = None
        self._open_segment(self._seq + 1, truncate=True)

    def append_arrivals(self, trace) -> bool:
        """Log one settle window's admissions; skipped when empty."""
        if trace is None or not len(trace):
            return False
        return self._append(rec.RECORD_ARRIVALS,
                            rec.encode_arrivals(trace))

    def append_period(self, *, period, events, revenue,
                      arrivals, queue=None, consumed=None) -> bool:
        """Log the settle receipt that makes *period* replay-checkable.

        *consumed*, when given, maps WAL stripe index → highest op
        sequence number this settle consumed from that stripe — the
        merge cursor striped recovery advances per period (see
        :func:`~repro.wal.recovery.recover_striped_gateway`).
        """
        document = {"period": int(period), "events": int(events),
                    "revenue": float(revenue),
                    "arrivals": int(arrivals)}
        if queue is not None:
            document["queue"] = queue
        if consumed is not None:
            document["consumed"] = {
                str(stripe): int(seq)
                for stripe, seq in sorted(consumed.items())}
        return self._append(rec.RECORD_PERIOD,
                            rec.encode_json(document))

    def append_op(self, document: dict) -> bool:
        """Log one acknowledged gateway mutation (submit/withdraw)."""
        return self._append(rec.RECORD_OP, rec.encode_json(document))

    # -- replay verification ---------------------------------------------

    def expect_replay(self, documents) -> None:
        """Queue the period receipts a suspended replay must match."""
        self._replay_expect = list(documents)

    def pending_replays(self) -> int:
        """Receipts queued by :meth:`expect_replay` not yet verified."""
        return len(self._replay_expect)

    def verify_replay(self, *, period, revenue, queue=None,
                      origin="replay") -> None:
        """Check replayed state against the next expected receipt.

        Called from the same code path that wrote the original record
        (the driver's settle hook, with the log suspended), so the
        comparison happens at the exact lifecycle point the receipt
        captured — not after the event loop has drained past it.
        """
        if not self._replay_expect:
            return
        document = self._replay_expect.pop(0)
        check_receipt(document, period=period, revenue=revenue,
                      queue=queue, origin=origin)

    def sync(self):
        """Flush + fsync the active segment regardless of policy."""
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
                os.fsync(self._handle.fileno())
                self.stats["fsyncs"] += 1
                self._unsynced = 0

    # -- compaction ------------------------------------------------------

    def due_for_compaction(self, period: int) -> bool:
        if self.compact_every <= 0 or self.suspended:
            return False
        return int(period) - self.checkpoint_period >= self.compact_every

    def compact(self, state, period: int):
        """Fold the log prefix into a snapshot and prune behind it.

        Ordering is the whole point: snapshot durably on disk *before*
        the checkpoint record that names it, checkpoint durably in the
        log *before* anything older disappears.  Each gap between the
        steps carries a crashpoint so the kill-matrix proves a crash
        there still recovers.
        """
        from repro.io import save_sim_snapshot

        period = int(period)
        crashpoint(CP_COMPACT_BEFORE_SNAPSHOT)
        path = self.directory / snapshot_name(period)
        save_sim_snapshot(state, path)
        crashpoint(CP_COMPACT_AFTER_SNAPSHOT)
        with self._lock:
            self._roll_locked()
        self._write_checkpoint_record(path.name, period)
        crashpoint(CP_COMPACT_AFTER_CHECKPOINT)
        self._prune(period)
        crashpoint(CP_COMPACT_AFTER_PRUNE)
        self.stats["compactions"] += 1
        self.checkpoint_period = period

    def _write_checkpoint(self, state, period: int):
        """Genesis: snapshot + checkpoint record in the empty log."""
        from repro.io import save_sim_snapshot

        path = self.directory / snapshot_name(period)
        save_sim_snapshot(state, path)
        self._write_checkpoint_record(path.name, period)
        self.checkpoint_period = period

    def _write_checkpoint_record(self, snapshot: str, period: int):
        document = {"period": int(period), "snapshot": str(snapshot)}
        self._append(rec.RECORD_CHECKPOINT, rec.encode_json(document))
        self.sync()

    def _prune(self, period: int):
        for seq, path in list_segments(self.directory):
            if seq < self._seq:
                path.unlink()
        for snap_period, path in list_snapshots(self.directory):
            if snap_period < period:
                path.unlink()
        # Orphaned temp files from an interrupted atomic save are
        # dead weight once a later checkpoint landed — sweep them.
        for path in self.directory.glob("*.tmp"):
            try:
                path.unlink()
            except OSError:
                pass

    # -- introspection ---------------------------------------------------

    def stats_snapshot(self) -> dict:
        snapshot = dict(self.stats)
        snapshot["fsync_policy"] = self.fsync_policy
        snapshot["segment"] = self._seq
        snapshot["segment_bytes"] = self._segment_size
        snapshot["checkpoint_period"] = self.checkpoint_period
        snapshot["compact_every"] = self.compact_every
        snapshot["suspended"] = self.suspended
        records = snapshot["records"]
        snapshot["fsyncs_per_record"] = (
            round(snapshot["fsyncs"] / records, 6) if records else 0.0)
        return snapshot
