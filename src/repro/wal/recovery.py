"""Crash recovery: latest snapshot + log-tail replay, verified.

Both recovery paths follow the same shape — scan the WAL, truncate the
torn tail, load the snapshot the newest surviving checkpoint names,
then replay the tail records *through the same deterministic machinery
that produced them*:

* the sim driver regenerates every arrival from its snapshotted RNG
  streams, so a ``PERIOD`` record replays as one ``driver.run(1)``
  call — the record's receipt (period index, cumulative revenue, queue
  composition) is then *checked* against the re-run, and any mismatch
  is a hard :class:`~repro.utils.validation.ValidationError` rather
  than a silently different result;
* the gateway's mutations are externally driven, so its ``OP`` records
  replay by re-applying each acknowledged submit/withdraw to the
  restored backend, and its ``PERIOD`` records by re-running the
  settle, with the same receipt checks.

While a replay is running the log is ``suspended``: the driver and
gateway code paths still call their append hooks, but nothing is
re-logged — replaying must not grow the log it replays.
"""

from __future__ import annotations

from pathlib import Path

from repro.utils.validation import ValidationError
from repro.wal import records as rec
from repro.wal.log import (
    WriteAheadLog,
    check_receipt,
    list_snapshots,
    scan_wal,
)


def _checkpoint_state(directory, scan, log):
    """Load the state object recovery starts from.

    Prefers the snapshot named by the newest checkpoint record; a log
    whose genesis checkpoint was torn away falls back to the newest
    snapshot file on disk (saved atomically, so it is complete if it
    exists at all).
    """
    from repro.io import load_sim_snapshot

    directory = Path(directory)
    checkpoint = scan.checkpoint()
    if checkpoint is not None:
        document = rec.decode_json(checkpoint.body, "checkpoint")
        path = directory / str(document.get("snapshot", ""))
        if not path.is_file():
            raise ValidationError(
                f"WAL checkpoint names missing snapshot {path}")
        return load_sim_snapshot(path)
    snapshots = list_snapshots(directory)
    if not snapshots:
        raise ValidationError(
            f"WAL {directory} has no checkpoint record and no "
            f"snapshot files; nothing to recover from")
    period, path = snapshots[-1]
    log.checkpoint_period = period
    return load_sim_snapshot(path)


def recover_sim_driver(directory, *, fsync="batch:256",
                       segment_bytes=None, compact_every=0):
    """Rebuild a :class:`~repro.sim.SimulationDriver` from its WAL.

    Returns ``(driver, log)`` with the log attached to the driver and
    open for append — the caller just keeps calling ``driver.run``.
    """
    from repro.sim.driver import SimulationDriver
    from repro.wal import log as wal_log

    scan = scan_wal(directory)
    log, scan = WriteAheadLog.resume(
        directory, scan, keep_kinds=(rec.RECORD_PERIOD,),
        fsync=fsync, compact_every=compact_every,
        segment_bytes=(segment_bytes
                       or wal_log.DEFAULT_SEGMENT_BYTES))
    snapshot = _checkpoint_state(directory, scan, log)
    driver = SimulationDriver.restore(snapshot)
    driver.attach_wal(log)
    tail = scan.tail(keep_kinds=(rec.RECORD_PERIOD,))
    documents = [rec.decode_json(record.body, "period")
                 for record in tail]
    log.suspended = True
    log.expect_replay(documents)
    try:
        for _ in documents:
            driver.run(1)
    finally:
        log.suspended = False
    if log.pending_replays():
        raise ValidationError(
            f"WAL replay of {directory} stopped with "
            f"{log.pending_replays()} period record(s) unverified")
    log.stats["replayed"] = len(tail)
    return driver, log


def recover_gateway_backend(directory, backend, *, fsync="batch:256",
                            segment_bytes=None, compact_every=0):
    """Rebuild a gateway *backend*'s state from its WAL, in place.

    *backend* is the freshly constructed
    :class:`~repro.serve.gateway.DriverBackend` /
    :class:`~repro.serve.gateway.HostBackend` the gateway was started
    with; its driver/host is replaced by the recovered one, then the
    tail of acknowledged ops and settles is re-applied.  Returns the
    open :class:`WriteAheadLog`.
    """
    from repro.io import serve_request_from_dict
    from repro.sim.driver import SimulationDriver
    from repro.sim.hosts import restore_host
    from repro.wal import log as wal_log

    scan = scan_wal(directory)
    log, scan = WriteAheadLog.resume(
        directory, scan, keep_kinds=(rec.RECORD_OP, rec.RECORD_PERIOD),
        fsync=fsync, compact_every=compact_every,
        segment_bytes=(segment_bytes
                       or wal_log.DEFAULT_SEGMENT_BYTES))
    state = _checkpoint_state(directory, scan, log)
    if not isinstance(state, dict) or "kind" not in state:
        raise ValidationError(
            f"WAL {directory} holds a {type(state).__name__} "
            f"snapshot, not a gateway state document")
    kind = state["kind"]
    if kind == "driver":
        if not hasattr(backend, "driver"):
            raise ValidationError(
                f"WAL {directory} was written by a driver-backed "
                f"gateway; this backend is "
                f"{type(backend).__name__}")
        backend.driver = SimulationDriver.restore(state["snapshot"])
        backend._inbox.clear()
    elif kind == "host":
        if not hasattr(backend, "host"):
            raise ValidationError(
                f"WAL {directory} was written by a host-backed "
                f"gateway; this backend is {type(backend).__name__}")
        backend.host = restore_host(
            state["host_kind"], state["host"],
            batch=bool(state.get("batch", False)))
    else:
        raise ValidationError(
            f"unknown gateway WAL state kind {kind!r}")
    backend.last_report = None
    tail = scan.tail(keep_kinds=(rec.RECORD_OP, rec.RECORD_PERIOD))
    log.suspended = True
    try:
        for record in tail:
            if record.kind == rec.RECORD_OP:
                document = rec.decode_json(record.body, "op")
                # The pickle here is the gateway's own acknowledged
                # log, not an untrusted socket — same trust domain as
                # the snapshot pickle itself.
                request = serve_request_from_dict(
                    document, allow_pickle=True)
                if request.op in ("submit", "subscribe"):
                    backend.submit(request.query,
                                   category=request.category)
                else:
                    backend.withdraw(request.query_id)
            else:
                document = rec.decode_json(record.body, "period")
                backend.tick()
                check_receipt(
                    document, period=backend.period,
                    revenue=backend.total_revenue(), queue=None,
                    origin="gateway replay")
    finally:
        log.suspended = False
    log.stats["replayed"] = len(tail)
    return log


def resume_stripe(directory, *, fsync="never", segment_bytes=None):
    """Reopen one per-worker WAL stripe after a crash.

    A stripe holds only ``OP`` records, each carrying the worker's own
    monotonic ``seq`` plus the acknowledged request document.  Returns
    ``(log, ops, next_seq)`` where *ops* is every surviving
    ``(seq, request document)`` in sequence order and *next_seq*
    continues the stripe's numbering past everything ever logged.
    """
    from repro.wal import log as wal_log

    scan = scan_wal(directory)
    log, scan = WriteAheadLog.resume(
        directory, scan, keep_kinds=(rec.RECORD_OP,), fsync=fsync,
        segment_bytes=(segment_bytes
                       or wal_log.DEFAULT_SEGMENT_BYTES))
    ops = []
    for record in scan.tail(keep_kinds=(rec.RECORD_OP,)):
        document = rec.decode_json(record.body, "op")
        ops.append((int(document["seq"]), document["request"]))
    ops.sort(key=lambda pair: pair[0])
    state = _checkpoint_state(directory, scan, log)
    base_seq = int(state.get("seq", 0)) if isinstance(state, dict) else 0
    next_seq = max([base_seq] + [seq for seq, _ in ops]) + 1
    return log, ops, next_seq


def _scan_stripe_ops(directory):
    """Read every stripe's ops without opening them for append.

    The coordinator calls this during recovery, *before* any worker
    process exists; stripes stay untouched (each worker truncates its
    own torn tail when it resumes).  Torn final frames are simply not
    in the scan, which is safe: every op a recorded period consumed
    was fsynced before that period settled, so the torn region can
    only hold ops no receipt references yet.
    """
    stripes: "dict[int, list]" = {}
    for path in sorted(Path(directory).glob("stripe-*")):
        stem = path.name[len("stripe-"):]
        if not path.is_dir() or not stem.isdigit():
            continue
        if not list_snapshots(path):
            continue
        ops = []
        for record in scan_wal(path).tail(keep_kinds=(rec.RECORD_OP,)):
            document = rec.decode_json(record.body, "op")
            ops.append((int(document["seq"]), document["request"]))
        ops.sort(key=lambda pair: pair[0])
        stripes[int(stem)] = ops
    return stripes


def _apply_op_document(backend, document) -> bool:
    """Re-apply one logged op; ``False`` when it is (re-)dropped.

    The live coordinator drops an op that fails validation (e.g. a
    duplicate query id submitted through two different workers) and
    settles without it; replay must drop it identically or the receipt
    check would refuse an otherwise-correct recovery.
    """
    from repro.io import serve_request_from_dict

    request = serve_request_from_dict(document, allow_pickle=True)
    try:
        if request.op in ("submit", "subscribe"):
            backend.submit(request.query, category=request.category)
        else:
            backend.withdraw(request.query_id)
    except ValidationError:
        return False
    return True


def recover_striped_gateway(directory, backend, *, fsync="batch:256",
                            segment_bytes=None, compact_every=0):
    """Rebuild a multi-worker front-end's state from striped WALs.

    The coordinator's main log at *directory* holds the checkpoint
    snapshots and ``PERIOD`` receipts; each receipt carries a
    ``consumed`` map — stripe index → highest op sequence that settle
    drained.  Replay merges the per-worker stripes deterministically:
    for each recorded period, every stripe's ops in ``(previous
    consumed, consumed]`` are re-applied in worker order then sequence
    order (exactly the live drain order), the settle re-runs, and the
    receipt is checked.  Returns ``(log, consumed)`` — the reopened
    main log and the final per-stripe merge cursor; ops past it are
    the workers' unsettled buffers, which each worker reloads from its
    own stripe.
    """
    from repro.sim.hosts import restore_host
    from repro.wal import log as wal_log

    scan = scan_wal(directory)
    log, scan = WriteAheadLog.resume(
        directory, scan, keep_kinds=(rec.RECORD_PERIOD,),
        fsync=fsync, compact_every=compact_every,
        segment_bytes=(segment_bytes
                       or wal_log.DEFAULT_SEGMENT_BYTES))
    state = _checkpoint_state(directory, scan, log)
    if not isinstance(state, dict) or state.get("kind") != "host":
        raise ValidationError(
            f"WAL {directory} does not hold a front-end (host-backed) "
            f"state document; cannot recover striped gateway")
    backend.host = restore_host(
        state["host_kind"], state["host"],
        batch=bool(state.get("batch", False)))
    backend.last_report = None
    consumed = {int(stripe): int(seq)
                for stripe, seq in (state.get("consumed") or {}).items()}
    stripes = _scan_stripe_ops(directory)
    replayed = dropped = 0
    for record in scan.tail(keep_kinds=(rec.RECORD_PERIOD,)):
        document = rec.decode_json(record.body, "period")
        target = {int(stripe): int(seq) for stripe, seq
                  in (document.get("consumed") or {}).items()}
        for stripe in sorted(set(consumed) | set(target)):
            low = consumed.get(stripe, 0)
            high = max(low, target.get(stripe, low))
            for seq, op_document in stripes.get(stripe, ()):
                if low < seq <= high:
                    if not _apply_op_document(backend, op_document):
                        dropped += 1
            consumed[stripe] = high
        backend.tick()
        check_receipt(
            document, period=backend.period,
            revenue=backend.total_revenue(), queue=None,
            origin="striped gateway replay")
        replayed += 1
    log.stats["replayed"] = replayed
    log.stats["replay_dropped"] = dropped
    return log, consumed


def gateway_wal_state(backend) -> dict:
    """The state document a gateway WAL snapshots at checkpoints.

    Called only when the backend's inbox is settled (gateways compact
    immediately after a tick), so pending submissions never need to
    ride the snapshot — they are either in the driver state already or
    replayed from ``OP`` records.
    """
    if hasattr(backend, "driver"):
        if getattr(backend, "_inbox", None):
            raise ValidationError(
                "cannot checkpoint a gateway backend with queued "
                "submissions; settle the inbox first")
        return {"kind": "driver", "snapshot": backend.driver.snapshot()}
    host = backend.host
    return {
        "kind": "host",
        "host_kind": host.kind,
        "host": host.snapshot(),
        "batch": bool(getattr(host, "batch", False)),
    }
