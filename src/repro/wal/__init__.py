"""Durable write-ahead event log + crash recovery.

``repro.wal`` makes long-horizon sim and serve runs crash-recoverable
with exactly-once billing: every settle window and every acknowledged
gateway mutation is framed (CRC32, length-prefixed) into segmented log
files before the run moves on, periodic compaction folds the log
prefix into a ``repro/sim-snapshot`` envelope, and recovery replays
the surviving tail through the same deterministic event loop — torn
trailing writes are detected and discarded, and the resumed run is
byte-identical to the uninterrupted one (the fault-injection matrix in
``tests/wal`` proves it with real ``kill -9``\\ s at every registered
crashpoint).

Layers:

* :mod:`repro.wal.records` — frame codec over the v2 trace arrays;
* :mod:`repro.wal.log` — segments, fsync policies, compaction,
  torn-tail truncation;
* :mod:`repro.wal.recovery` — snapshot + tail replay with receipt
  verification;
* :mod:`repro.wal.crashpoints` — the named fault-injection points.
"""

from repro.wal.crashpoints import (
    arm,
    arm_from_env,
    crashpoint,
    disarm,
    registered_crashpoints,
    set_crash_handler,
)
from repro.wal.log import (
    DEFAULT_SEGMENT_BYTES,
    WalRecord,
    WalScan,
    WriteAheadLog,
    list_segments,
    list_snapshots,
    scan_wal,
    segment_name,
    snapshot_name,
    wal_exists,
)
from repro.wal.records import (
    RECORD_ARRIVALS,
    RECORD_CHECKPOINT,
    RECORD_OP,
    RECORD_PERIOD,
    FrameError,
    decode_frame,
    encode_frame,
)
from repro.wal.groupcommit import GroupCommitter
from repro.wal.recovery import (
    gateway_wal_state,
    recover_gateway_backend,
    recover_sim_driver,
    recover_striped_gateway,
    resume_stripe,
)

__all__ = [
    "DEFAULT_SEGMENT_BYTES",
    "FrameError",
    "GroupCommitter",
    "RECORD_ARRIVALS",
    "RECORD_CHECKPOINT",
    "RECORD_OP",
    "RECORD_PERIOD",
    "WalRecord",
    "WalScan",
    "WriteAheadLog",
    "arm",
    "arm_from_env",
    "crashpoint",
    "decode_frame",
    "disarm",
    "encode_frame",
    "gateway_wal_state",
    "list_segments",
    "list_snapshots",
    "recover_gateway_backend",
    "recover_sim_driver",
    "recover_striped_gateway",
    "resume_stripe",
    "registered_crashpoints",
    "scan_wal",
    "segment_name",
    "set_crash_handler",
    "snapshot_name",
    "wal_exists",
]
