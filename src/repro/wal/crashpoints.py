"""Named crashpoints: deterministic fault injection for durability.

A *crashpoint* is a named spot in a durability-critical code path —
just before a WAL frame hits the file, between a compaction snapshot
and its checkpoint record, after a temp file is written but before the
atomic rename.  In production the calls are no-ops costing one global
read.  Armed, the named point invokes the crash handler — by default
``SIGKILL`` to the current process, i.e. a real ``kill -9`` at a
byte-exact, reproducible place — after a configurable number of hits,
so the fault-injection matrix can murder a live run at *every*
registered point and assert that recovery converges byte-identically.

Arming is process-wide and comes from either :func:`arm` (in-process
tests, usually with a counting handler via :func:`set_crash_handler`)
or the ``REPRO_CRASHPOINT`` environment variable (subprocess
kill-matrix)::

    REPRO_CRASHPOINT=driver.settle.before-period-record      # 1st hit
    REPRO_CRASHPOINT=wal.append.after-frame:7                # 7th hit

Registration happens at import time via :func:`register`, so
:func:`registered_crashpoints` is the matrix's ground truth: a
crashpoint that silently stops being reachable fails the reachability
test instead of quietly passing the matrix.
"""

from __future__ import annotations

import os
import signal
from collections.abc import Callable

from repro.utils.validation import ValidationError

#: Environment variable that arms one crashpoint for this process.
CRASHPOINT_ENV = "REPRO_CRASHPOINT"

_registry: set[str] = set()
_armed_name: "str | None" = None
_armed_hits = 1
_hit_count = 0
_handler: "Callable[[str], None] | None" = None


def _default_handler(name: str) -> None:  # pragma: no cover - dies
    """The production crash: SIGKILL ourselves, no cleanup, no flush."""
    os.kill(os.getpid(), signal.SIGKILL)


def register(name: str) -> str:
    """Register *name* at import time; returns it for use as a constant."""
    if not name or not isinstance(name, str):
        raise ValidationError(f"crashpoint name must be a non-empty "
                              f"string, got {name!r}")
    _registry.add(name)
    return name


def registered_crashpoints() -> tuple[str, ...]:
    """Every registered crashpoint name, sorted (the matrix's menu)."""
    return tuple(sorted(_registry))


def crashpoint(name: str) -> None:
    """Fire *name* if it is the armed crashpoint (else: near-free)."""
    global _hit_count
    if _armed_name is None or name != _armed_name:
        return
    _hit_count += 1
    if _hit_count < _armed_hits:
        return
    handler = _handler or _default_handler
    handler(name)


def arm(name: str, hits: int = 1) -> None:
    """Arm *name* to fire on its *hits*-th execution."""
    global _armed_name, _armed_hits, _hit_count
    if int(hits) < 1:
        raise ValidationError(f"crashpoint hits must be >= 1, "
                              f"got {hits!r}")
    _armed_name = str(name)
    _armed_hits = int(hits)
    _hit_count = 0


def disarm() -> None:
    """Disarm whatever crashpoint is armed (safe when none is)."""
    global _armed_name, _hit_count
    _armed_name = None
    _hit_count = 0


def armed() -> "str | None":
    """The armed crashpoint name, or ``None``."""
    return _armed_name


def set_crash_handler(handler: "Callable[[str], None] | None") -> None:
    """Replace the SIGKILL handler (tests pass a counting callable);
    ``None`` restores the default."""
    global _handler
    _handler = handler


def arm_from_env(environ: "dict | None" = None) -> "str | None":
    """Arm from ``REPRO_CRASHPOINT`` (``name`` or ``name:hits``).

    Returns the armed name, or ``None`` when the variable is unset.
    Called once at import, so a subprocess is armed before any WAL
    code runs; harnesses may call it again after mutating ``environ``.
    """
    source = os.environ if environ is None else environ
    value = source.get(CRASHPOINT_ENV)
    if not value:
        return None
    name, _, hits = value.partition(":")
    name = name.strip()
    if not name:
        raise ValidationError(
            f"{CRASHPOINT_ENV}={value!r}: expected 'name' or "
            f"'name:hits'")
    try:
        count = int(hits) if hits else 1
    except ValueError:
        raise ValidationError(
            f"{CRASHPOINT_ENV}={value!r}: hits must be an integer"
        ) from None
    arm(name, count)
    return name


arm_from_env()
