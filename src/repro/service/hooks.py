"""Lifecycle hooks: the service's plug-in seam.

Scenarios that used to require forking ``DSMSCenter`` — lying clients
that inflate bids, sybil-style bid manipulation across a user's
submitted queries, energy-aware capacity adjustment, audit logging —
become functions attached to one of five well-defined points in the
period cycle.  A ``pre_auction`` hook may rewrite bids, owners and
capacity freely, but every query id the auction can admit must have a
plan submitted through ``service.submit()`` — winners without plans
are rejected with a :class:`ValidationError` before billing.

The events:

``on_submit(service, query)``
    Fired when a client submits, *before* validation; raise to veto.
``pre_auction(service, instance)``
    May return a replacement :class:`~repro.core.model.AuctionInstance`
    (return ``None`` to keep the current one).  This is where strategic
    bid manipulation or capacity adjustment plugs in.
``post_auction(service, outcome)``
    May return a replacement :class:`~repro.core.result.AuctionOutcome`.
``on_transition(service, added_ids, removed_ids)``
    Fired after the engine transitioned to the new admitted set.
``on_billing(service, period, revenue, outcome)``
    Fired after the ledger invoiced the period's winners.

Hooks run in registration order.  Filtering events (``pre_auction``,
``post_auction``) chain: each hook sees the previous hook's result.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.utils.validation import ValidationError

#: The recognized lifecycle events, in period-cycle order.
HOOK_EVENTS = (
    "on_submit",
    "pre_auction",
    "post_auction",
    "on_transition",
    "on_billing",
)

#: Events whose hooks may return a replacement value.
FILTER_EVENTS = ("pre_auction", "post_auction")


class HookRegistry:
    """An ordered set of hooks per lifecycle event."""

    def __init__(self) -> None:
        self._hooks: dict[str, list[Callable]] = {
            event: [] for event in HOOK_EVENTS}

    @staticmethod
    def _check_event(event: str) -> None:
        if event not in HOOK_EVENTS:
            raise ValidationError(
                f"unknown hook event {event!r}; known events: "
                f"{', '.join(HOOK_EVENTS)}")

    def add(self, event: str, hook: Callable) -> Callable:
        """Attach *hook* to *event*; returns the hook (decorator-able)."""
        self._check_event(event)
        if not callable(hook):
            raise ValidationError(
                f"hook for {event!r} must be callable, got {hook!r}")
        self._hooks[event].append(hook)
        return hook

    def remove(self, event: str, hook: Callable) -> None:
        """Detach a previously added hook."""
        self._check_event(event)
        self._hooks[event].remove(hook)

    def hooks(self, event: str) -> tuple[Callable, ...]:
        """The hooks attached to *event*, in firing order."""
        self._check_event(event)
        return tuple(self._hooks[event])

    def extend(self, other: "HookRegistry") -> None:
        """Append every hook of *other*, preserving per-event order."""
        for event in HOOK_EVENTS:
            self._hooks[event].extend(other.hooks(event))

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------

    def notify(self, event: str, *args: object) -> None:
        """Fire an observer event; return values are ignored."""
        for hook in self.hooks(event):
            hook(*args)

    def filter(self, event: str, service: object, value: object) -> object:
        """Fire a filtering event, chaining replacement values.

        Each hook is called as ``hook(service, value)``; a non-``None``
        return becomes the value the next hook (and the service) sees.
        """
        if event not in FILTER_EVENTS:
            raise ValidationError(
                f"{event!r} is not a filtering event; filtering events: "
                f"{', '.join(FILTER_EVENTS)}")
        for hook in self.hooks(event):
            replacement = hook(service, value)
            if replacement is not None:
                value = replacement
        return value
