"""Typed configuration and fluent assembly of an admission service.

:class:`ServiceConfig` is the declarative half — a frozen, serializable
description (capacity, mechanism spec, period length) with no live
objects in it.  :class:`ServiceBuilder` is the imperative half — a
fluent builder that combines a config (or inline settings) with the
live parts: stream sources, a pre-built mechanism, hooks, a ledger.

>>> service = (ServiceBuilder()
...     .with_sources(SyntheticStream("s", rate=5))
...     .with_capacity(30.0)
...     .with_mechanism("two-price:seed=7")
...     .with_ticks_per_period(10)
...     .build())
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, replace
from collections.abc import Callable, Iterable

from repro.core.mechanism import Mechanism, MechanismSpec
from repro.core.selection import SelectionPath, SelectionSpec
from repro.dsms.backend import BackendSpec, ExecutionBackend
from repro.dsms.scheduler import PolicySpec, SchedulingPolicy
from repro.dsms.streams import StreamSource
from repro.service.hooks import HookRegistry
from repro.service.service import AdmissionService
from repro.utils.validation import ValidationError, require


@dataclass(frozen=True)
class ServiceConfig:
    """Declarative service settings (everything but live objects).

    ``mechanism`` is a spec string (``"CAT"``, ``"two-price:seed=7"``)
    or a :class:`MechanismSpec`; ``backend`` is an execution-backend
    spec (``"scalar"``, ``"columnar:batch=1024"``) or a
    :class:`BackendSpec`; ``selection`` is a winner-selection-path
    spec (``"reference"``, ``"fast"``) or a :class:`SelectionSpec` —
    ``None`` (the default) pins nothing, leaving the mechanism's own
    selection setting untouched.  All are validated against their
    registries on construction, so a config with a typo'd name or
    parameter never gets as far as ``build()``.
    """

    capacity: float
    mechanism: "str | MechanismSpec" = "CAT"
    ticks_per_period: int = 50
    hold_ticks: int = 1
    backend: "str | BackendSpec" = "scalar"
    selection: "str | SelectionSpec | None" = None
    scheduler: "str | PolicySpec | None" = None

    def __post_init__(self) -> None:
        require(self.capacity > 0, "capacity must be positive")
        require(self.ticks_per_period > 0,
                "ticks_per_period must be positive")
        require(self.hold_ticks >= 0, "hold_ticks must be >= 0")
        self.mechanism_spec().validate()
        self.backend_spec().validate()
        spec = self.selection_spec()
        if spec is not None:
            spec.validate()
        policy = self.scheduler_spec()
        if policy is not None:
            policy.validate()

    def mechanism_spec(self) -> MechanismSpec:
        """The mechanism setting as a :class:`MechanismSpec`."""
        if isinstance(self.mechanism, MechanismSpec):
            return self.mechanism
        return MechanismSpec.parse(self.mechanism)

    def backend_spec(self) -> BackendSpec:
        """The backend setting as a :class:`BackendSpec`."""
        if isinstance(self.backend, BackendSpec):
            return self.backend
        return BackendSpec.parse(self.backend)

    def selection_spec(self) -> "SelectionSpec | None":
        """The selection setting as a :class:`SelectionSpec`.

        ``None`` means the config pins no selection path.
        """
        if self.selection is None or isinstance(self.selection,
                                                SelectionSpec):
            return self.selection
        return SelectionSpec.parse(self.selection)

    def with_mechanism(
        self, mechanism: "str | MechanismSpec"
    ) -> "ServiceConfig":
        """A copy of this config with a different mechanism."""
        return replace(self, mechanism=mechanism)

    def with_backend(
        self, backend: "str | BackendSpec"
    ) -> "ServiceConfig":
        """A copy of this config with a different execution backend."""
        return replace(self, backend=backend)

    def with_selection(
        self, selection: "str | SelectionSpec"
    ) -> "ServiceConfig":
        """A copy of this config with a different selection path."""
        return replace(self, selection=selection)

    def scheduler_spec(self) -> "PolicySpec | None":
        """The scheduling-policy setting as a :class:`PolicySpec`.

        ``None`` means the config pins no policy (the open-system
        latency probe then defaults to round-robin).
        """
        if self.scheduler is None or isinstance(self.scheduler,
                                                PolicySpec):
            return self.scheduler
        return PolicySpec.parse(self.scheduler)

    def with_scheduler(
        self, scheduler: "str | PolicySpec"
    ) -> "ServiceConfig":
        """A copy of this config with a different scheduling policy."""
        return replace(self, scheduler=scheduler)


class ServiceBuilder:
    """Fluent assembly of an :class:`AdmissionService`.

    Every ``with_*``/``on_*`` method returns the builder, so a service
    reads as one expression.  ``build()`` may be called repeatedly;
    each call produces an independent service: hooks are copied into a
    fresh registry, and the stream sources are deep-copied so one
    service's ticks never advance another's source RNG state.
    """

    def __init__(self, config: "ServiceConfig | None" = None) -> None:
        self._sources: list[StreamSource] = []
        self._capacity: "float | None" = None
        self._mechanism: "Mechanism | MechanismSpec | str | None" = None
        self._ticks_per_period: "int | None" = None
        self._hold_ticks: "int | None" = None
        self._backend: "ExecutionBackend | BackendSpec | str | None" = None
        self._selection: "SelectionPath | SelectionSpec | str | None" = None
        self._scheduler: "SchedulingPolicy | PolicySpec | str | None" = None
        self._arrivals: list[object] = []
        self._subscriptions: "object | None" = None
        self._ledger: "object | None" = None
        self._hooks = HookRegistry()
        if config is not None:
            self.with_config(config)

    # ------------------------------------------------------------------
    # Settings
    # ------------------------------------------------------------------

    def with_config(self, config: ServiceConfig) -> "ServiceBuilder":
        """Adopt every setting of *config* (sources stay as they are)."""
        self._capacity = config.capacity
        self._mechanism = config.mechanism_spec()
        self._ticks_per_period = config.ticks_per_period
        self._hold_ticks = config.hold_ticks
        self._backend = config.backend_spec()
        self._selection = config.selection_spec()
        self._scheduler = config.scheduler_spec()
        return self

    def with_sources(self, *sources: StreamSource) -> "ServiceBuilder":
        """Add the given stream sources."""
        self._sources.extend(sources)
        return self

    def with_capacity(self, capacity: float) -> "ServiceBuilder":
        """Set the per-tick server capacity (the auction capacity)."""
        self._capacity = float(capacity)
        return self

    def with_mechanism(
        self, mechanism: "Mechanism | MechanismSpec | str"
    ) -> "ServiceBuilder":
        """Set the admission mechanism (instance, spec, or string)."""
        self._mechanism = mechanism
        return self

    def with_ticks_per_period(self, ticks: int) -> "ServiceBuilder":
        """Set the subscription-period length in engine ticks."""
        self._ticks_per_period = int(ticks)
        return self

    def with_hold_ticks(self, hold_ticks: int) -> "ServiceBuilder":
        """Set how many ticks of arrivals transitions hold."""
        self._hold_ticks = int(hold_ticks)
        return self

    def with_backend(
        self, backend: "ExecutionBackend | BackendSpec | str"
    ) -> "ServiceBuilder":
        """Set the engine's execution backend (instance, spec, string)."""
        self._backend = backend
        return self

    def with_selection(
        self, selection: "SelectionPath | SelectionSpec | str"
    ) -> "ServiceBuilder":
        """Set the mechanism's selection path (instance, spec, string)."""
        self._selection = selection
        return self

    def with_scheduler(
        self, scheduler: "SchedulingPolicy | PolicySpec | str"
    ) -> "ServiceBuilder":
        """Set the simulation probe's scheduling policy.

        Spec-addressable like everything else: ``"fifo"``,
        ``"round-robin"``, ``"longest-queue-first"``,
        ``"cheapest-first"`` (or a live
        :class:`~repro.dsms.scheduler.SchedulingPolicy`).  Consumed by
        :meth:`build_simulation`, which attaches a per-shard
        :class:`~repro.sim.LatencyProbe` running the admitted plans on
        a bounded :class:`~repro.dsms.scheduler.ScheduledEngine` work
        budget.
        """
        self._scheduler = scheduler
        return self

    def with_arrivals(self, *arrivals: object) -> "ServiceBuilder":
        """Add open-system arrival processes (specs or instances).

        Accepts spec strings (``"poisson:rate=40"``, ``"burst"``,
        ``"trace:path=..."``), :class:`~repro.sim.ArrivalSpec` objects,
        or live :class:`~repro.sim.ArrivalProcess` instances.  Setting
        arrivals makes this an open-system build: finish with
        :meth:`build_simulation` instead of :meth:`build`.
        """
        self._arrivals.extend(arrivals)
        return self

    def with_subscriptions(
        self, subscriptions: "object | bool" = True
    ) -> "ServiceBuilder":
        """Enable Section VII subscription lifecycles.

        Pass ``True`` for the paper's default day/week/month mix, or a
        :class:`~repro.sim.SubscriptionOptions` for custom categories,
        renewal policy and per-category mechanisms.  Finish with
        :meth:`build_simulation`.
        """
        self._subscriptions = subscriptions
        return self

    def with_ledger(self, ledger: object) -> "ServiceBuilder":
        """Use a pre-existing billing ledger (e.g. resumed accounts)."""
        self._ledger = ledger
        return self

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------

    def with_hook(self, event: str, hook: Callable) -> "ServiceBuilder":
        """Attach *hook* to the lifecycle *event*."""
        self._hooks.add(event, hook)
        return self

    def on_submit(self, hook: Callable) -> "ServiceBuilder":
        """Sugar for ``with_hook("on_submit", hook)``."""
        return self.with_hook("on_submit", hook)

    def pre_auction(self, hook: Callable) -> "ServiceBuilder":
        """Sugar for ``with_hook("pre_auction", hook)``."""
        return self.with_hook("pre_auction", hook)

    def post_auction(self, hook: Callable) -> "ServiceBuilder":
        """Sugar for ``with_hook("post_auction", hook)``."""
        return self.with_hook("post_auction", hook)

    def on_transition(self, hook: Callable) -> "ServiceBuilder":
        """Sugar for ``with_hook("on_transition", hook)``."""
        return self.with_hook("on_transition", hook)

    def on_billing(self, hook: Callable) -> "ServiceBuilder":
        """Sugar for ``with_hook("on_billing", hook)``."""
        return self.with_hook("on_billing", hook)

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------

    def build(self) -> AdmissionService:
        """Assemble the service; raises on missing required settings.

        A builder holding open-system settings (arrivals or
        subscriptions) must finish with :meth:`build_simulation` —
        those settings live on the simulation driver, and silently
        dropping them here would be a trap.  A configured scheduler is
        different: it is only a *probe hint* for
        :meth:`build_simulation` and never changes service semantics,
        so a config carrying one still builds a plain service.
        """
        if self._arrivals or self._subscriptions:
            raise ValidationError(
                "this builder has open-system settings (with_arrivals/"
                "with_subscriptions); call .build_simulation() instead "
                "of .build()")
        return self._assemble()

    def build_simulation(
        self,
        *,
        probe: "object | None" = None,
        record: bool = False,
    ):
        """Assemble the service *and* its open-system driver.

        Returns a :class:`~repro.sim.SimulationDriver` wrapping a
        freshly built service, carrying the builder's arrival
        processes and subscription options.  The latency probe is
        attached when *probe* is truthy or a scheduler was configured
        (:meth:`with_scheduler` / :class:`ServiceConfig.scheduler`);
        ``record=True`` records the run's arrival trace for replay.
        """
        from repro.sim.driver import SimulationDriver

        if probe is None and self._scheduler is not None:
            probe = self._scheduler
        elif probe is True:
            probe = (self._scheduler if self._scheduler is not None
                     else True)
        return SimulationDriver(
            self._assemble(),
            arrivals=tuple(self._arrivals),
            subscriptions=self._subscriptions,
            probe=probe,
            record=record,
        )

    def _assemble(self) -> AdmissionService:
        if not self._sources:
            raise ValidationError(
                "cannot build a service without stream sources; call "
                ".with_sources(...)")
        if self._capacity is None:
            raise ValidationError(
                "cannot build a service without a capacity; call "
                ".with_capacity(...)")
        if self._mechanism is None:
            raise ValidationError(
                "cannot build a service without a mechanism; call "
                ".with_mechanism(...)")
        hooks = HookRegistry()
        hooks.extend(self._hooks)
        return AdmissionService(
            sources=copy.deepcopy(tuple(self._sources)),
            capacity=self._capacity,
            mechanism=self._mechanism,
            ticks_per_period=(50 if self._ticks_per_period is None
                              else self._ticks_per_period),
            hold_ticks=(1 if self._hold_ticks is None
                        else self._hold_ticks),
            # A live backend instance may hold per-engine state, so
            # each built service gets its own copy (specs/strings
            # already produce a fresh instance per resolve).
            backend=("scalar" if self._backend is None
                     else copy.deepcopy(self._backend)
                     if isinstance(self._backend, ExecutionBackend)
                     else self._backend),
            selection=self._selection,
            ledger=self._ledger,
            hooks=hooks,
        )


def service_from_config(
    config: ServiceConfig,
    sources: Iterable[StreamSource],
) -> AdmissionService:
    """One-call assembly: a config plus its live stream sources."""
    return ServiceBuilder(config).with_sources(*sources).build()
