"""The auction coordinator: candidate collection + load estimation.

One of the three components the :class:`~repro.service.AdmissionService`
facade composes.  The coordinator owns the pending-submission queue and
turns "everything competing this period" into an
:class:`~repro.core.model.AuctionInstance`: it merges new submissions
with the currently-running queries (the paper re-auctions each period),
estimates per-operator loads analytically from stream rates, and
packages bids + loads + capacity for the mechanism.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

from repro.core.model import AuctionInstance, Operator, Query
from repro.dsms.load import estimate_operator_loads
from repro.dsms.plan import ContinuousQuery, QueryPlanCatalog
from repro.utils.validation import ValidationError, require

#: ``(catalog, stream_rates) -> {op_id: load}`` — pluggable estimator.
LoadEstimator = Callable[[QueryPlanCatalog, Mapping[str, float]],
                         Mapping[str, float]]


class AuctionCoordinator:
    """Collects candidates and builds the per-period auction input."""

    def __init__(
        self,
        capacity: float,
        load_estimator: "LoadEstimator | None" = None,
    ) -> None:
        self.capacity = capacity
        self._load_estimator = load_estimator or estimate_operator_loads
        self._pending: dict[str, ContinuousQuery] = {}

    @property
    def capacity(self) -> float:
        """The auction capacity (validated on every assignment)."""
        return self._capacity

    @capacity.setter
    def capacity(self, value: float) -> None:
        value = float(value)
        require(value > 0, "capacity must be positive")
        self._capacity = value

    # ------------------------------------------------------------------
    # The pending queue
    # ------------------------------------------------------------------

    @property
    def pending(self) -> dict[str, ContinuousQuery]:
        """Copy of the queued (not yet auctioned) submissions."""
        return dict(self._pending)

    @property
    def pending_ids(self) -> set[str]:
        """Ids of the queued submissions."""
        return set(self._pending)

    def submit(
        self,
        query: ContinuousQuery,
        reserved_ids: "frozenset[str] | set[str]" = frozenset(),
    ) -> None:
        """Queue *query* for the next auction.

        *reserved_ids* are ids already taken elsewhere (the running
        queries in the engine); collisions with them or with the queue
        are rejected.
        """
        require(query.bid >= 0, "bids must be non-negative")
        if query.query_id in self._pending or query.query_id in reserved_ids:
            raise ValidationError(
                f"query id {query.query_id!r} already submitted")
        self._pending[query.query_id] = query

    def withdraw(self, query_id: str) -> ContinuousQuery:
        """Remove and return a not-yet-auctioned submission."""
        try:
            return self._pending.pop(query_id)
        except KeyError:
            known = sorted(self._pending) or ["<none>"]
            raise ValidationError(
                f"cannot withdraw unknown query id {query_id!r}; "
                f"pending ids: {', '.join(known)}") from None

    def clear(self) -> None:
        """Drop the whole queue (after its auction ran)."""
        self._pending.clear()

    def restore_pending(
        self, pending: Mapping[str, ContinuousQuery]
    ) -> None:
        """Replace the queue wholesale (snapshot restore)."""
        self._pending = dict(pending)

    # ------------------------------------------------------------------
    # Auction building
    # ------------------------------------------------------------------

    def collect(
        self, running: Mapping[str, ContinuousQuery]
    ) -> dict[str, ContinuousQuery]:
        """All candidates for the next period: queued + running."""
        candidates = dict(self._pending)
        candidates.update(running)
        return candidates

    def build(
        self,
        candidates: Mapping[str, ContinuousQuery],
        stream_rates: Mapping[str, float],
    ) -> AuctionInstance:
        """Package *candidates* into an auction instance.

        Loads are estimated by propagating *stream_rates* through the
        merged (shared) operator graph of all candidates.
        """
        if not candidates:
            raise ValidationError("no queries to auction")
        catalog = QueryPlanCatalog(candidates.values())
        loads = self._load_estimator(catalog, stream_rates)
        operators = {
            op_id: Operator(op_id, loads.get(op_id, 0.0))
            for op_id in catalog.operators
        }
        queries = tuple(
            Query(
                query_id=q.query_id,
                operator_ids=q.operator_ids,
                bid=q.bid,
                valuation=q.valuation,
                owner=q.owner,
            )
            for q in candidates.values()
        )
        return AuctionInstance(operators, queries, self.capacity)
