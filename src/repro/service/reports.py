"""Business reports emitted by the admission service.

:class:`PeriodReport` is the stable, serializable record of one
subscription period: the auction outcome, the revenue billed, the
admitted/rejected split, and the engine-side execution counters.  It
carries a versioned JSON schema in :mod:`repro.io`
(:func:`repro.io.report_to_dict` / :func:`repro.io.report_from_dict`)
so reports can be archived, diffed and replayed across versions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.result import AuctionOutcome


@dataclass
class PeriodReport:
    """One subscription period's business summary."""

    period: int
    outcome: AuctionOutcome
    revenue: float
    admitted: tuple[str, ...]
    rejected: tuple[str, ...]
    engine_ticks: int
    engine_utilization: float | None

    @property
    def admission_rate(self) -> float:
        """Fraction of submitted queries admitted this period."""
        total = len(self.admitted) + len(self.rejected)
        return len(self.admitted) / total if total else 0.0
