"""The transition manager: moving the engine between admitted sets.

Wraps the paper's Section II transition phase (connection points hold
arriving tuples, modified subnetworks drain, held tuples replay before
new arrivals) behind one idempotent operation: *make the engine run
exactly this admitted set*.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.dsms.engine import StreamEngine
from repro.dsms.plan import ContinuousQuery
from repro.utils.validation import require


class TransitionManager:
    """Applies per-period admitted-set changes to a stream engine."""

    def __init__(self, hold_ticks: int = 1) -> None:
        require(hold_ticks >= 0, "hold_ticks must be >= 0")
        self.hold_ticks = int(hold_ticks)

    def apply(
        self,
        engine: StreamEngine,
        admitted: Sequence[str],
        candidates: Mapping[str, ContinuousQuery],
    ) -> tuple[tuple[str, ...], tuple[str, ...]]:
        """Transition *engine* so it runs exactly *admitted*.

        On a warm engine the full transition-phase sequence runs
        (tuples held for :attr:`hold_ticks` ticks); on a cold engine
        the queries are admitted directly.  Returns
        ``(added_ids, removed_ids)``.
        """
        currently_running = engine.admitted_ids
        to_remove = tuple(sorted(currently_running - set(admitted)))
        to_add = tuple(candidates[query_id] for query_id in admitted
                       if query_id not in currently_running)
        if currently_running:
            engine.transition(add=to_add, remove=to_remove,
                              hold_ticks=self.hold_ticks)
        else:
            for query in to_add:
                engine.admit(query)
        return tuple(q.query_id for q in to_add), to_remove
