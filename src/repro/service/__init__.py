"""The composable admission-service API (successor of ``DSMSCenter``).

This package decomposes the monolithic DSMS-center of earlier versions
into a stable facade over pluggable components:

* :class:`AdmissionService` — the facade: submit/withdraw, the
  per-period auction-bill-transition-execute cycle, checkpointing;
* :class:`ServiceBuilder` / :class:`ServiceConfig` — fluent assembly
  from typed, validated settings;
* :class:`AuctionCoordinator` — candidate collection + load estimation;
* :class:`TransitionManager` — engine add/remove/transition;
* :class:`HookRegistry` — lifecycle middleware (``on_submit``,
  ``pre_auction``, ``post_auction``, ``on_transition``,
  ``on_billing``) so scenarios like lying clients, sybil attacks and
  energy-aware capacity are plug-ins, not forks;
* :class:`PeriodReport` — the versioned per-period business record;
* :class:`ServiceSnapshot` — full checkpoint/restore of a running
  service.

Quickstart::

    from repro.dsms import SyntheticStream
    from repro.service import ServiceBuilder

    service = (ServiceBuilder()
        .with_sources(SyntheticStream("s", rate=5, poisson=False))
        .with_capacity(30.0)
        .with_mechanism("CAT")
        .with_ticks_per_period(10)
        .build())
    service.submit(my_query)
    report = service.run_period()
"""

from repro.service.builder import (
    ServiceBuilder,
    ServiceConfig,
    service_from_config,
)
from repro.service.coordinator import AuctionCoordinator
from repro.service.hooks import FILTER_EVENTS, HOOK_EVENTS, HookRegistry
from repro.service.reports import PeriodReport
from repro.service.service import (
    SNAPSHOT_STATE_VERSION,
    AdmissionService,
    PeriodPreparation,
    PeriodSettlement,
    ServiceSnapshot,
)
from repro.service.transition import TransitionManager

__all__ = [
    "AdmissionService",
    "AuctionCoordinator",
    "FILTER_EVENTS",
    "HOOK_EVENTS",
    "HookRegistry",
    "PeriodPreparation",
    "PeriodReport",
    "PeriodSettlement",
    "SNAPSHOT_STATE_VERSION",
    "ServiceBuilder",
    "ServiceConfig",
    "ServiceSnapshot",
    "TransitionManager",
    "service_from_config",
]
