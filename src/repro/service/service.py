"""The admission service facade.

:class:`AdmissionService` is the stable public API of the for-profit
DSMS of Section I/VII: clients submit continuous queries with bids; at
each subscription-period boundary the service runs the admission
auction, bills the winners, transitions the stream engine to the new
admitted set, and executes it for the period.

The facade owns no policy of its own — it composes three pluggable
components plus a hook registry:

* :class:`~repro.service.coordinator.AuctionCoordinator` — pending
  queue, candidate collection, load estimation, auction building;
* :class:`~repro.service.transition.TransitionManager` — engine
  add/remove/transition;
* :class:`~repro.cloud.billing.BillingLedger` — invoicing and audit;
* :class:`~repro.service.hooks.HookRegistry` — lifecycle middleware
  (``on_submit``, ``pre_auction``, ``post_auction``, ``on_transition``,
  ``on_billing``).

A service can be checkpointed (:meth:`AdmissionService.snapshot`) and
resumed (:meth:`AdmissionService.restore`) mid-run: the snapshot
captures every piece of evolving state — pending queue, engine
(including source RNG states), ledger, mechanism randomness, period
counter, past reports — so the resumed run is bit-for-bit identical to
the uninterrupted one.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from collections.abc import Iterable, Mapping, Sequence

from repro.core.mechanism import Mechanism, MechanismSpec, resolve_mechanism
from repro.core.model import AuctionInstance
from repro.core.result import AuctionOutcome
from repro.dsms.backend import BackendSpec, ExecutionBackend
from repro.dsms.engine import StreamEngine
from repro.dsms.plan import ContinuousQuery
from repro.dsms.streams import StreamSource
from repro.service.coordinator import AuctionCoordinator
from repro.service.hooks import HookRegistry
from repro.service.reports import PeriodReport
from repro.service.transition import TransitionManager
from repro.utils.validation import ValidationError

#: Version of the in-memory snapshot layout below.
SNAPSHOT_STATE_VERSION = 1

_STATE_FIELDS = (
    "capacity", "ticks_per_period", "hold_ticks", "mechanism",
    "sources", "engine", "pending", "ledger", "period", "reports",
)


@dataclass(frozen=True)
class PeriodPreparation:
    """The auction-ready input of one period (phase 1 of the cycle).

    Produced by :meth:`AdmissionService.prepare_period`: the period
    index being run, the candidate plans competing (queued + running),
    and the built :class:`AuctionInstance` after ``pre_auction`` hooks.
    """

    period: int
    candidates: Mapping[str, ContinuousQuery]
    instance: AuctionInstance


@dataclass(frozen=True)
class PeriodSettlement:
    """The billed, transitioned state of one period (phase 2).

    Produced by :meth:`AdmissionService.settle_period` once a mechanism
    outcome exists: winners were invoiced, the engine transitioned to
    the admitted set, and the pending queue was cleared.  What remains
    is executing the period (:meth:`AdmissionService.execute_period`).
    """

    period: int
    candidates: Mapping[str, ContinuousQuery]
    outcome: AuctionOutcome
    revenue: float
    admitted: tuple[str, ...]
    rejected: tuple[str, ...]


@dataclass(frozen=True)
class ServiceSnapshot:
    """A deep, self-contained copy of a service's evolving state.

    Obtained from :meth:`AdmissionService.snapshot`; turned back into a
    live service by :meth:`AdmissionService.restore`.  One snapshot can
    be restored any number of times (each restore gets its own copy).
    Hooks are *not* part of a snapshot — they are code, not state —
    and must be re-attached after restore.
    """

    version: int
    state: Mapping[str, object]

    def __post_init__(self) -> None:
        missing = [f for f in _STATE_FIELDS if f not in self.state]
        if missing:
            raise ValidationError(
                f"service snapshot is missing state field(s) {missing}")


class AdmissionService:
    """A composable, checkpointable admission-auction service.

    Prefer building one through
    :class:`~repro.service.builder.ServiceBuilder`; the constructor is
    the explicit, keyword-only assembly point.

    Parameters
    ----------
    sources:
        The data streams the service ingests.
    capacity:
        Work units the servers execute per tick (the auction capacity).
    mechanism:
        The admission mechanism: a :class:`Mechanism` instance, a
        :class:`MechanismSpec`, or a spec string (``"CAT"``,
        ``"two-price:seed=7"``).  The paper recommends CAT — the only
        strategyproof *and* sybil-immune choice.
    ticks_per_period:
        Engine ticks constituting one subscription period ("a day").
    hold_ticks:
        Ticks of arrivals held at the connection points during each
        transition.
    backend:
        The engine's execution backend: an
        :class:`~repro.dsms.backend.ExecutionBackend` instance, a
        :class:`~repro.dsms.backend.BackendSpec`, or a spec string
        (``"scalar"``, ``"columnar:batch=1024"``).
    selection:
        The mechanism's winner-selection path: a
        :class:`~repro.core.selection.SelectionPath`, a
        :class:`~repro.core.selection.SelectionSpec`, or a spec string
        (``"reference"``, ``"fast"``).  Pinned onto the mechanism via
        :meth:`~repro.core.Mechanism.use_selection`, so it rides along
        through batch runs, federations and checkpoints.  ``None``
        leaves the mechanism's own setting untouched.
    """

    def __init__(
        self,
        *,
        sources: Iterable[StreamSource],
        capacity: float,
        mechanism: "Mechanism | MechanismSpec | str",
        ticks_per_period: int = 50,
        hold_ticks: int = 1,
        backend: "ExecutionBackend | BackendSpec | str" = "scalar",
        selection: "object | None" = None,
        ledger: "object | None" = None,
        hooks: "HookRegistry | None" = None,
    ) -> None:
        from repro.cloud.billing import BillingLedger

        self.sources: tuple[StreamSource, ...] = tuple(sources)
        self.capacity = float(capacity)
        self.mechanism = resolve_mechanism(mechanism)
        if selection is not None:
            self.mechanism.use_selection(selection)
        self.ticks_per_period = int(ticks_per_period)
        self.engine = StreamEngine(self.sources, capacity=self.capacity,
                                   backend=backend)
        self.ledger = BillingLedger() if ledger is None else ledger
        self.hooks = HookRegistry() if hooks is None else hooks
        self.coordinator = AuctionCoordinator(self.capacity)
        self.transitions = TransitionManager(hold_ticks=hold_ticks)
        self._period = 0
        self.reports: list[PeriodReport] = []

    # ------------------------------------------------------------------
    # Client-facing API
    # ------------------------------------------------------------------

    def submit(self, query: ContinuousQuery) -> None:
        """Queue *query* (with its bid) for the next period's auction."""
        self.hooks.notify("on_submit", self, query)
        self.coordinator.submit(query, reserved_ids=self.engine.admitted_ids)

    def withdraw(self, query_id: str) -> ContinuousQuery:
        """Remove and return a not-yet-auctioned submission.

        Raises :class:`ValidationError` (naming the pending ids) when
        *query_id* is not queued.
        """
        return self.coordinator.withdraw(query_id)

    @property
    def pending_ids(self) -> set[str]:
        """Queries awaiting the next auction."""
        return self.coordinator.pending_ids

    @property
    def period(self) -> int:
        """Index of the last completed subscription period (0 = none)."""
        return self._period

    # ------------------------------------------------------------------
    # The period cycle
    # ------------------------------------------------------------------

    def _stream_rates(self) -> dict[str, float]:
        return {source.name: source.expected_rate()
                for source in self.sources}

    def _collect_and_build(
        self,
    ) -> tuple[dict[str, ContinuousQuery], AuctionInstance]:
        candidates = self.coordinator.collect(self.engine.catalog.queries)
        return candidates, self.coordinator.build(
            candidates, self._stream_rates())

    def build_auction(self) -> AuctionInstance:
        """The auction input for the next period.

        All candidates compete: currently-running queries re-bid
        alongside new submissions (the paper's model re-auctions each
        period), with loads estimated analytically from stream rates.
        """
        return self._collect_and_build()[1]

    def prepare_period(self) -> PeriodPreparation:
        """Phase 1: open the next period and build its auction input.

        Collects candidates (queued + running), estimates loads, and
        applies the ``pre_auction`` hooks.  Callers that split the cycle
        (e.g. the :mod:`repro.cluster` federation, which batches all
        shard auctions) must follow with :meth:`settle_period` and
        :meth:`execute_period`; :meth:`run_period` does all three.
        """
        self._period += 1
        try:
            candidates, instance = self._collect_and_build()
            instance = self.hooks.filter("pre_auction", self, instance)
        except Exception:
            self._period -= 1
            raise
        return PeriodPreparation(
            period=self._period, candidates=candidates, instance=instance)

    def settle_period(
        self, preparation: PeriodPreparation, outcome: AuctionOutcome
    ) -> PeriodSettlement:
        """Phase 2: apply *outcome* — filter, validate, bill, transition.

        Runs the ``post_auction`` hooks, rejects outcomes naming
        planless winners (rolling the period counter back, nothing
        billed), invoices the winners, transitions the engine to the
        admitted set, and clears the pending queue.
        """
        candidates = preparation.candidates
        outcome = self.hooks.filter("post_auction", self, outcome)

        unknown = sorted(outcome.winner_ids - set(candidates))
        if unknown:
            self._period -= 1
            raise ValidationError(
                f"auction outcome admits query id(s) {unknown} with no "
                f"submitted plan; hooks that add queries to the auction "
                f"must submit matching plans via service.submit() first")

        revenue = self.ledger.bill_outcome(self._period, outcome)
        self.hooks.notify("on_billing", self, self._period, revenue, outcome)

        admitted = sorted(outcome.winner_ids)
        rejected = sorted(set(candidates) - outcome.winner_ids)
        added, removed = self.transitions.apply(
            self.engine, admitted, candidates)
        self.hooks.notify("on_transition", self, added, removed)
        self.coordinator.clear()
        return PeriodSettlement(
            period=self._period,
            candidates=candidates,
            outcome=outcome,
            revenue=revenue,
            admitted=tuple(admitted),
            rejected=tuple(rejected),
        )

    def execute_period(self, settlement: PeriodSettlement) -> PeriodReport:
        """Phase 3: run the engine for the period and record the report."""
        ticks_before = self.engine.report.ticks
        work_before = self.engine.report.total_work
        self.engine.run(self.ticks_per_period)
        ticks = self.engine.report.ticks - ticks_before
        work = self.engine.report.total_work - work_before
        utilization = (work / ticks / self.capacity) if ticks else None

        report = PeriodReport(
            period=settlement.period,
            outcome=settlement.outcome,
            revenue=settlement.revenue,
            admitted=settlement.admitted,
            rejected=settlement.rejected,
            engine_ticks=ticks,
            engine_utilization=utilization,
        )
        self.reports.append(report)
        return report

    def run_period(self) -> PeriodReport:
        """Auction, bill, transition, and execute one period."""
        preparation = self.prepare_period()
        outcome = self.mechanism.run(preparation.instance)
        return self.execute_period(self.settle_period(preparation, outcome))

    def run_idle_period(self) -> PeriodReport:
        """Run one period with no auction (no candidates to admit).

        A federation shard that received no submissions still advances:
        its streams keep flowing and its admitted queries (if any were
        placed by migration) keep executing.  The report carries an
        empty zero-revenue outcome under the mechanism name ``"idle"``.
        """
        self._period += 1
        empty = AuctionInstance({}, (), self.capacity)
        settlement = PeriodSettlement(
            period=self._period,
            candidates={},
            outcome=AuctionOutcome(
                instance=empty, payments={}, mechanism="idle"),
            revenue=0.0,
            admitted=(),
            rejected=(),
        )
        return self.execute_period(settlement)

    def run_periods(
        self,
        submissions_per_period: Iterable[Sequence[ContinuousQuery]],
    ) -> list[PeriodReport]:
        """Run several periods, submitting each batch before its auction.

        The historical lockstep loop, now expressed as the degenerate
        schedule of the open-system runtime: each batch becomes
        arrival events at its period boundary on a
        :class:`~repro.sim.SimulationDriver`, which then runs exactly
        one boundary per batch.  Reports are byte-identical to the old
        in-line loop (same submit/auction interleaving, same hook
        order, same errors on empty auctions).
        """
        from repro.sim.driver import SimulationDriver

        return SimulationDriver.lockstep(self).run_lockstep(
            submissions_per_period)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def total_revenue(self) -> float:
        """Revenue over all billed periods."""
        return self.ledger.total_revenue()

    def measured_loads(self) -> Mapping[str, float]:
        """The engine's measured per-operator loads."""
        return self.engine.measured_loads()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def snapshot(self) -> ServiceSnapshot:
        """Capture the full evolving state as a restorable snapshot."""
        state = copy.deepcopy({
            "capacity": self.capacity,
            "ticks_per_period": self.ticks_per_period,
            "hold_ticks": self.transitions.hold_ticks,
            "mechanism": self.mechanism,
            "sources": self.sources,
            "engine": self.engine,
            "pending": self.coordinator.pending,
            "ledger": self.ledger,
            "period": self._period,
            "reports": self.reports,
        })
        return ServiceSnapshot(version=SNAPSHOT_STATE_VERSION, state=state)

    @classmethod
    def restore(
        cls,
        snapshot: ServiceSnapshot,
        hooks: "HookRegistry | None" = None,
    ) -> "AdmissionService":
        """Rebuild a live service from *snapshot*.

        The snapshot is copied, so it can be restored again later.
        Hooks are not serialized state; pass *hooks* to re-attach them.
        """
        if snapshot.version != SNAPSHOT_STATE_VERSION:
            raise ValidationError(
                f"cannot restore snapshot version {snapshot.version}; "
                f"this build supports version {SNAPSHOT_STATE_VERSION}")
        state = copy.deepcopy(dict(snapshot.state))
        service = object.__new__(AdmissionService)
        service.sources = tuple(state["sources"])
        service.capacity = state["capacity"]
        service.mechanism = state["mechanism"]
        service.ticks_per_period = state["ticks_per_period"]
        service.engine = state["engine"]
        service.ledger = state["ledger"]
        service.hooks = HookRegistry() if hooks is None else hooks
        service.coordinator = AuctionCoordinator(state["capacity"])
        service.coordinator.restore_pending(state["pending"])
        service.transitions = TransitionManager(
            hold_ticks=state["hold_ticks"])
        service._period = state["period"]
        service.reports = list(state["reports"])
        return service

    def save_checkpoint(self, path: object) -> None:
        """Write a restorable checkpoint file (see :mod:`repro.io`).

        The file is a versioned pickle envelope; everything in the
        service (query predicates, payload functions, hooks excluded)
        must be picklable — module-level functions are, lambdas are
        not.  Only load checkpoints you trust.
        """
        from repro.io import save_snapshot

        save_snapshot(self.snapshot(), path)

    @classmethod
    def load_checkpoint(
        cls,
        path: object,
        hooks: "HookRegistry | None" = None,
    ) -> "AdmissionService":
        """Resume a service from a :meth:`save_checkpoint` file."""
        from repro.io import load_snapshot

        return cls.restore(load_snapshot(path), hooks=hooks)
