"""repro — Admission Control Mechanisms for Continuous Queries in the Cloud.

A full reproduction of Chung et al. (ICDE 2010): auction-based admission
control for continuous queries submitted to a capacity-limited DSMS
"cloud", with operator sharing between queries — grown into a
composable admission *service* with pluggable mechanisms, lifecycle
hooks, and checkpoint/restore.

Packages:

* :mod:`repro.core` — the auction model and all mechanisms (CAR, CAF,
  CAF+, CAT, CAT+, GV, Two-price, Random, OPT_C), the name-based
  registry, and declarative :class:`MechanismSpec` configuration.
* :mod:`repro.service` — the public service API: an
  :class:`AdmissionService` facade assembled by a
  :class:`ServiceBuilder` from typed :class:`ServiceConfig`, composed
  of an auction coordinator, a transition manager, a billing ledger,
  and a lifecycle-hook system; snapshot/restore included.
* :mod:`repro.cluster` — the scale-out layer: a
  :class:`FederatedAdmissionService` sharding submissions over N
  service instances via pluggable placement policies, with cross-shard
  rebalancing of rejected load, batch auctions, and whole-cluster
  checkpointing.
* :mod:`repro.sim` — the open-system event-driven simulation runtime:
  a checkpointable :class:`SimulationDriver` with a virtual clock,
  spec-addressable arrival processes (``"poisson:rate=40"``,
  ``"burst"``, ``"trace:path=..."``), subscription lifecycles
  (expiry, renewal, per-category billing), a latency probe, and
  byte-identical trace record/replay.
* :mod:`repro.serve` — the serving layer: an asyncio HTTP/JSON
  :class:`AdmissionGateway` over any service, federation, or
  simulation driver (submit/subscribe/withdraw/tick/report plus
  ``/healthz`` and ``/metrics``), hardened with per-client token
  buckets, tiered timeouts, a server-side retry budget, and graceful
  drain-then-settle shutdown; ships a seeded socket-level load
  generator.
* :mod:`repro.workload` — the Table III workload generator, including
  the operator-splitting procedure for varying the degree of sharing,
  and the lying workloads of Figure 5.
* :mod:`repro.gametheory` — strategyproofness and sybil-immunity
  analysis tools, with the paper's constructive attacks.
* :mod:`repro.dsms` — an Aurora-style stream engine substrate that can
  actually run admitted queries (shared operators, connection points,
  transition phase).
* :mod:`repro.cloud` — billing, multi-period subscriptions and
  energy-aware capacity selection (Section VII extensions), plus the
  deprecated ``DSMSCenter`` shim.
* :mod:`repro.experiments` — the harness regenerating every table and
  figure of the evaluation.

Quickstart — one auction::

    from repro import MechanismSpec
    from repro.workload import example1

    outcome = MechanismSpec.parse("CAT").create().run(example1())
    print(outcome.winner_ids, outcome.profit)

Quickstart — a running service::

    from repro.dsms import SyntheticStream
    from repro.service import ServiceBuilder

    service = (ServiceBuilder()
        .with_sources(SyntheticStream("s", rate=5, poisson=False))
        .with_capacity(30.0)
        .with_mechanism("two-price:seed=7")
        .with_ticks_per_period(10)
        .build())
    service.submit(query)           # a repro.dsms ContinuousQuery
    report = service.run_period()   # auction → bill → transition → run
    service.save_checkpoint("svc.ckpt")   # resume later, bit-identical
"""

from repro.core import (
    CAF,
    CAFPlus,
    CAR,
    CAT,
    CATPlus,
    AuctionInstance,
    AuctionOutcome,
    GreedyByValuation,
    Mechanism,
    MechanismSpec,
    Operator,
    OptimalConstantPrice,
    PAPER_MECHANISMS,
    Query,
    RandomAdmission,
    TwoPrice,
    make_mechanism,
    mechanism_params,
    optimal_constant_pricing,
    register_mechanism,
    registered_mechanisms,
    remaining_load,
    resolve_mechanism,
    static_fair_share_load,
    total_load,
)
from repro.service import (
    AdmissionService,
    HookRegistry,
    PeriodReport,
    ServiceBuilder,
    ServiceConfig,
    ServiceSnapshot,
)

__version__ = "1.1.0"

__all__ = [
    "AdmissionService",
    "AuctionInstance",
    "AuctionOutcome",
    "CAF",
    "CAFPlus",
    "CAR",
    "CAT",
    "CATPlus",
    "GreedyByValuation",
    "HookRegistry",
    "Mechanism",
    "MechanismSpec",
    "Operator",
    "OptimalConstantPrice",
    "PAPER_MECHANISMS",
    "PeriodReport",
    "Query",
    "RandomAdmission",
    "ServiceBuilder",
    "ServiceConfig",
    "ServiceSnapshot",
    "TwoPrice",
    "__version__",
    "make_mechanism",
    "mechanism_params",
    "optimal_constant_pricing",
    "register_mechanism",
    "registered_mechanisms",
    "remaining_load",
    "resolve_mechanism",
    "static_fair_share_load",
    "total_load",
]
