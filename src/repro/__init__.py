"""repro — Admission Control Mechanisms for Continuous Queries in the Cloud.

A full reproduction of Chung et al. (ICDE 2010): auction-based admission
control for continuous queries submitted to a capacity-limited DSMS
"cloud", with operator sharing between queries.

Packages:

* :mod:`repro.core` — the auction model and all mechanisms (CAR, CAF,
  CAF+, CAT, CAT+, GV, Two-price, Random, OPT_C).
* :mod:`repro.workload` — the Table III workload generator, including
  the operator-splitting procedure for varying the degree of sharing,
  and the lying workloads of Figure 5.
* :mod:`repro.gametheory` — strategyproofness and sybil-immunity
  analysis tools, with the paper's constructive attacks.
* :mod:`repro.dsms` — an Aurora-style stream engine substrate that can
  actually run admitted queries (shared operators, connection points,
  transition phase).
* :mod:`repro.cloud` — the DSMS-center: billing, daily auction cycles,
  multi-period subscriptions and energy-aware capacity selection
  (Section VII extensions).
* :mod:`repro.experiments` — the harness regenerating every table and
  figure of the evaluation.

Quickstart::

    from repro import AuctionInstance, make_mechanism
    from repro.workload import example1

    instance = example1()
    outcome = make_mechanism("CAT").run(instance)
    print(outcome.winner_ids, outcome.profit)
"""

from repro.core import (
    CAF,
    CAFPlus,
    CAR,
    CAT,
    CATPlus,
    AuctionInstance,
    AuctionOutcome,
    GreedyByValuation,
    Mechanism,
    Operator,
    OptimalConstantPrice,
    PAPER_MECHANISMS,
    Query,
    RandomAdmission,
    TwoPrice,
    make_mechanism,
    optimal_constant_pricing,
    register_mechanism,
    registered_mechanisms,
    remaining_load,
    static_fair_share_load,
    total_load,
)

__version__ = "1.0.0"

__all__ = [
    "AuctionInstance",
    "AuctionOutcome",
    "CAF",
    "CAFPlus",
    "CAR",
    "CAT",
    "CATPlus",
    "GreedyByValuation",
    "Mechanism",
    "Operator",
    "OptimalConstantPrice",
    "PAPER_MECHANISMS",
    "Query",
    "RandomAdmission",
    "TwoPrice",
    "__version__",
    "make_mechanism",
    "optimal_constant_pricing",
    "register_mechanism",
    "registered_mechanisms",
    "remaining_load",
    "static_fair_share_load",
    "total_load",
]
